"""CLI tests and end-to-end integration tests."""

import pytest

from repro.cli import build_parser, main
from repro.ir.printer import print_module
from repro.ir.module import Module
from repro.pipeline.compiler import compile_procedure
from repro.profiling.interpreter import Interpreter, run_with_convention_check
from repro.regalloc.allocator import allocate_registers
from repro.spill.hierarchical import place_hierarchical
from repro.spill.insertion import apply_placement
from repro.spill.verifier import verify_placement
from repro.target.generic import riscish_target
from repro.target.parisc import parisc_target
from repro.workloads.generator import GeneratorConfig, generate_procedure
from repro.workloads.programs import call_chain_function, loop_function, paper_example


class TestCli:
    def test_parser_knows_all_subcommands(self):
        parser = build_parser()
        for command in ("figure5", "table1", "table2", "ablation", "example", "place"):
            assert command in parser.format_help()

    def test_example_subcommand_prints_paper_numbers(self, capsys):
        assert main(["example"]) == 0
        output = capsys.readouterr().out
        assert "entry/exit placement : 200" in output
        assert "Chow shrink-wrapping : 250" in output
        assert "hierarchical" in output

    def test_table1_subcommand_small_scale(self, capsys):
        assert main(["table1", "--scale", "0.1"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "gzip" in output and "Average" in output

    def test_place_subcommand_on_textual_ir(self, tmp_path, capsys):
        module = Module("m")
        module.add_function(call_chain_function())
        path = tmp_path / "input.ir"
        path.write_text(print_module(module), encoding="utf-8")
        assert main(["place", str(path)]) == 0
        output = capsys.readouterr().out
        assert "call_chain" in output
        assert "optimized" in output

    def test_missing_subcommand_is_an_error(self):
        with pytest.raises(SystemExit):
            main([])

    def test_targets_subcommand_lists_registered_machines(self, capsys):
        assert main(["targets"]) == 0
        output = capsys.readouterr().out
        for name in ("parisc", "riscish", "micro", "wide"):
            assert name in output

    def test_target_flag_selects_the_machine(self, tmp_path, capsys):
        module = Module("m")
        module.add_function(call_chain_function())
        path = tmp_path / "input.ir"
        path.write_text(print_module(module), encoding="utf-8")
        assert main(["place", str(path), "--target", "micro"]) == 0
        output = capsys.readouterr().out
        assert "micro" in output

    def test_table1_on_a_non_default_target(self, capsys):
        assert main(["table1", "--scale", "0.05", "--target", "riscish"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_unknown_target_is_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--target", "vax"])


class TestCliCache:
    def test_cached_rerun_stdout_byte_identical_with_hits(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["table1", "--scale", "0.1", "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr()
        assert main(["table1", "--scale", "0.1", "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr()
        # Stats go to stderr precisely so cached stdout stays byte-identical.
        assert second.out == first.out
        assert "[cache]" in second.err
        assert "hits=0 " not in second.err  # the warm run must report hits

    def test_no_cache_flag_disables_the_store(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["table1", "--scale", "0.1", "--cache-dir", cache_dir, "--no-cache"]
        ) == 0
        output = capsys.readouterr()
        assert "[cache]" not in output.err
        assert not (tmp_path / "cache").exists()

    def test_cache_dir_from_environment(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert main(["table1", "--scale", "0.1"]) == 0
        assert "[cache]" in capsys.readouterr().err
        assert (tmp_path / "envcache").is_dir()

    def test_cache_stats_and_clear_subcommands(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["table1", "--scale", "0.1", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        stats = capsys.readouterr().out
        assert "entries" in stats
        assert "entries         : 0" not in stats  # the run above filled it
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries         : 0" in capsys.readouterr().out

    def test_cache_subcommand_without_directory_is_an_error(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 2
        assert "no cache directory" in capsys.readouterr().err

    def test_cache_stats_json_output(self, tmp_path, capsys):
        import json

        cache_dir = str(tmp_path / "cache")
        assert main(["table1", "--scale", "0.1", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["directory"] == cache_dir
        assert payload["cache"]["entries"] > 0
        assert payload["cache"]["disk_bytes"] > 0
        # The same schema the service stats snapshot's "cache" object uses.
        for key in ("hits", "misses", "hit_rate", "stores", "evictions", "corrupt"):
            assert key in payload["cache"]

    def test_serve_and_loadgen_subcommands_in_parser(self):
        parser = build_parser()
        help_text = parser.format_help()
        assert "serve" in help_text
        assert "loadgen" in help_text

    def test_loadgen_self_serve_smoke(self, capsys):
        code = main(
            [
                "loadgen",
                "--self-serve",
                "--mix",
                "hot",
                "--requests",
                "10",
                "--clients",
                "3",
                "--seed",
                "4",
                "--expect-coalesced",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0, output
        assert "10/10 completed" in output
        assert "invariants      : all held" in output

    def test_table2_reports_honest_timing_on_stderr(self, capsys):
        assert main(["table2", "--scale", "0.05", "--workers", "1"]) == 0
        output = capsys.readouterr()
        assert "CPU (s)" in output.out
        assert "wall-clock elapsed" in output.err
        assert "wall-clock elapsed" not in output.out
        assert "cache hit" not in output.err  # no cache, no replay caveat

    def test_table2_warm_run_flags_replayed_cpu_timings(self, tmp_path, capsys):
        """A warm run's CPU total is replayed from the cold run's entries —
        the note must say so instead of claiming this run spent it."""

        cache_dir = str(tmp_path / "cache")
        args = ["table2", "--scale", "0.05", "--workers", "1", "--cache-dir", cache_dir]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "replayed" in err and "cache hit" in err


class TestEndToEnd:
    def test_full_pipeline_on_the_paper_example_inputs(self):
        """Allocate a realistic procedure, place, insert, and execute."""

        procedure = generate_procedure(
            GeneratorConfig(name="endtoend", seed=20, num_segments=6, invocations=50)
        )
        machine = parisc_target()
        allocation = allocate_registers(procedure.function, machine, procedure.profile)
        result = place_hierarchical(allocation.function, allocation.usage, procedure.profile)
        verify_placement(allocation.function, allocation.usage, result.placement)

        final = allocation.function.clone()
        apply_placement(final, result.placement)
        execution = run_with_convention_check(final, machine)
        assert execution.steps > 0

    def test_semantics_preserved_through_allocation_and_insertion(self):
        function = loop_function()
        machine = riscish_target()
        reference = Interpreter(machine=machine).run(function)

        allocation = allocate_registers(function, machine)
        placement = place_hierarchical(
            allocation.function,
            allocation.usage,
            __import__("repro.profiling.synthetic", fromlist=["uniform_profile"]).uniform_profile(
                allocation.function, invocations=10
            ),
        ).placement
        final = allocation.function.clone()
        apply_placement(final, placement)
        rerun = run_with_convention_check(final, machine)
        assert rerun.return_values == reference.return_values

    def test_compile_procedure_agrees_with_interpreter_counts(self):
        """Analytic callee-saved overhead equals interpreter counts when the
        profile is derived from the actual execution."""

        from repro.profiling.profile_data import EdgeProfile
        from repro.spill.insertion import apply_placement as apply
        from repro.spill.overhead import placement_dynamic_overhead

        machine = parisc_target()
        function = call_chain_function()
        allocation = allocate_registers(function, machine)
        run = Interpreter(machine=machine).run(allocation.function)
        profile = EdgeProfile.from_counts(
            allocation.function,
            {edge: float(count) for edge, count in run.edge_counts.items()},
            invocations=1.0,
        )
        result = place_hierarchical(allocation.function, allocation.usage, profile)
        analytic = placement_dynamic_overhead(allocation.function, profile, result.placement)

        final = allocation.function.clone()
        insertion = apply(final, result.placement)
        measured = Interpreter(machine=machine).run(final)
        assert measured.purpose_counts.get("callee_save", 0) == pytest.approx(analytic.save_count)
        assert measured.purpose_counts.get("callee_restore", 0) == pytest.approx(analytic.restore_count)

    def test_paper_example_through_the_generic_pipeline(self):
        """Running the worked example through the full pipeline re-derives the
        occupancy from a fresh register allocation (the condition register is
        live across every call), so the entry/exit cost is still 2 per
        invocation and the ordering guarantee holds.  The exact paper numbers
        (200 / 250 / 190) are asserted in tests/spill/test_hierarchical.py
        using the paper's hand-specified occupancy."""

        example = paper_example()
        compiled = compile_procedure((example.function, example.profile))
        baseline = compiled.callee_saved_overhead("baseline")
        assert baseline == 200 * len(compiled.usage.used_registers())
        assert compiled.callee_saved_overhead("optimized") <= baseline
        assert compiled.callee_saved_overhead("optimized") <= compiled.callee_saved_overhead("shrinkwrap")
