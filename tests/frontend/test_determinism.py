"""Pinned translation fingerprints and cross-process determinism.

``traces/pyfunc_fingerprints.json`` records the translation fingerprint of
every corpus function at the time the frontend was built.  Mirroring the
lint/corpus/loadgen trace patterns, the fingerprints are pinned as a
*file*: any change to the lowering — different register names, block
order, instruction selection — shows up as a fingerprint diff and must be
an intentional, reviewed regeneration (rerun the snippet below from the
repository root) rather than drift::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.frontend import python_identity
    from repro.workloads.catalog import corpus_module
    from repro.workloads.catalog.pyfuncs import CORPUS_MODULES
    trace = {"schema": "pyfunc-fingerprint-trace/v1",
             "python": python_identity(), "modules": {}, "entries": {}}
    for mod in CORPUS_MODULES:
        short = mod.__name__.rsplit(".", 1)[-1]
        tm = corpus_module(short)
        trace["modules"][short] = tm.fingerprint()
        for tf in tm.functions.values():
            trace["entries"][f"{short}.{tf.python_name}"] = {
                "ir_name": tf.ir_name, "argcount": tf.argcount,
                "fingerprint": tf.fingerprint()}
    with open("tests/frontend/traces/pyfunc_fingerprints.json", "w") as fh:
        json.dump(trace, fh, indent=2, sort_keys=True); fh.write("\n")
    PY

Bytecode differs across CPython minor versions, so the reproduction tests
skip when the running interpreter does not match the trace's recorded
``python`` identity.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.frontend import python_identity, translate_function
from repro.workloads.catalog import corpus_module
from repro.workloads.catalog.pyfuncs import CORPUS_MODULES, textbook

TRACE_PATH = os.path.join(
    os.path.dirname(__file__), "traces", "pyfunc_fingerprints.json"
)

SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


def load_trace():
    """The pinned fingerprint table."""

    with open(TRACE_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def module_shortnames():
    return [mod.__name__.rsplit(".", 1)[-1] for mod in CORPUS_MODULES]


def test_trace_schema():
    trace = load_trace()
    assert trace["schema"] == "pyfunc-fingerprint-trace/v1"
    assert trace["entries"], "empty trace"
    assert len(trace["entries"]) >= 15


def test_trace_covers_every_corpus_function():
    trace = load_trace()
    for mod in CORPUS_MODULES:
        short = mod.__name__.rsplit(".", 1)[-1]
        translated = corpus_module(short)
        assert short in trace["modules"]
        for name in translated.functions:
            assert f"{short}.{name}" in trace["entries"], f"{short}.{name} unpinned"


@pytest.mark.parametrize("short", module_shortnames())
def test_fingerprints_still_reproduce(short):
    """Re-translate every pinned function and compare byte-identically."""

    trace = load_trace()
    if trace["python"] != python_identity():
        pytest.skip(
            f"trace pinned on Python {trace['python']}, "
            f"running {python_identity()}"
        )
    translated = corpus_module(short)
    assert translated.fingerprint() == trace["modules"][short], (
        f"module {short} translation changed; if intentional, regenerate "
        "tests/frontend/traces/pyfunc_fingerprints.json"
    )
    for name, function in translated.functions.items():
        pinned = trace["entries"][f"{short}.{name}"]
        assert function.ir_name == pinned["ir_name"]
        assert function.argcount == pinned["argcount"]
        assert function.fingerprint() == pinned["fingerprint"], (
            f"{short}.{name}: translation changed; if intentional, regenerate "
            "tests/frontend/traces/pyfunc_fingerprints.json"
        )


def test_translation_is_deterministic_in_process():
    first = translate_function(textbook.gcd).fingerprint()
    second = translate_function(textbook.gcd).fingerprint()
    assert first == second


_SUBPROCESS_SNIPPET = """
import json, sys
from repro.workloads.catalog import corpus_module
from repro.workloads.catalog.pyfuncs import CORPUS_MODULES
out = {}
for mod in CORPUS_MODULES:
    short = mod.__name__.rsplit(".", 1)[-1]
    out[short] = corpus_module(short).fingerprint()
print(json.dumps(out, sort_keys=True))
"""


def _fingerprints_under_hashseed(seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SNIPPET],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return completed.stdout.strip()


def test_fingerprints_identical_across_hash_seeds():
    """Fresh interpreters under different PYTHONHASHSEED values produce
    byte-identical module fingerprints — the determinism contract the
    compile cache and the pinned trace both rely on."""

    zero = _fingerprints_under_hashseed("0")
    forty_two = _fingerprints_under_hashseed("42")
    assert zero == forty_two
    assert zero  # non-empty payload
    in_process = json.dumps(
        {
            short: corpus_module(short).fingerprint()
            for short in module_shortnames()
        },
        sort_keys=True,
    )
    assert zero == in_process
