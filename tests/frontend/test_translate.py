"""Unit tests for the CPython-bytecode-to-IR translator."""

from __future__ import annotations

import pytest

from repro.frontend import (
    TranslatedFunction,
    TranslatedModule,
    UnsupportedOpcodeError,
    pyfunc_ir_name,
    resolve_callable,
    translate_callables,
    translate_function,
    translate_spec,
)
from repro.ir.verifier import verify_function
from repro.profiling.interpreter import Interpreter
from repro.workloads.catalog.pyfuncs import stdlib_derived, textbook


def run_translated(func, args, module=None):
    """Interpret the translated form of ``func`` on ``args``."""

    translated = translate_function(func) if module is None else module
    if isinstance(translated, TranslatedModule):
        target = translated.functions[func.__name__]
        return Interpreter(module=translated.module).run(
            target.function, args
        ).return_values[0]
    return Interpreter().run(translated.function, args).return_values[0]


class TestBasics:
    def test_simple_arithmetic(self):
        def poly(x, y):
            return 3 * x + y * y - 7

        assert run_translated(poly, [5, 4]) == poly(5, 4)

    def test_params_become_named_locals(self):
        def add(a, b):
            return a + b

        translated = translate_function(add)
        names = [p.name for p in translated.function.params]
        assert names == ["loc.a", "loc.b"]
        assert translated.argcount == 2

    def test_ir_name_namespacing(self):
        translated = translate_function(textbook.gcd)
        assert translated.ir_name == pyfunc_ir_name("textbook", "gcd")
        assert translated.ir_name.startswith("pyfunc.")

    def test_translated_function_verifies_single_exit(self):
        translated = translate_function(textbook.collatz_steps)
        assert verify_function(translated.function, require_single_exit=True) in (
            None,
            [],
        )

    def test_return_none_translates_to_zero(self):
        def nothing(x):
            x + 1

        assert run_translated(nothing, [5]) == 0

    def test_floor_division_matches_python_on_negatives(self):
        def floordiv(a, b):
            return a // b

        def remainder(a, b):
            return a % b

        for a in (-7, -1, 0, 1, 7, 13):
            for b in (-3, -2, 2, 3, 5):
                assert run_translated(floordiv, [a, b]) == a // b
                assert run_translated(remainder, [a, b]) == a % b

    def test_while_loop_and_compare(self):
        assert run_translated(textbook.digit_sum, [98765]) == 35

    def test_for_range_all_shapes(self):
        def up(n):
            total = 0
            for i in range(n):
                total += i
            return total

        def stepped(n):
            total = 0
            for i in range(2, n, 3):
                total += i
            return total

        def down(n):
            total = 0
            for i in range(n, 0, -1):
                total += i
            return total

        for n in (0, 1, 5, 11):
            assert run_translated(up, [n]) == up(n)
            assert run_translated(stepped, [n]) == stepped(n)
            assert run_translated(down, [n]) == down(n)

    def test_tuple_swap_assignment(self):
        assert run_translated(textbook.fib_iter, [10]) == 55

    def test_boolean_operators_short_circuit(self):
        assert run_translated(stdlib_derived.isleap, [2000]) == 1
        assert run_translated(stdlib_derived.isleap, [1900]) == 0
        assert run_translated(stdlib_derived.isleap, [2024]) == 1

    def test_unary_operators(self):
        def ops(x):
            return -x + ~x + (not x)

        for x in (-3, 0, 4):
            assert run_translated(ops, [x]) == ops(x)


class TestCalls:
    def test_intra_module_call_resolves(self):
        module = translate_callables(
            {"gcd": textbook.gcd, "lcm": textbook.lcm}, module_name="textbook"
        )
        assert run_translated(textbook.lcm, [12, 18], module=module) == 36

    def test_call_records_callee(self):
        module = translate_callables(
            {"gcd": textbook.gcd, "lcm": textbook.lcm}, module_name="textbook"
        )
        lcm = module.functions["lcm"]
        assert "gcd" in lcm.calls

    def test_leaf_function_has_no_calls(self):
        module = translate_callables({"gcd": textbook.gcd}, module_name="m")
        gcd = module.functions["gcd"]
        assert gcd.calls == ()


class TestRejection:
    def test_unsupported_opcode_names_the_instruction(self):
        def makes_a_list(n):
            return [n]

        with pytest.raises(UnsupportedOpcodeError) as excinfo:
            translate_function(makes_a_list)
        assert "BUILD_LIST" in str(excinfo.value)
        assert excinfo.value.instruction is not None

    def test_closures_rejected(self):
        y = 3

        def closure(x):
            return x + y

        with pytest.raises((UnsupportedOpcodeError, ValueError)):
            translate_function(closure)

    def test_varargs_rejected(self):
        def star(*xs):
            return 0

        with pytest.raises((UnsupportedOpcodeError, ValueError)):
            translate_function(star)


class TestSpecs:
    def test_resolve_callable_dotted_spec(self):
        func = resolve_callable("repro.workloads.catalog.pyfuncs.textbook:gcd")
        assert func is textbook.gcd

    def test_translate_spec_round_trip(self):
        translated = translate_spec(
            "repro.workloads.catalog.pyfuncs.textbook:gcd"
        )
        assert isinstance(translated, TranslatedFunction)
        assert translated.python_name == "gcd"

    def test_bad_spec_raises(self):
        with pytest.raises((ValueError, ImportError, AttributeError)):
            resolve_callable("no-colon-here")
        with pytest.raises((ValueError, ImportError, AttributeError)):
            resolve_callable("repro.workloads.catalog.pyfuncs.textbook:nope")
