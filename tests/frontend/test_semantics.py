"""Differential semantics: translated IR must return what CPython returns.

Every corpus function is run three ways and all results must agree with
calling the original Python function:

1. raw translated IR through the interpreter,
2. after register allocation on every registered target,
3. after allocation *plus* each placement technique's spill code, with the
   machine's calling convention active (caller-saved clobbering, callee-saved
   sentinels).

The same check runs continuously inside ``repro-spill stress --catalog`` as
the ``frontend-semantics`` invariant; this battery is its tier-1 anchor.
"""

from __future__ import annotations

import random

import pytest

from repro.ir.module import Module
from repro.pipeline.compiler import TECHNIQUES, compile_procedure
from repro.profiling.interpreter import Interpreter
from repro.spill.insertion import apply_placement
from repro.target.registry import available_targets, get_target
from repro.workloads.catalog import corpus_functions, corpus_module, get_catalog
from repro.workloads.catalog.pyfuncs import CORPUS_MODULES

#: Seeded trials per (function, configuration).
TRIALS = 3


def corpus_cases():
    """(module shortname, function name) pairs for the whole corpus."""

    cases = []
    for mod in CORPUS_MODULES:
        short = mod.__name__.rsplit(".", 1)[-1]
        for name in corpus_functions(short):
            cases.append((short, name))
    return cases


def pyfunc_entry(short, name):
    """The catalog entry binding this corpus function (MD variant)."""

    catalog = get_catalog()
    for entry_name in catalog.names("pyfunc"):
        entry = catalog.resolve(entry_name)
        if entry.module == short and entry.func == name and entry.pressure == "MD":
            return entry
    raise AssertionError(f"no MD catalog entry for {short}.{name}")


def seeded_args(entry, tag):
    rng = random.Random(f"frontend-semantics-test/{tag}")
    return [entry.draw_inputs(rng) for _ in range(TRIALS)]


def sibling_module(short, root_function):
    """An IR module with the corpus siblings plus ``root_function`` as root."""

    translated = corpus_module(short)
    module = Module(f"test.{short}")
    module.add_function(root_function)
    for sibling in translated.functions.values():
        if sibling.ir_name != root_function.name:
            module.add_function(sibling.function.clone())
    return module


@pytest.mark.parametrize("short,name", corpus_cases())
def test_raw_translation_matches_cpython(short, name):
    python_func = corpus_functions(short)[name]
    translated = corpus_module(short).functions[name]
    entry = pyfunc_entry(short, name)
    root = translated.function.clone()
    module = sibling_module(short, root)
    interpreter = Interpreter(module=module)
    for args in seeded_args(entry, f"raw/{short}.{name}"):
        got = interpreter.run(root, args).return_values
        assert got == (int(python_func(*args)),), f"{short}.{name}{tuple(args)}"


@pytest.mark.parametrize("target", available_targets())
@pytest.mark.parametrize("short,name", corpus_cases())
def test_compiled_translation_matches_cpython(short, name, target):
    """Allocation + every technique's spill code preserve the semantics on
    every registered target, with calling-convention clobbering active."""

    python_func = corpus_functions(short)[name]
    entry = pyfunc_entry(short, name)
    machine = get_target(target)
    procedure = entry.build(0, 0, machine)
    compiled = compile_procedure(
        procedure, machine=machine, techniques=TECHNIQUES, verify=True
    )
    cases = seeded_args(entry, f"compiled/{target}/{short}.{name}")
    for technique in TECHNIQUES:
        final = compiled.allocation.function.clone()
        apply_placement(final, compiled.outcomes[technique].placement)
        module = sibling_module(short, final)
        interpreter = Interpreter(module=module, machine=machine)
        for args in cases:
            got = interpreter.run(final, args).return_values
            assert got == (int(python_func(*args)),), (
                f"{short}.{name}{tuple(args)} via {technique} on {target}"
            )


def test_corpus_is_large_enough():
    """The acceptance floor: >= 15 corpus functions, >= 5 stdlib-derived."""

    cases = corpus_cases()
    assert len(cases) >= 15
    stdlib = [case for case in cases if case[0] == "stdlib_derived"]
    assert len(stdlib) >= 5
