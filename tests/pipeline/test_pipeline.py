"""Tests for the pass manager, timing helpers and the compile pipeline."""

import pytest

from repro.ir.module import Module
from repro.ir.passes import ensure_single_exit, remove_unreachable_blocks
from repro.pipeline.compiler import TECHNIQUES, compile_procedure
from repro.pipeline.passes import PassManager
from repro.pipeline.timing import Stopwatch
from repro.target.generic import riscish_target
from repro.workloads.generator import GeneratorConfig, generate_procedure
from repro.workloads.programs import diamond_function, loop_function, paper_example


class TestStopwatch:
    def test_measure_accumulates(self):
        watch = Stopwatch()
        with watch.measure("a"):
            sum(range(1000))
        with watch.measure("a"):
            sum(range(1000))
        assert watch.get("a") > 0
        assert watch.get("missing") == 0.0
        assert watch.total() == pytest.approx(watch.get("a"))

    def test_merge(self):
        first, second = Stopwatch(), Stopwatch()
        with first.measure("x"):
            pass
        with second.measure("x"):
            pass
        first.merge(second)
        assert first.get("x") >= second.get("x")


class TestPassManager:
    def test_passes_run_in_order_with_records(self):
        manager = PassManager(verify_between_passes=True)
        calls = []
        manager.add_pass("first", lambda f: calls.append("first"))
        manager.add_pass("second", lambda f: calls.append("second"))
        records = manager.run_on_function(diamond_function())
        assert calls == ["first", "second"]
        assert [r.pass_name for r in records] == ["first", "second"]
        assert manager.total_seconds() >= 0
        assert manager.total_seconds("first") <= manager.total_seconds()

    def test_run_on_module(self):
        module = Module("m")
        module.add_function(diamond_function())
        module.add_function(loop_function())
        manager = PassManager()
        manager.add_pass("noop", lambda f: None)
        records = manager.run_on_module(module)
        assert len(records) == 2

    def test_standard_normalization_passes_compose(self):
        manager = PassManager(verify_between_passes=True)
        manager.add_pass("remove-unreachable", remove_unreachable_blocks)
        manager.add_pass("single-exit", ensure_single_exit)
        manager.run_on_function(loop_function())


class TestCompilePipeline:
    @pytest.fixture(scope="class")
    def compiled(self):
        procedure = generate_procedure(GeneratorConfig(name="pipeline", seed=9, num_segments=6))
        return compile_procedure(procedure)

    def test_all_techniques_measured(self, compiled):
        assert set(compiled.outcomes) == set(TECHNIQUES)
        for technique in TECHNIQUES:
            assert compiled.callee_saved_overhead(technique) >= 0

    def test_total_overhead_includes_allocator_spill(self, compiled):
        for technique in TECHNIQUES:
            assert compiled.total_overhead(technique) == pytest.approx(
                compiled.allocator_overhead + compiled.callee_saved_overhead(technique)
            )

    def test_optimized_never_worse(self, compiled):
        assert compiled.callee_saved_overhead("optimized") <= compiled.callee_saved_overhead("baseline") + 1e-6
        assert compiled.callee_saved_overhead("optimized") <= compiled.callee_saved_overhead("shrinkwrap") + 1e-6

    def test_pass_timings_recorded(self, compiled):
        for name in ("regalloc",) + TECHNIQUES:
            assert name in compiled.pass_seconds

    def test_function_profile_pair_input(self):
        example = paper_example()
        # Pre-allocated functions contain no virtual registers, so the
        # allocator is a no-op and the provided occupancy must be recomputed.
        compiled = compile_procedure((example.function, example.profile))
        assert compiled.name == "paper_example"

    def test_custom_machine_and_techniques(self):
        procedure = generate_procedure(GeneratorConfig(name="custom", seed=4, num_segments=4))
        compiled = compile_procedure(
            procedure, machine=riscish_target(), techniques=("baseline", "optimized")
        )
        assert set(compiled.outcomes) == {"baseline", "optimized"}

    def test_unknown_technique_rejected(self):
        procedure = generate_procedure(GeneratorConfig(name="bad", seed=4, num_segments=2))
        with pytest.raises(ValueError):
            compile_procedure(procedure, techniques=("baseline", "mystery"))
