"""The pipeline's lint gate: strict mode, batch all-or-nothing, zero cost off."""

from __future__ import annotations

import pytest

from repro.lint import LintError
from repro.pipeline.compiler import compile_many, compile_procedure
from repro.target.registry import get_target
from repro.workloads.scenarios import build_scenario


def chaos(count=5):
    return build_scenario("chaos_cfg", seed=0, count=count, machine=get_target("parisc"))


def clean(count=2):
    return build_scenario("classic_mix", seed=0, count=count, machine=get_target("parisc"))


class TestCompileProcedure:
    def test_strict_passes_warn_only_procedures(self):
        compiled = compile_procedure(clean(1)[0], machine="parisc", lint="strict")
        assert compiled.outcomes

    def test_strict_rejects_error_procedures_with_structured_reports(self):
        bad = chaos()[4]  # draw 4 carries a genuine uninitialized read
        with pytest.raises(LintError) as excinfo:
            compile_procedure(bad, machine="parisc", lint="strict")
        (report,) = excinfo.value.reports
        assert report.function == bad.name
        assert report.has_errors()
        payload = excinfo.value.payload()
        assert payload["reports"][0]["function"] == bad.name

    def test_unknown_policy_is_a_value_error(self):
        with pytest.raises(ValueError, match="lint policy"):
            compile_procedure(clean(1)[0], machine="parisc", lint="pedantic")

    def test_rejection_happens_before_any_compile_work(self):
        """A strict rejection must not populate the cache."""

        from repro.cache.store import CompileCache
        import tempfile

        bad = chaos()[4]
        with tempfile.TemporaryDirectory() as directory:
            cache = CompileCache(directory)
            with pytest.raises(LintError):
                compile_procedure(bad, machine="parisc", lint="strict", cache=cache)
            assert cache.entry_count() == 0


class TestCompileMany:
    def test_batch_gate_is_all_or_nothing(self):
        procedures = chaos()
        with pytest.raises(LintError) as excinfo:
            compile_many(procedures, machine="parisc", lint="strict")
        # Every offending procedure is reported in one exception; the ones
        # that lint clean are not compiled either (all-or-nothing).
        assert len(excinfo.value.reports) >= 1
        for report in excinfo.value.reports:
            assert report.has_errors()

    def test_clean_batch_compiles_under_strict(self):
        results = compile_many(clean(), machine="parisc", lint="strict")
        assert len(results) == 2

    def test_lint_none_is_the_default_and_identical(self):
        procedures = clean()
        default = compile_many(procedures, machine="parisc")
        off = compile_many(procedures, machine="parisc", lint=None)
        for a, b in zip(default, off):
            assert a.name == b.name
            assert a.allocator_overhead == b.allocator_overhead
            for technique in a.outcomes:
                assert a.callee_saved_overhead(technique) == b.callee_saved_overhead(
                    technique
                )
