"""Tests for live ranges, interference, colouring and the allocation driver."""

import pytest

from hypothesis import given, settings

from repro.analysis.liveness import compute_liveness
from repro.ir.builder import FunctionBuilder
from repro.ir.values import PhysicalRegister, VirtualRegister
from repro.ir.verifier import verify_function
from repro.profiling.interpreter import Interpreter, run_with_convention_check
from repro.regalloc.allocator import RegisterAllocationError, allocate_registers
from repro.regalloc.callee_saved import compute_callee_saved_usage
from repro.regalloc.coloring import color_graph
from repro.regalloc.interference import build_interference_graph
from repro.regalloc.live_ranges import compute_live_ranges
from repro.regalloc.rewriter import insert_spill_code, isolate_parameters, unassigned_virtual_registers
from repro.target.generic import tiny_target
from repro.target.parisc import parisc_target
from repro.workloads.programs import call_chain_function, diamond_function, loop_function

from tests.conftest import generated_procedures


def _call_crossing_function():
    """x is live across a call; y is not."""

    builder = FunctionBuilder("crossing")
    builder.block("entry")
    x = builder.const(5)
    y = builder.const(7)
    builder.add(y, 1)
    builder.call("helper")
    builder.add(x, 2)
    builder.block("exit")
    builder.ret()
    return builder.build(), x, y


class TestLiveRanges:
    def test_call_crossing_detection(self):
        function, x, y = _call_crossing_function()
        ranges = compute_live_ranges(function)
        assert ranges.ranges[x].crosses_call
        assert not ranges.ranges[y].crosses_call
        assert x in set(ranges.call_crossing_registers())

    def test_return_value_detection(self):
        builder = FunctionBuilder("retval")
        builder.block("entry")
        value = builder.const(3)
        builder.block("exit")
        builder.ret([value])
        ranges = compute_live_ranges(builder.build())
        assert ranges.ranges[value].used_by_return

    def test_parameter_flag_and_blocks(self):
        builder = FunctionBuilder("params")
        param = builder.new_vreg()
        builder.function.params = (param,)
        builder.block("entry")
        builder.add(param, 1)
        builder.block("exit")
        builder.ret()
        ranges = compute_live_ranges(builder.build())
        assert ranges.ranges[param].is_parameter
        assert "entry" in ranges.ranges[param].blocks

    def test_spill_cost_uses_profile_weights(self):
        function = loop_function()
        from repro.profiling.synthetic import profile_from_branch_probabilities

        profile = profile_from_branch_probabilities(function, invocations=10)
        ranges = compute_live_ranges(function, profile)
        counter = VirtualRegister("v0")
        unweighted = compute_live_ranges(function).ranges[counter].spill_cost
        weighted = ranges.ranges[counter].spill_cost
        assert weighted != unweighted


class TestInterference:
    def test_simultaneously_live_values_interfere(self):
        function, x, y = _call_crossing_function()
        graph = build_interference_graph(function, compute_liveness(function))
        assert graph.interferes(x, y)

    def test_move_related_values_do_not_interfere_through_the_move(self):
        builder = FunctionBuilder("moves")
        builder.block("entry")
        a = builder.const(1)
        b = builder.move(a)
        builder.add(b, 1)
        builder.add(a, 2)   # keep the source live across the move
        builder.block("exit")
        builder.ret()
        function = builder.build()
        graph = build_interference_graph(function, compute_liveness(function))
        assert not graph.interferes(a, b)
        assert b in graph.move_partners(a) or a in graph.move_partners(b)

    def test_degree_and_edge_count(self):
        function, x, y = _call_crossing_function()
        graph = build_interference_graph(function, compute_liveness(function))
        assert graph.degree(x) >= 1
        assert graph.num_edges() >= 1


class TestColoring:
    def test_call_crossing_ranges_get_callee_saved_registers(self):
        function, x, y = _call_crossing_function()
        machine = parisc_target()
        ranges = compute_live_ranges(function)
        graph = build_interference_graph(function, ranges.liveness)
        result = color_graph(graph, ranges, machine)
        assert result.is_complete
        assert machine.is_callee_saved(result.assignment[x])
        assert machine.is_caller_saved(result.assignment[y])

    def test_interfering_nodes_get_distinct_colours(self):
        function, x, y = _call_crossing_function()
        machine = parisc_target()
        ranges = compute_live_ranges(function)
        graph = build_interference_graph(function, ranges.liveness)
        result = color_graph(graph, ranges, machine)
        for node in graph.nodes:
            for neighbour in graph.neighbours(node):
                if node in result.assignment and neighbour in result.assignment:
                    assert result.assignment[node] != result.assignment[neighbour]

    def test_pressure_beyond_register_count_spills(self):
        builder = FunctionBuilder("pressure")
        builder.block("entry")
        values = [builder.const(i) for i in range(8)]
        builder.call("helper")
        for value in values:
            builder.add(value, 1)
        builder.block("exit")
        builder.ret()
        function = builder.build()
        machine = tiny_target(2, 2)
        ranges = compute_live_ranges(function)
        graph = build_interference_graph(function, ranges.liveness)
        result = color_graph(graph, ranges, machine)
        assert result.spilled  # 8 simultaneously-live call-crossing values, 2 callee-saved regs


class TestRewriter:
    def test_spill_temp_classification(self):
        from repro.regalloc.rewriter import is_spill_temp

        assert is_spill_temp(VirtualRegister("v3.s7"))
        assert is_spill_temp(VirtualRegister("v3.s7.s12"))
        assert is_spill_temp(VirtualRegister("v0.arg.s2"))
        # Dotted names from other passes are NOT allocator temporaries —
        # notably ensure_single_exit's retval registers for functions whose
        # name starts with "s".
        assert not is_spill_temp(VirtualRegister("retval.sum.0"))
        assert not is_spill_temp(VirtualRegister("v0.arg"))
        assert not is_spill_temp(VirtualRegister("v7"))
        assert not is_spill_temp(PhysicalRegister("s1", 1))

    def test_insert_spill_code_adds_loads_and_stores(self):
        function, x, _y = _call_crossing_function()
        slots = insert_spill_code(function, [x])
        assert x in slots
        purposes = [i.purpose for i in function.instructions() if i.is_memory()]
        assert purposes.count("spill") >= 2
        # The original register no longer appears; only its split temporaries.
        assert x not in {r for i in function.instructions() for r in i.registers()}

    def test_isolate_parameters_inserts_entry_moves(self):
        builder = FunctionBuilder("p")
        param = builder.new_vreg()
        builder.function.params = (param,)
        builder.block("entry")
        builder.call("helper")
        builder.add(param, 1)
        builder.block("exit")
        builder.ret()
        function = builder.build()
        mapping = isolate_parameters(function)
        assert param in mapping
        first = function.entry.instructions[0]
        assert first.opcode.value == "mov"
        assert first.uses == (param,)


class TestAllocator:
    def test_allocation_removes_all_virtual_registers(self):
        allocation = allocate_registers(call_chain_function(), parisc_target())
        assert unassigned_virtual_registers(allocation.function) == set()
        verify_function(allocation.function, require_single_exit=True)

    def test_allocation_reports_callee_saved_usage(self):
        allocation = allocate_registers(call_chain_function(), parisc_target())
        # The accumulator crosses every call, so at least one callee-saved
        # register is occupied somewhere.
        assert allocation.usage.used_registers() or allocation.num_spilled > 0

    def test_original_function_is_not_modified(self):
        function = call_chain_function()
        before = function.instruction_count()
        allocate_registers(function, parisc_target())
        assert function.instruction_count() == before

    def test_small_register_file_forces_spills_but_converges(self):
        allocation = allocate_registers(call_chain_function(), tiny_target(2, 1))
        assert allocation.rounds >= 1
        assert unassigned_virtual_registers(allocation.function) == set()

    def test_semantics_preserved_by_allocation(self):
        function = call_chain_function()
        machine = parisc_target()
        reference = Interpreter(machine=machine).run(function)
        allocation = allocate_registers(function, machine)
        allocated_result = run_with_convention_check(allocation.function, machine)
        assert allocated_result.return_values == reference.return_values

    def test_callee_saved_usage_map_matches_liveness(self):
        allocation = allocate_registers(call_chain_function(), parisc_target())
        usage = compute_callee_saved_usage(allocation.function, parisc_target())
        assert usage.occupancy == allocation.usage.occupancy

    @given(generated_procedures(max_segments=4))
    @settings(max_examples=15)
    def test_allocation_of_generated_procedures_is_complete_and_valid(self, procedure):
        machine = parisc_target()
        allocation = allocate_registers(procedure.function, machine, procedure.profile)
        assert unassigned_virtual_registers(allocation.function) == set()
        verify_function(allocation.function, require_single_exit=True)
        # Occupied blocks must be actual blocks of the function.
        labels = set(allocation.function.block_labels)
        for register in allocation.usage.used_registers():
            assert allocation.usage.blocks_for(register) <= labels


class TestEveryRegisteredTarget:
    """Allocation invariants hold on every registered machine description."""

    def test_allocation_completes_and_preserves_semantics(self, registered_machine):
        function = call_chain_function()
        reference = Interpreter(machine=registered_machine).run(function)
        allocation = allocate_registers(function, registered_machine)
        assert unassigned_virtual_registers(allocation.function) == set()
        verify_function(allocation.function, require_single_exit=True)
        result = run_with_convention_check(allocation.function, registered_machine)
        assert result.return_values == reference.return_values

    def test_assignment_respects_register_classes(self, registered_machine):
        allocation = allocate_registers(call_chain_function(), registered_machine)
        for phys in allocation.assignment.values():
            assert registered_machine.is_caller_saved(phys) != registered_machine.is_callee_saved(phys)

    @given(generated_procedures(max_segments=3))
    @settings(max_examples=8)
    def test_generated_allocation_valid_on_target(self, registered_machine, procedure):
        allocation = allocate_registers(
            procedure.function, registered_machine, procedure.profile
        )
        assert unassigned_virtual_registers(allocation.function) == set()
        verify_function(allocation.function, require_single_exit=True)
        for register in allocation.usage.used_registers():
            assert registered_machine.is_callee_saved(register)
