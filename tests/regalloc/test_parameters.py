"""Parameter handling in the allocator: interference and stack overflow.

Two regressions pinned by the frontend's differential battery:

1. parameters have no defining instruction, and the entry ``mov`` copies
   from :func:`isolate_parameters` fall under the move def<->source
   interference exemption — without explicit edges every parameter of a
   multi-argument function coloured to the *same* physical register
   (``gcd(a, b)`` silently became ``gcd(b, b)``);
2. a function with more live-in parameters than the machine has
   caller-saved registers is unallocatable by colouring alone (the
   parameter clique can never fit and spilling a parameter makes no
   progress) — overflow parameters must be passed on the stack instead.
"""

from __future__ import annotations

import pytest

from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import Opcode
from repro.ir.values import StackSlot, VirtualRegister
from repro.analysis.liveness import compute_liveness
from repro.profiling.interpreter import Interpreter
from repro.regalloc.allocator import allocate_registers
from repro.regalloc.interference import build_interference_graph
from repro.regalloc.rewriter import demote_overflow_parameters, isolate_parameters
from repro.target.registry import available_targets, get_target


def n_param_function(n, name="subject"):
    """A function whose return value distinguishes every parameter.

    ``p0 + 2*p1 + 4*p2 + ...`` — any aliasing of two parameters changes
    the result for almost all inputs, so the interpreter catches it.
    """

    builder = FunctionBuilder(name)
    params = builder.new_vregs(n)
    builder.function.params = tuple(params)
    builder.block("entry")
    total = params[0]
    for position, param in enumerate(params[1:], start=1):
        scaled = builder.mul(param, 2**position)
        total = builder.add(total, scaled)
    builder.block("exit")
    builder.ret([total])
    return builder.build()


def weighted(args):
    return sum(value * 2**position for position, value in enumerate(args))


class TestParameterInterference:
    def test_parameters_interfere_pairwise(self):
        function = n_param_function(2)
        isolate_parameters(function)
        graph = build_interference_graph(function, compute_liveness(function))
        a, b = function.params
        assert graph.interferes(a, b)

    def test_two_parameters_get_distinct_registers(self):
        machine = get_target("parisc")
        function = n_param_function(2)
        result = allocate_registers(function, machine)
        # Pre-fix both parameters coloured to one register; the allocated
        # function then computed p1 + 2*p1.  After allocation the params
        # tuple holds the physical registers themselves.
        assert len(result.function.params) == 2
        assert len(set(result.function.params)) == 2

    @pytest.mark.parametrize("target", available_targets())
    @pytest.mark.parametrize("arity", (2, 3, 4))
    def test_allocated_function_keeps_every_parameter(self, target, arity):
        machine = get_target(target)
        function = n_param_function(arity)
        result = allocate_registers(function, machine)
        interpreter = Interpreter(machine=machine)
        for args in ([3, 5, 7, 11][:arity], [1, 0, 2, 9][:arity]):
            got = interpreter.run(result.function, args).return_values
            assert got == (weighted(args),), f"{args} on {target}"


class TestOverflowParameters:
    def test_overflow_goes_to_stack_slots(self):
        """tiny has two caller-saved registers; the third and fourth
        parameters must become ``!arg`` stack slots."""

        machine = get_target("tiny")
        function = n_param_function(4)
        isolate_parameters(function)
        slots = demote_overflow_parameters(function, machine)
        assert len(slots) == 2
        stack_params = [p for p in function.params if isinstance(p, StackSlot)]
        register_params = [p for p in function.params
                          if isinstance(p, VirtualRegister)]
        assert len(stack_params) == 2
        assert len(register_params) == 2
        arg_loads = [
            inst
            for inst in function.entry.instructions
            if inst.opcode is Opcode.LOAD and inst.purpose == "arg"
        ]
        assert len(arg_loads) == 2

    def test_no_demotion_when_registers_suffice(self):
        machine = get_target("parisc")
        function = n_param_function(4)
        isolate_parameters(function)
        assert demote_overflow_parameters(function, machine) == {}
        assert all(isinstance(p, VirtualRegister) for p in function.params)

    def test_three_arguments_allocate_on_tiny(self):
        """The original failure: a 3-argument function was stuck
        re-spilling its parameter clique on the 2-caller-saved target."""

        machine = get_target("tiny")
        function = n_param_function(3)
        result = allocate_registers(function, machine)
        interpreter = Interpreter(machine=machine)
        for args in ([1, 2, 3], [10, 0, 5], [0, 0, 0]):
            got = interpreter.run(result.function, args).return_values
            assert got == (weighted(args),)

    def test_parameter_order_is_preserved(self):
        machine = get_target("tiny")
        function = n_param_function(4)
        result = allocate_registers(function, machine)
        # Positional binding still matches the original signature: argument
        # i lands in parameter i whether it travels by register or stack.
        interpreter = Interpreter(machine=machine)
        args = [9, 1, 7, 3]
        assert interpreter.run(result.function, args).return_values == (
            weighted(args),
        )
