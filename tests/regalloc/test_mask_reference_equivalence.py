"""Differential tests: the mask-based regalloc hot path vs. the references.

The allocator's hot path (liveness bitsets, heap-based colouring, mask-based
callee-saved occupancy, the persistent per-target register index) must be
*bit-identical* to the straightforward set-based implementations it replaced.
Each optimized routine keeps its reference sibling in the source tree; these
tests run both on generated procedures — via hypothesis and via the
deterministic scenario families on several targets — and assert exact
equality, not approximate agreement.
"""

from hypothesis import given

import repro.analysis.bitset as bitset_mod
from repro.analysis.bitset import base_register_index
from repro.ir.values import VirtualRegister
from repro.regalloc.allocator import allocate_registers
from repro.regalloc.callee_saved import (
    compute_callee_saved_usage,
    compute_callee_saved_usage_reference,
)
from repro.regalloc.coloring import color_graph, color_graph_reference
from repro.regalloc.interference import build_interference_graph
from repro.regalloc.live_ranges import compute_live_ranges
from repro.target.generic import tiny_target
from repro.target.parisc import parisc_target
from repro.target.registry import get_target
from repro.workloads.scenarios import build_scenario_suite, scenario_names

from tests.conftest import generated_procedures


def _scenario_procedures(machine, seed=3, count=1):
    suite = build_scenario_suite(seed=seed, count=count, machine=machine)
    for name in scenario_names():
        for procedure in suite[name]:
            yield name, procedure


def _assert_same_coloring(procedure, machine):
    ranges = compute_live_ranges(procedure.function, procedure.profile, machine=machine)
    graph = build_interference_graph(procedure.function, ranges.liveness)
    fast = color_graph(graph, ranges, machine)
    reference = color_graph_reference(graph, ranges, machine)
    assert fast.assignment == reference.assignment
    assert fast.spilled == reference.spilled


@given(generated_procedures(max_segments=5))
def test_coloring_matches_reference_on_random_procedures(procedure):
    for machine in (parisc_target(), tiny_target()):
        _assert_same_coloring(procedure, machine)


def test_coloring_matches_reference_across_scenario_families():
    for target_name in ("parisc", "micro", "tiny"):
        machine = get_target(target_name)
        for _name, procedure in _scenario_procedures(machine):
            _assert_same_coloring(procedure, machine)


def _assert_same_usage(function, machine):
    fast = compute_callee_saved_usage(function, machine)
    reference = compute_callee_saved_usage_reference(function, machine)
    assert fast.used_registers() == reference.used_registers()
    for register in reference.used_registers():
        assert fast.blocks_for(register) == reference.blocks_for(register)


@given(generated_procedures(max_segments=5))
def test_callee_saved_usage_matches_reference(procedure):
    machine = parisc_target()
    allocation = allocate_registers(procedure.function, machine, procedure.profile)
    _assert_same_usage(allocation.function, machine)


def test_callee_saved_usage_matches_reference_across_scenario_families():
    for target_name in ("parisc", "micro"):
        machine = get_target(target_name)
        for _name, procedure in _scenario_procedures(machine):
            allocation = allocate_registers(
                procedure.function, machine, procedure.profile
            )
            _assert_same_usage(allocation.function, machine)


@given(generated_procedures(max_segments=5))
def test_live_ranges_identical_with_and_without_persistent_index(procedure):
    """The forked per-target index must not change any live-range fact."""

    machine = parisc_target()
    with_index = compute_live_ranges(procedure.function, procedure.profile, machine=machine)
    without = compute_live_ranges(procedure.function, procedure.profile)
    assert set(with_index.ranges) == set(without.ranges)
    for register, fast in with_index.ranges.items():
        slow = without.ranges[register]
        assert fast.blocks == slow.blocks
        assert fast.definitions == slow.definitions
        assert fast.uses == slow.uses
        assert fast.crosses_call == slow.crosses_call
        assert fast.is_parameter == slow.is_parameter
        assert fast.used_by_return == slow.used_by_return
        assert fast.spill_cost == slow.spill_cost


@given(generated_procedures(max_segments=5))
def test_interference_nodes_never_leak_from_persistent_index(procedure):
    """A forked base index pre-interns v0..v63; none of those registers may
    appear as interference nodes unless the function actually mentions them."""

    machine = parisc_target()
    function = procedure.function
    ranges = compute_live_ranges(function, procedure.profile, machine=machine)
    graph = build_interference_graph(function, ranges.liveness)

    mentioned = {p for p in function.params if isinstance(p, VirtualRegister)}
    for block in function.blocks:
        for inst in block.instructions:
            for register in inst.registers():
                if isinstance(register, VirtualRegister):
                    mentioned.add(register)
    assert graph.nodes <= mentioned


def test_persistent_index_reuse_is_isolated_across_compiles():
    """Compiling B after A (shared per-target index) must equal compiling B
    with a pristine registry: nothing about A may leak into B's allocation."""

    machine = parisc_target()
    procedures = [p for _n, p in _scenario_procedures(machine, seed=7, count=1)]
    assert len(procedures) >= 2

    def allocate_all(fresh_registry_each_time):
        results = []
        for procedure in procedures:
            if fresh_registry_each_time:
                bitset_mod._BASE_INDEXES.clear()
            allocation = allocate_registers(
                procedure.function, machine, procedure.profile
            )
            results.append(allocation)
        return results

    bitset_mod._BASE_INDEXES.clear()
    shared = allocate_all(fresh_registry_each_time=False)
    fresh = allocate_all(fresh_registry_each_time=True)
    for a, b in zip(shared, fresh):
        assert a.assignment == b.assignment
        assert a.spilled_registers == b.spilled_registers
        assert a.usage == b.usage
        assert a.rounds == b.rounds


def test_base_register_index_is_cached_per_machine():
    bitset_mod._BASE_INDEXES.clear()
    machine = parisc_target()
    first = base_register_index(machine)
    assert base_register_index(machine) is first
    fork = first.fork()
    assert fork is not first
    # Growing the fork must not grow the shared base.
    before = len(first)
    fork.add(VirtualRegister("v999991"))
    assert len(first) == before
