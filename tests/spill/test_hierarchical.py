"""Tests for cost models, the hierarchical algorithm (paper numbers) and insertion."""

import pytest

from repro.ir.function import ENTRY_SENTINEL, EXIT_SENTINEL
from repro.profiling.interpreter import Interpreter
from repro.spill.cost_models import (
    ExecutionCountCostModel,
    JumpEdgeCostModel,
    make_cost_model,
    requires_jump_block,
)
from repro.spill.entry_exit import place_entry_exit
from repro.spill.hierarchical import compute_jump_sharing, place_hierarchical
from repro.spill.insertion import apply_placement
from repro.spill.model import CalleeSavedUsage, SpillKind, SpillLocation
from repro.spill.overhead import placement_dynamic_overhead
from repro.spill.shrink_wrap import place_shrink_wrap
from repro.spill.verifier import verify_placement
from repro.workloads.programs import paper_example


@pytest.fixture(scope="module")
def example():
    return paper_example()


class TestJumpBlockPredicate:
    def test_virtual_edges_never_need_a_jump_block(self, example):
        assert not requires_jump_block(example.function, (ENTRY_SENTINEL, "A"))
        assert not requires_jump_block(example.function, ("P", EXIT_SENTINEL))

    def test_single_predecessor_destination_absorbs_the_code(self, example):
        # A -> I is a jump edge but I has a single predecessor.
        assert not requires_jump_block(example.function, ("A", "I"))

    def test_single_successor_source_absorbs_the_code(self, example):
        # F -> H: F has a single successor, so code goes at the end of F.
        assert not requires_jump_block(example.function, ("F", "H"))

    def test_critical_jump_edge_needs_a_jump_block(self, example):
        # D -> F: D has two successors, F has three predecessors, explicit jump.
        assert requires_jump_block(example.function, ("D", "F"))

    def test_critical_fallthrough_edge_needs_no_jump(self, example):
        # C -> D is D's only incoming edge, so no block is needed; build an
        # artificial critical fall-through via B -> C? B->C: C has one pred.
        # Use H -> G (G single pred) and H -> J (J has two preds, jump edge).
        assert not requires_jump_block(example.function, ("H", "G"))
        assert requires_jump_block(example.function, ("H", "J"))


class TestCostModels:
    def test_execution_count_model_is_the_edge_count(self, example):
        model = ExecutionCountCostModel()
        location = SpillLocation(example.register, SpillKind.RESTORE, ("D", "F"))
        assert model.location_cost(example.function, example.profile, location) == 30

    def test_jump_edge_model_adds_the_jump_cost(self, example):
        model = JumpEdgeCostModel()
        location = SpillLocation(example.register, SpillKind.RESTORE, ("D", "F"))
        assert model.location_cost(example.function, example.profile, location) == 60

    def test_jump_cost_is_shared_for_initial_sets(self, example):
        model = JumpEdgeCostModel()
        location = SpillLocation(example.register, SpillKind.RESTORE, ("D", "F"))
        shared = model.location_cost(
            example.function, example.profile, location, jump_sharing={("D", "F"): 2}
        )
        assert shared == 30 + 15

    def test_paper_set1_costs(self, example):
        """Set 1 costs 80 under the execution-count model and 110 under jump-edge."""

        initial = place_shrink_wrap(
            example.function, example.usage, allow_jump_edges=True, avoid_loops=False
        )
        set1 = next(
            s for s in initial.sets_for(example.register) if ("C", "D") in s.edges()
        )
        sharing = compute_jump_sharing(example.function, initial)
        exec_cost = ExecutionCountCostModel().set_cost(
            example.function, example.profile, set1, sharing
        )
        jump_cost = JumpEdgeCostModel().set_cost(
            example.function, example.profile, set1, sharing
        )
        assert exec_cost == 80
        assert jump_cost == 110

    def test_boundary_cost_of_paper_regions(self, example):
        model = JumpEdgeCostModel()
        assert model.boundary_cost(example.function, example.profile, ("B", "C"), ("F", "H")) == 100
        assert model.boundary_cost(example.function, example.profile, ("A", "B"), ("J", "P")) == 140
        assert model.boundary_cost(example.function, example.profile, ("A", "I"), ("O", "P")) == 60

    def test_make_cost_model_factory(self):
        assert isinstance(make_cost_model("jump_edge"), JumpEdgeCostModel)
        assert isinstance(make_cost_model("execution_count"), ExecutionCountCostModel)
        with pytest.raises(ValueError):
            make_cost_model("nope")


class TestHierarchicalPaperNumbers:
    def test_execution_count_model_reproduces_figure_4a(self, example):
        result = place_hierarchical(
            example.function, example.usage, example.profile, cost_model="execution_count"
        )
        verify_placement(example.function, example.usage, result.placement)
        overhead = placement_dynamic_overhead(example.function, example.profile, result.placement)
        # 190 cycles of save/restore code (the paper's optimal placement).
        assert overhead.save_count + overhead.restore_count == 190
        # Final sets: Set 1 (around D/E), Set 2 (around G), Set 5 (region 3 bounds).
        edges = {l.edge for l in result.placement.locations()}
        assert ("C", "D") in edges and ("D", "F") in edges and ("E", "F") in edges
        assert ("H", "G") in edges and ("G", "J") in edges
        assert ("A", "I") in edges and ("O", "P") in edges

    def test_execution_count_decision_trace(self, example):
        result = place_hierarchical(
            example.function, example.usage, example.profile, cost_model="execution_count"
        )
        decisions = {
            (d.contained_cost, d.boundary_cost): d.replaced
            for d in result.decisions
        }
        assert decisions[(80.0, 100.0)] is False    # Region 1 kept
        assert decisions[(130.0, 140.0)] is False   # Region 2 kept
        assert decisions[(100.0, 60.0)] is True     # Region 3 replaced
        assert decisions[(190.0, 200.0)] is False   # Root kept

    def test_jump_edge_model_reproduces_figure_4b(self, example):
        result = place_hierarchical(
            example.function, example.usage, example.profile, cost_model="jump_edge"
        )
        verify_placement(example.function, example.usage, result.placement)
        overhead = placement_dynamic_overhead(example.function, example.profile, result.placement)
        # The final placement is procedure entry/exit: 200 cycles, no jump blocks.
        assert overhead.total == 200
        assert overhead.num_jump_blocks == 0
        edges = {l.edge for l in result.placement.locations()}
        assert edges == {(ENTRY_SENTINEL, "A"), ("P", EXIT_SENTINEL)}

    def test_jump_edge_decision_trace(self, example):
        result = place_hierarchical(
            example.function, example.usage, example.profile, cost_model="jump_edge"
        )
        decisions = {
            (d.contained_cost, d.boundary_cost): d.replaced for d in result.decisions
        }
        assert decisions[(110.0, 100.0)] is True    # Region 1 replaced (Set 6)
        assert decisions[(150.0, 140.0)] is True    # Region 2 replaced (Set 7)
        assert decisions[(100.0, 60.0)] is True     # Region 3 replaced (Set 5)
        assert decisions[(200.0, 200.0)] is True    # Root: tie goes to entry/exit

    def test_never_worse_than_alternatives_on_the_example(self, example):
        baseline = placement_dynamic_overhead(
            example.function, example.profile, place_entry_exit(example.function, example.usage)
        ).total
        shrink = placement_dynamic_overhead(
            example.function, example.profile, place_shrink_wrap(example.function, example.usage)
        ).total
        optimized = placement_dynamic_overhead(
            example.function,
            example.profile,
            place_hierarchical(example.function, example.usage, example.profile).placement,
        ).total
        assert optimized <= baseline <= shrink

    def test_initial_placement_is_exposed(self, example):
        result = place_hierarchical(example.function, example.usage, example.profile)
        assert result.initial_placement.technique == "modified_shrink_wrap"
        assert len(result.initial_placement.sets_for(example.register)) == 4

    def test_decisions_for_register_filter(self, example):
        result = place_hierarchical(example.function, example.usage, example.profile)
        assert result.decisions_for_register(example.register) == result.decisions

    def test_canonical_regions_never_beat_maximal_on_example(self, example):
        maximal = place_hierarchical(example.function, example.usage, example.profile)
        canonical = place_hierarchical(
            example.function, example.usage, example.profile, maximal_regions=False
        )
        cost_max = placement_dynamic_overhead(
            example.function, example.profile, maximal.placement
        ).total
        cost_canon = placement_dynamic_overhead(
            example.function, example.profile, canonical.placement
        ).total
        verify_placement(example.function, example.usage, canonical.placement)
        assert cost_max <= cost_canon


class TestInsertion:
    def test_insertion_counts_and_block_sharing(self, example, parisc):
        function = example.function.clone()
        usage = CalleeSavedUsage.from_blocks(
            {parisc.callee_saved[0]: ["D", "E"], parisc.callee_saved[1]: ["D", "E"]}
        )
        placement = place_shrink_wrap(function, usage, allow_jump_edges=True, avoid_loops=False)
        result = apply_placement(function, placement)
        # Two registers, each with one save and two restores.
        assert result.inserted_saves == 2
        assert result.inserted_restores == 4
        # Both registers share the single jump block on D -> F.
        assert result.inserted_jumps == 1
        assert list(result.jump_blocks) == [("D", "F")]
        from repro.ir.verifier import verify_function

        verify_function(function, require_single_exit=True)

    def test_entry_and_exit_insertion_positions(self, example):
        function = example.function.clone()
        placement = place_entry_exit(function, example.usage)
        apply_placement(function, placement)
        entry_first = function.block("A").instructions[0]
        assert entry_first.purpose == "callee_save"
        exit_block = function.block("P")
        assert exit_block.instructions[-2].purpose == "callee_restore"
        assert exit_block.instructions[-1].is_return()

    def test_insertion_extends_profile_over_split_edges(self, example):
        function = example.function.clone()
        profile = example.profile.scaled(1.0)
        placement = place_shrink_wrap(function, example.usage, allow_jump_edges=True, avoid_loops=False)
        result = apply_placement(function, placement, profile=profile)
        new_block = result.jump_blocks[("D", "F")]
        assert profile.edge_count(("D", new_block)) == 30
        assert profile.edge_count((new_block, "F")) == 30
        profile.validate(function)

    def test_execution_matches_analytic_overhead(self, example):
        """Interpreter-measured overhead equals the analytic prediction (hot path)."""

        function = example.function.clone()
        placement = place_hierarchical(function, example.usage, example.profile).placement
        apply_placement(function, placement)
        # The branch conditions in the reconstruction always take the jump, so
        # one execution follows A -> I -> L -> M -> O -> P: it crosses the
        # procedure entry/exit saves exactly once.
        run = Interpreter().run(function)
        assert run.purpose_counts.get("callee_save", 0) == 1
        assert run.purpose_counts.get("callee_restore", 0) == 1
