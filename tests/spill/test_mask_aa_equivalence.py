"""Differential tests: mask-based anticipation/availability vs. the reference.

``save_restore_edges`` solves the two boolean data-flow problems as whole-CFG
Jacobi sweeps over integer masks (:func:`repro.spill.shrink_wrap._solve_aa_masks`);
``compute_anticipation_availability`` is the dict-based Gauss-Seidel reference.
Both iterate monotone equations on a finite lattice from the same initial
assignment, so they must converge to the same unique least fixed point — these
tests assert bit-for-bit agreement on every block, and that the placements
built on top are identical whether or not a pre-derived CFG snapshot is
threaded through.
"""

from hypothesis import given

from repro.regalloc.allocator import allocate_registers
from repro.spill.entry_exit import place_entry_exit
from repro.spill.hierarchical import place_hierarchical
from repro.spill.overhead import placement_dynamic_overhead
from repro.spill.shrink_wrap import (
    _solve_aa_masks,
    compute_anticipation_availability,
    place_shrink_wrap,
    save_restore_edges,
)
from repro.spill.verifier import verify_placement
from repro.target.parisc import parisc_target
from repro.target.registry import get_target
from repro.workloads.scenarios import build_scenario_suite, scenario_names

from tests.conftest import generated_procedures


def _allocate(procedure, machine):
    allocation = allocate_registers(procedure.function, machine, procedure.profile)
    return allocation.function, allocation.usage


def _used_block_subsets(function, usage):
    """Occupancy sets that actually occur, plus synthetic corner cases."""

    labels = list(function.block_labels)
    subsets = [usage.blocks_for(register) for register in usage.used_registers()]
    subsets.append(frozenset(labels))
    subsets.append(frozenset(labels[::2]))
    subsets.append(frozenset(labels[: max(1, len(labels) // 2)]))
    subsets.append(frozenset(labels[-1:]))
    return subsets


def _assert_aa_masks_match(function, used_blocks):
    cfg = function.cfg()
    position = cfg.aa_maps()[0]
    used_mask = 0
    for label in used_blocks:
        bit = position.get(label)
        if bit is not None:
            used_mask |= 1 << bit
    ant_in, ant_out, av_in, av_out = _solve_aa_masks(cfg, used_mask)
    reference = compute_anticipation_availability(function, frozenset(used_blocks))
    for label, bit in position.items():
        probe = 1 << bit
        assert bool(ant_in & probe) == reference.ant_in[label], (label, "ant_in")
        assert bool(ant_out & probe) == reference.ant_out[label], (label, "ant_out")
        assert bool(av_in & probe) == reference.av_in[label], (label, "av_in")
        assert bool(av_out & probe) == reference.av_out[label], (label, "av_out")


@given(generated_procedures(max_segments=5))
def test_aa_masks_match_reference_on_random_procedures(procedure):
    function, usage = _allocate(procedure, parisc_target())
    for used_blocks in _used_block_subsets(function, usage):
        _assert_aa_masks_match(function, used_blocks)


def test_aa_masks_match_reference_across_scenario_families():
    for target_name in ("parisc", "micro", "tiny"):
        machine = get_target(target_name)
        suite = build_scenario_suite(seed=5, count=1, machine=machine)
        for name in scenario_names():
            for procedure in suite[name]:
                function, usage = _allocate(procedure, machine)
                for used_blocks in _used_block_subsets(function, usage):
                    _assert_aa_masks_match(function, used_blocks)


def _reference_save_restore_edges(function, used_blocks):
    """Re-derive the save/restore edges from the dict-based AA solution."""

    from repro.ir.function import ENTRY_SENTINEL, EXIT_SENTINEL

    aa = compute_anticipation_availability(function, frozenset(used_blocks))
    saves, restores = set(), set()

    def consider(u, v, key):
        ant_in_v = aa.ant_in[v] if v is not None else False
        av_out_v = aa.av_out[v] if v is not None else False
        ant_in_u = aa.ant_in[u] if u is not None else False
        av_out_u = aa.av_out[u] if u is not None else False
        if ant_in_v and not av_out_u and not ant_in_u:
            saves.add(key)
        if av_out_u and not ant_in_v and not av_out_v:
            restores.add(key)

    entry = function.entry.label
    consider(None, entry, (ENTRY_SENTINEL, entry))
    for edge in function.edges():
        consider(edge.src, edge.dst, edge.key)
    exit_label = function.exit.label
    consider(exit_label, None, (exit_label, EXIT_SENTINEL))
    return saves, restores


@given(generated_procedures(max_segments=5))
def test_save_restore_edges_match_dict_reference(procedure):
    function, usage = _allocate(procedure, parisc_target())
    for used_blocks in _used_block_subsets(function, usage):
        if not used_blocks:
            continue
        fast = save_restore_edges(function, frozenset(used_blocks))
        assert fast == _reference_save_restore_edges(function, used_blocks)


def test_placements_identical_with_and_without_threaded_cfg():
    """Passing a pre-derived CFG snapshot must never change a placement."""

    for target_name in ("parisc", "micro"):
        machine = get_target(target_name)
        suite = build_scenario_suite(seed=9, count=1, machine=machine)
        for name in scenario_names():
            for procedure in suite[name]:
                function, usage = _allocate(procedure, machine)
                cfg = function.cfg()
                for kwargs in (
                    dict(allow_jump_edges=False, avoid_loops=True),
                    dict(allow_jump_edges=True, avoid_loops=False),
                ):
                    threaded = place_shrink_wrap(function, usage, cfg=cfg, **kwargs)
                    fresh = place_shrink_wrap(function, usage, **kwargs)
                    assert threaded == fresh
                for cost_model in ("jump_edge", "execution_count"):
                    threaded = place_hierarchical(
                        function,
                        usage,
                        procedure.profile,
                        cost_model=cost_model,
                        machine=machine,
                        cfg=cfg,
                    ).placement
                    fresh = place_hierarchical(
                        function,
                        usage,
                        procedure.profile,
                        cost_model=cost_model,
                        machine=machine,
                    ).placement
                    assert threaded == fresh
                    verify_placement(function, usage, threaded, cfg=cfg)
                    with_cfg = placement_dynamic_overhead(
                        function, procedure.profile, threaded, machine, cfg=cfg
                    )
                    without_cfg = placement_dynamic_overhead(
                        function, procedure.profile, threaded, machine
                    )
                    assert with_cfg == without_cfg
                baseline = place_entry_exit(function, usage)
                verify_placement(function, usage, baseline, cfg=cfg)
