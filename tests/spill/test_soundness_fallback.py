"""The per-register soundness fallback of the placement algorithms.

Shrink-wrapping and the hierarchical algorithm are derived for the CFG
shapes the paper analyses; the scenario space also contains arbitrary
(e.g. irreducible) flowgraphs.  Every placement therefore passes a
per-register convention check, and a register whose derived locations fail
it falls back to the always-valid entry/exit pair — these tests pin both
the check and the fallback wiring down.
"""

from __future__ import annotations

import pytest

from repro.ir.function import ENTRY_SENTINEL, EXIT_SENTINEL
from repro.regalloc import allocate_registers
from repro.spill.entry_exit import entry_exit_set, place_entry_exit
from repro.spill.hierarchical import place_hierarchical
from repro.spill.model import SaveRestoreSet, SpillKind, SpillLocation
from repro.spill.shrink_wrap import place_shrink_wrap
from repro.spill.verifier import register_sets_are_sound, verify_placement
from repro.workloads.scenarios import build_scenario


@pytest.fixture()
def occupied_diamond(parisc):
    """An allocated function with at least one occupied callee-saved register."""

    procedure = build_scenario("irreducible_loop", seed=0, count=1, machine=parisc)[0]
    allocation = allocate_registers(procedure.function, parisc, procedure.profile)
    assert allocation.usage.used_registers()
    return allocation, procedure.profile


class TestRegisterSetsAreSound:
    def test_entry_exit_set_is_always_sound(self, occupied_diamond):
        allocation, _ = occupied_diamond
        function, usage = allocation.function, allocation.usage
        for register in usage.used_registers():
            assert register_sets_are_sound(
                function,
                register,
                usage.blocks_for(register),
                [entry_exit_set(function, register)],
            )

    def test_restore_without_save_is_unsound(self, occupied_diamond):
        allocation, _ = occupied_diamond
        function, usage = allocation.function, allocation.usage
        register = usage.used_registers()[0]
        bogus = SaveRestoreSet.from_locations(
            register,
            [
                SpillLocation(
                    register, SpillKind.RESTORE, (function.exit.label, EXIT_SENTINEL)
                )
            ],
        )
        assert not register_sets_are_sound(
            function, register, usage.blocks_for(register), [bogus]
        )

    def test_missing_save_before_occupancy_is_unsound(self, occupied_diamond):
        allocation, _ = occupied_diamond
        function, usage = allocation.function, allocation.usage
        register = usage.used_registers()[0]
        assert not register_sets_are_sound(
            function, register, usage.blocks_for(register), []
        )


class TestFallbackWiring:
    def test_shrink_wrap_falls_back_when_edges_are_garbage(
        self, occupied_diamond, monkeypatch
    ):
        import repro.spill.shrink_wrap as shrink_wrap_module

        allocation, _ = occupied_diamond
        function, usage = allocation.function, allocation.usage

        def garbage_edges(*args, **kwargs):
            # A restore with no save on the exit edge: never valid.
            return set(), {(function.exit.label, EXIT_SENTINEL)}

        monkeypatch.setattr(shrink_wrap_module, "shrink_wrap_edges", garbage_edges)
        placement = place_shrink_wrap(function, usage)
        assert placement.fallback_registers == usage.used_registers()
        verify_placement(function, usage, placement)
        # The fallback is exactly the entry/exit placement.
        baseline = place_entry_exit(function, usage)
        assert {
            (l.register, l.kind, l.edge) for l in placement.locations()
        } == {(l.register, l.kind, l.edge) for l in baseline.locations()}

    def test_hierarchical_reverts_unsound_hoists_to_initial_sets(
        self, occupied_diamond, monkeypatch
    ):
        import repro.spill.hierarchical as hierarchical_module

        allocation, profile = occupied_diamond
        function, usage = allocation.function, allocation.usage

        class BrokenRegion:
            """A fake 'region' whose boundaries are not really SESE."""

            identifier = 99
            is_root = False
            entry_edge = (ENTRY_SENTINEL, function.entry.label)
            exit_edge = (function.entry.label, function.successors(function.entry.label)[0])
            blocks = frozenset(function.block_labels)

        real_build_pst = hierarchical_module.build_pst

        def broken_pst(func, maximal=True):
            pst = real_build_pst(func, maximal=maximal)
            original = pst.topological_order

            def order():
                return [BrokenRegion] + [r for r in original() if not r.is_root]

            pst.topological_order = order
            return pst

        monkeypatch.setattr(hierarchical_module, "build_pst", broken_pst)
        result = place_hierarchical(function, usage, profile)
        # Whatever the broken traversal produced, the result must verify;
        # any register it broke reverts and is recorded.
        verify_placement(function, usage, result.placement)

    def test_normal_runs_never_fall_back(self, registered_machine):
        for name in ("switch_dispatch", "irreducible_loop", "deep_loop_nest"):
            for procedure in build_scenario(
                name, seed=0, count=2, machine=registered_machine
            ):
                allocation = allocate_registers(
                    procedure.function, registered_machine, procedure.profile
                )
                function, usage = allocation.function, allocation.usage
                for placement in (
                    place_shrink_wrap(function, usage),
                    place_hierarchical(function, usage, procedure.profile).placement,
                ):
                    assert placement.fallback_registers == []
                    verify_placement(function, usage, placement)
