"""Tests for the placement data model, entry/exit baseline and shrink-wrapping."""

import pytest

from repro.ir.function import ENTRY_SENTINEL, EXIT_SENTINEL
from repro.spill.cost_models import requires_jump_block
from repro.spill.entry_exit import place_entry_exit
from repro.spill.model import CalleeSavedUsage, SaveRestoreSet, SpillKind, SpillLocation
from repro.spill.overhead import placement_dynamic_overhead
from repro.spill.sets import build_save_restore_sets
from repro.spill.shrink_wrap import (
    compute_anticipation_availability,
    place_shrink_wrap,
    save_restore_edges,
    shrink_wrap_edges,
)
from repro.spill.verifier import collect_placement_errors, verify_placement
from repro.workloads.programs import diamond_function, figure1_function, loop_function, paper_example


@pytest.fixture(scope="module")
def example():
    return paper_example()


class TestModel:
    def test_location_classification(self, example):
        register = example.register
        entry_loc = SpillLocation(register, SpillKind.SAVE, (ENTRY_SENTINEL, "A"))
        exit_loc = SpillLocation(register, SpillKind.RESTORE, ("P", EXIT_SENTINEL))
        inner = SpillLocation(register, SpillKind.SAVE, ("C", "D"))
        assert entry_loc.is_at_procedure_entry() and entry_loc.is_on_virtual_edge()
        assert exit_loc.is_at_procedure_exit()
        assert not inner.is_on_virtual_edge()

    def test_save_restore_set_rejects_foreign_locations(self, example, parisc):
        other = parisc.callee_saved[1]
        with pytest.raises(ValueError):
            SaveRestoreSet.from_locations(
                example.register,
                [SpillLocation(other, SpillKind.SAVE, ("C", "D"))],
            )

    def test_set_containment_by_blocks(self, example):
        register = example.register
        srset = SaveRestoreSet.from_locations(
            register,
            [
                SpillLocation(register, SpillKind.SAVE, ("C", "D")),
                SpillLocation(register, SpillKind.RESTORE, ("E", "F")),
            ],
        )
        assert srset.is_contained_in_blocks(frozenset("CDEF"))
        assert not srset.is_contained_in_blocks(frozenset("CD"))

    def test_usage_helpers(self, example, parisc):
        usage = example.usage
        assert usage.used_registers() == [example.register]
        assert usage.is_occupied(example.register, "D")
        assert not usage.is_occupied(example.register, "A")
        assert not usage.is_occupied(parisc.callee_saved[5], "D")
        assert bool(usage)
        assert usage.restricted_to(["D"]).blocks_for(example.register) == frozenset({"D"})

    def test_placement_queries(self, example):
        placement = place_entry_exit(example.function, example.usage)
        assert placement.registers() == [example.register]
        assert len(placement.saves()) == 1
        assert len(placement.restores()) == 1
        assert placement.num_locations() == 2
        assert set(placement.edges_with_locations()) == {
            (ENTRY_SENTINEL, "A"),
            ("P", EXIT_SENTINEL),
        }


class TestEntryExit:
    def test_paper_example_cost_is_200(self, example):
        placement = place_entry_exit(example.function, example.usage)
        verify_placement(example.function, example.usage, placement)
        assert placement_dynamic_overhead(example.function, example.profile, placement).total == 200

    def test_unused_registers_get_no_locations(self, example, parisc):
        usage = CalleeSavedUsage.from_blocks({parisc.callee_saved[2]: []})
        placement = place_entry_exit(example.function, usage)
        assert placement.num_locations() == 0

    def test_every_used_register_gets_one_pair(self, example, parisc):
        usage = CalleeSavedUsage.from_blocks(
            {parisc.callee_saved[0]: ["D"], parisc.callee_saved[1]: ["G", "K"]}
        )
        placement = place_entry_exit(example.function, usage)
        assert placement.num_locations() == 4
        verify_placement(example.function, usage, placement)


class TestAnticipationAvailability:
    def test_flow_solutions_on_paper_example(self, example):
        flow = compute_anticipation_availability(example.function, frozenset("DEGKN"))
        assert flow.ant_in["D"] and flow.ant_in["E"]
        assert not flow.ant_in["F"]
        assert not flow.ant_in["A"]           # not all paths reach an occupied block
        assert flow.av_out["E"] and flow.av_out["D"]
        assert not flow.av_in["F"]            # only some predecessors are occupied
        assert not flow.av_out["P"]

    def test_save_restore_edges_for_left_region(self, example):
        saves, restores = save_restore_edges(example.function, frozenset("DE"))
        assert ("C", "D") in saves
        assert ("D", "F") in restores and ("E", "F") in restores
        assert len(saves) == 1 and len(restores) == 2


class TestShrinkWrap:
    def test_chow_original_matches_paper(self, example):
        placement = place_shrink_wrap(example.function, example.usage)
        verify_placement(example.function, example.usage, placement)
        overhead = placement_dynamic_overhead(example.function, example.profile, placement)
        assert overhead.total == 250
        edges = {l.edge for l in placement.locations()}
        # Saves before C, G, K, N and restores after F, G, K, N.
        assert ("B", "C") in edges and ("F", "H") in edges
        assert ("H", "G") in edges and ("G", "J") in edges
        assert ("I", "K") in edges and ("K", "M") in edges
        assert ("M", "N") in edges and ("N", "O") in edges
        assert overhead.num_jump_blocks == 0

    def test_modified_variant_keeps_jump_edge_restore(self, example):
        saves, restores = shrink_wrap_edges(
            example.function, frozenset("DE"), allow_jump_edges=True, avoid_loops=False
        )
        assert ("D", "F") in restores
        assert ("C", "D") in saves

    def test_original_variant_avoids_required_jump_blocks(self, example):
        saves, restores = shrink_wrap_edges(
            example.function, frozenset("DE"), allow_jump_edges=False, avoid_loops=False
        )
        for edge in saves | restores:
            assert not requires_jump_block(example.function, edge)

    def test_loop_avoidance_keeps_spill_code_out_of_loops(self):
        function = loop_function()
        usage = frozenset({"body"})
        saves, restores = shrink_wrap_edges(function, usage, allow_jump_edges=False, avoid_loops=True)
        loop_blocks = {"header", "body"}
        for src, dst in saves | restores:
            assert not (src in loop_blocks and dst in loop_blocks)

    def test_without_loop_avoidance_spill_code_lands_in_the_loop(self):
        function = loop_function()
        saves, restores = shrink_wrap_edges(
            function, frozenset({"body"}), allow_jump_edges=True, avoid_loops=False
        )
        assert ("header", "body") in saves

    def test_figure1_cold_vs_hot_crossover(self):
        # Cold occupancy: shrink-wrapping wins; hot occupancy: entry/exit wins.
        for hot, expect_shrink_cheaper in ((False, True), (True, False)):
            function, profile, usage = figure1_function(hot_allocation=hot)
            baseline = placement_dynamic_overhead(
                function, profile, place_entry_exit(function, usage)
            ).total
            shrink = placement_dynamic_overhead(
                function, profile, place_shrink_wrap(function, usage)
            ).total
            assert (shrink < baseline) == expect_shrink_cheaper

    def test_empty_usage_gives_empty_placement(self, example):
        placement = place_shrink_wrap(example.function, CalleeSavedUsage())
        assert placement.num_locations() == 0


class TestSaveRestoreSets:
    def test_paper_example_initial_sets(self, example):
        placement = place_shrink_wrap(
            example.function, example.usage, allow_jump_edges=True, avoid_loops=False
        )
        sets = placement.sets_for(example.register)
        assert len(sets) == 4
        by_edges = {frozenset(s.edges()) for s in sets}
        assert frozenset({("C", "D"), ("D", "F"), ("E", "F")}) in by_edges   # Set 1
        assert frozenset({("H", "G"), ("G", "J")}) in by_edges               # Set 2
        assert frozenset({("I", "K"), ("K", "M")}) in by_edges               # Set 3
        assert frozenset({("M", "N"), ("N", "O")}) in by_edges               # Set 4

    def test_sets_share_registers_but_not_locations(self, example):
        placement = place_shrink_wrap(
            example.function, example.usage, allow_jump_edges=True, avoid_loops=False
        )
        seen = set()
        for srset in placement.sets_for(example.register):
            assert not (seen & srset.locations)
            seen |= srset.locations

    def test_restore_shared_by_two_saves_merges_sets(self, example):
        register = example.register
        locations = [
            SpillLocation(register, SpillKind.SAVE, ("C", "D")),
            SpillLocation(register, SpillKind.SAVE, ("B", "H")),
            SpillLocation(register, SpillKind.RESTORE, ("H", "J")),
            SpillLocation(register, SpillKind.RESTORE, ("H", "G")),
        ]
        # Both saves reach the restores through H, so everything is one set.
        sets = build_save_restore_sets(example.function, register, locations)
        assert len(sets) == 1


class TestPlacementVerifier:
    def test_detects_missing_save(self, example):
        register = example.register
        placement = place_entry_exit(example.function, example.usage)
        placement.replace_sets(register, [
            SaveRestoreSet.from_locations(
                register, [SpillLocation(register, SpillKind.RESTORE, ("P", EXIT_SENTINEL))]
            )
        ])
        errors = collect_placement_errors(example.function, example.usage, placement)
        assert any("without a prior save" in e or "never saved" in e for e in errors)

    def test_detects_missing_restore(self, example):
        register = example.register
        placement = place_entry_exit(example.function, example.usage)
        placement.replace_sets(register, [
            SaveRestoreSet.from_locations(
                register, [SpillLocation(register, SpillKind.SAVE, (ENTRY_SENTINEL, "A"))]
            )
        ])
        errors = collect_placement_errors(example.function, example.usage, placement)
        assert any("missing restore" in e for e in errors)

    def test_detects_partial_path_coverage(self, example):
        register = example.register
        placement = place_entry_exit(example.function, example.usage)
        placement.replace_sets(register, [
            SaveRestoreSet.from_locations(
                register,
                [
                    SpillLocation(register, SpillKind.SAVE, ("C", "D")),
                    SpillLocation(register, SpillKind.RESTORE, ("D", "F")),
                    SpillLocation(register, SpillKind.RESTORE, ("E", "F")),
                ],
            )
        ])
        errors = collect_placement_errors(example.function, example.usage, placement)
        # Blocks G, K, N are occupied but never covered by a save.
        assert any("never saved" in e for e in errors)

    def test_detects_location_off_the_cfg(self, example):
        register = example.register
        placement = place_entry_exit(example.function, example.usage)
        placement.add_set(
            SaveRestoreSet.from_locations(
                register,
                [
                    SpillLocation(register, SpillKind.SAVE, ("A", "Z")),
                    SpillLocation(register, SpillKind.RESTORE, ("Z", "P")),
                ],
            )
        )
        errors = collect_placement_errors(example.function, example.usage, placement)
        assert any("does not lie on a CFG edge" in e for e in errors)

    def test_valid_placements_have_no_errors(self, example):
        for placement in (
            place_entry_exit(example.function, example.usage),
            place_shrink_wrap(example.function, example.usage),
            place_shrink_wrap(example.function, example.usage, allow_jump_edges=True, avoid_loops=False),
        ):
            assert collect_placement_errors(example.function, example.usage, placement) == []
