"""Property-based tests of the placement invariants on random workloads.

These are the paper's two central claims, checked on arbitrary generated
procedures and register allocations:

1. every technique produces a *valid* placement (the callee-saved convention
   state machine never conflicts on any path), and
2. the hierarchical placement's dynamic overhead is never greater than either
   shrink-wrapping's or the entry/exit placement's.
"""

from hypothesis import given, settings

from repro.regalloc.allocator import allocate_registers
from repro.spill.cost_models import make_cost_model
from repro.spill.entry_exit import place_entry_exit
from repro.spill.hierarchical import place_hierarchical
from repro.spill.overhead import placement_dynamic_overhead
from repro.spill.shrink_wrap import place_shrink_wrap
from repro.spill.verifier import collect_placement_errors
from repro.target.generic import tiny_target
from repro.target.parisc import parisc_target

from tests.conftest import generated_procedures


def _allocate(procedure, machine):
    allocation = allocate_registers(procedure.function, machine, procedure.profile)
    return allocation.function, allocation.usage


@given(generated_procedures(max_segments=5))
def test_all_techniques_produce_valid_placements(procedure):
    function, usage = _allocate(procedure, parisc_target())
    placements = [
        place_entry_exit(function, usage),
        place_shrink_wrap(function, usage),
        place_shrink_wrap(function, usage, allow_jump_edges=True, avoid_loops=False),
        place_hierarchical(function, usage, procedure.profile, cost_model="jump_edge").placement,
        place_hierarchical(function, usage, procedure.profile, cost_model="execution_count").placement,
    ]
    for placement in placements:
        assert collect_placement_errors(function, usage, placement) == []


@given(generated_procedures(max_segments=5))
def test_hierarchical_is_never_worse_jump_edge_model(procedure):
    function, usage = _allocate(procedure, parisc_target())
    profile = procedure.profile
    baseline = placement_dynamic_overhead(function, profile, place_entry_exit(function, usage)).total
    shrink = placement_dynamic_overhead(function, profile, place_shrink_wrap(function, usage)).total
    optimized = placement_dynamic_overhead(
        function, profile, place_hierarchical(function, usage, profile).placement
    ).total
    tolerance = 1e-6 * max(1.0, baseline)
    assert optimized <= baseline + tolerance
    assert optimized <= shrink + tolerance


@given(generated_procedures(max_segments=5))
def test_hierarchical_save_restore_counts_never_exceed_alternatives(procedure):
    """The paper's guarantee is phrased over inserted save/restore instructions."""

    function, usage = _allocate(procedure, parisc_target())
    profile = procedure.profile

    def save_restore_cost(placement):
        overhead = placement_dynamic_overhead(function, profile, placement)
        return overhead.save_count + overhead.restore_count

    baseline = save_restore_cost(place_entry_exit(function, usage))
    shrink = save_restore_cost(place_shrink_wrap(function, usage))
    optimized = save_restore_cost(
        place_hierarchical(function, usage, profile, cost_model="execution_count").placement
    )
    tolerance = 1e-6 * max(1.0, baseline)
    assert optimized <= baseline + tolerance
    assert optimized <= shrink + tolerance


@given(generated_procedures(max_segments=4))
@settings(max_examples=15)
def test_invariants_hold_under_high_register_pressure(procedure):
    """A tiny register file forces heavy spilling; the guarantees still hold."""

    machine = tiny_target(3, 3)
    function, usage = _allocate(procedure, machine)
    profile = procedure.profile
    baseline = placement_dynamic_overhead(function, profile, place_entry_exit(function, usage)).total
    optimized_result = place_hierarchical(function, usage, profile)
    assert collect_placement_errors(function, usage, optimized_result.placement) == []
    optimized = placement_dynamic_overhead(function, profile, optimized_result.placement).total
    assert optimized <= baseline + 1e-6 * max(1.0, baseline)


@given(generated_procedures(max_segments=3))
@settings(max_examples=8)
def test_all_techniques_valid_on_every_registered_target(registered_machine, procedure):
    """The validity invariant holds on every registered machine description."""

    function, usage = _allocate(procedure, registered_machine)
    placements = [
        place_entry_exit(function, usage),
        place_shrink_wrap(function, usage),
        place_hierarchical(
            function, usage, procedure.profile, machine=registered_machine
        ).placement,
    ]
    for placement in placements:
        assert collect_placement_errors(function, usage, placement) == []


@given(generated_procedures(max_segments=3))
@settings(max_examples=8)
def test_hierarchical_never_worse_on_every_registered_target(registered_machine, procedure):
    """The never-worse guarantee holds under every target's cost weights."""

    function, usage = _allocate(procedure, registered_machine)
    profile = procedure.profile

    def total(placement):
        return placement_dynamic_overhead(
            function, profile, placement, registered_machine
        ).total

    baseline = total(place_entry_exit(function, usage))
    optimized = total(
        place_hierarchical(function, usage, profile, machine=registered_machine).placement
    )
    assert optimized <= baseline + 1e-6 * max(1.0, baseline)


@given(generated_procedures(max_segments=4))
@settings(max_examples=8)
def test_execution_count_model_never_worse_than_entry_exit_on_any_target(
    registered_machine, procedure
):
    """The paper's Section 4 optimality claim, measured *under the model*.

    With the execution-count cost model the hierarchical algorithm is
    optimal, so its total placement cost — every save/restore location
    charged its edge's execution count times the target's instruction
    weight, exactly what the model minimizes — can never exceed plain
    entry/exit placement's, on any registered machine description.
    """

    function, usage = _allocate(procedure, registered_machine)
    profile = procedure.profile
    model = make_cost_model("execution_count", registered_machine)

    def model_cost(placement):
        return sum(
            model.location_cost(function, profile, location)
            for location in placement.locations()
        )

    baseline = model_cost(place_entry_exit(function, usage))
    optimized = model_cost(
        place_hierarchical(
            function, usage, profile, cost_model=model, machine=registered_machine
        ).placement
    )
    assert optimized <= baseline + 1e-6 * max(1.0, baseline)


@given(generated_procedures(max_segments=4))
@settings(max_examples=15)
def test_placement_locations_lie_on_real_or_virtual_edges(procedure):
    function, usage = _allocate(procedure, parisc_target())
    valid_edges = {e.key for e in function.edges()}
    valid_edges.add(("__entry__", function.entry.label))
    valid_edges.add((function.exit.label, "__exit__"))
    result = place_hierarchical(function, usage, procedure.profile)
    for location in result.placement.locations():
        assert location.edge in valid_edges
