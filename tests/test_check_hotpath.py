"""The hot-path hygiene linter: self-test, tree cleanliness, suppression."""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOL_PATH = os.path.join(REPO_ROOT, "tools", "check_hotpath.py")

spec = importlib.util.spec_from_file_location("check_hotpath", TOOL_PATH)
check_hotpath = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_hotpath)


class TestRules:
    def test_h001_catches_per_query_cfg_calls(self):
        source = "def f(fn, l):\n    return fn.block_out_edges(l)\n"
        found = check_hotpath.check_source(source, "src/repro/spill/x.py")
        assert [v.code for v in found] == ["H001"]
        assert found[0].line == 2

    def test_h002_catches_mask_materialization_in_spill_only(self):
        source = "def f(ix, m):\n    return ix.set_of(m)\n"
        assert [
            v.code
            for v in check_hotpath.check_source(source, "src/repro/spill/x.py")
        ] == ["H002"]
        # The regalloc interference boundary is outside H002's scope.
        assert (
            check_hotpath.check_source(source, "src/repro/regalloc/interference.py")
            == []
        )

    def test_h003_catches_blocking_calls_in_async_defs(self):
        source = "import time\nasync def f():\n    time.sleep(0.1)\n"
        found = check_hotpath.check_source(source, "src/repro/service/x.py")
        assert [v.code for v in found] == ["H003"]

    def test_h003_spares_sync_helpers_and_nested_sync_defs(self):
        sync = "import time\ndef f():\n    time.sleep(0.1)\n"
        assert check_hotpath.check_source(sync, "src/repro/service/x.py") == []
        nested = (
            "import time\n"
            "async def f():\n"
            "    def helper():\n"
            "        time.sleep(0.1)\n"
            "    return helper\n"
        )
        assert check_hotpath.check_source(nested, "src/repro/service/x.py") == []

    def test_out_of_scope_paths_are_ignored(self):
        source = "def f(fn, l):\n    return fn.block_out_edges(l)\n"
        assert check_hotpath.check_source(source, "src/repro/evaluation/x.py") == []

    def test_suppression_comment_waives_one_line(self):
        source = (
            "def f(ix, m):\n"
            "    a = ix.set_of(m)  # hotpath: ok\n"
            "    return ix.set_of(m)\n"
        )
        found = check_hotpath.check_source(source, "src/repro/spill/x.py")
        assert [(v.code, v.line) for v in found] == [("H002", 3)]


class TestTree:
    def test_src_tree_is_clean(self):
        violations = check_hotpath.check_tree([os.path.join(REPO_ROOT, "src", "repro")])
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_self_test_passes(self):
        assert check_hotpath.self_test() == 0

    def test_cli_exit_codes(self, tmp_path):
        planted = tmp_path / "src" / "repro" / "spill"
        planted.mkdir(parents=True)
        bad = planted / "bad.py"
        bad.write_text("def f(ix, m):\n    return ix.set_of(m)\n")
        completed = subprocess.run(
            [sys.executable, TOOL_PATH, str(bad)],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 1
        assert "H002" in completed.stdout
        clean = subprocess.run(
            [sys.executable, TOOL_PATH, "--self-test"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert clean.returncode == 0
        assert "self-test OK" in clean.stdout
