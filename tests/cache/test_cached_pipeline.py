"""The cache's acceptance property: cached ≡ fresh, and warm runs do no work.

* a cached compile result is **bit-identical** to a fresh compile —
  property-tested across targets, techniques and cost models;
* a warm suite run performs **zero spill-placement work**: every placement
  entry point is monkeypatched to explode, and the run still succeeds
  entirely from the store;
* the parallel engine resolves hits before sharding and writes worker
  results back, so cache + workers compose.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.cache.store import CompileCache
from repro.evaluation.runner import run_suite
from repro.pipeline.compiler import TECHNIQUES, compile_many, compile_procedure
from repro.spill.cost_models import JumpEdgeCostModel
from repro.target.registry import available_targets
from repro.workloads.spec_like import build_suite

from tests.conftest import generated_procedures

NAMES = ("gzip", "mcf")
SCALE = 0.1


def _compiled_view(compiled):
    """Every deterministic field of a compiled procedure, for bit-comparison.

    ``pass_seconds`` is intentionally included when comparing cached against
    cached (the store returns the cold run's timings verbatim) but must be
    excluded when comparing cached against *fresh* — a fresh compile times
    itself anew.
    """

    from repro.ir.printer import print_function

    return (
        compiled.name,
        print_function(compiled.allocation.function),
        compiled.allocator_overhead,
        {t: compiled.callee_saved_overhead(t) for t in compiled.outcomes},
        {
            t: sorted(
                (str(loc) for loc in outcome.placement.locations()),
            )
            for t, outcome in compiled.outcomes.items()
        },
        {
            t: (
                outcome.overhead.save_count,
                outcome.overhead.restore_count,
                outcome.overhead.jump_count,
                outcome.overhead.num_jump_blocks,
            )
            for t, outcome in compiled.outcomes.items()
        },
    )


def _suite_view(measurement):
    """Everything deterministic about a suite measurement (not wall-clock)."""

    return measurement.deterministic_view()


class TestCachedEqualsFresh:
    @settings(max_examples=10, deadline=None)
    @given(
        procedure=generated_procedures(max_segments=4),
        target=st.sampled_from(available_targets()),
        cost_model=st.sampled_from(["jump_edge", "execution_count"]),
    )
    def test_cached_compile_bit_identical_to_fresh(
        self, tmp_path_factory, procedure, target, cost_model
    ):
        """The acceptance property, across targets × cost models."""

        directory = tmp_path_factory.mktemp("cache")
        cache = CompileCache(directory)
        fresh = compile_procedure(
            procedure, machine=target, cost_model=cost_model, cache=cache
        )
        cached = compile_procedure(
            procedure, machine=target, cost_model=cost_model, cache=cache
        )
        assert cache.stats.hits == 1
        assert _compiled_view(cached) == _compiled_view(fresh)
        # A second store instance exercises the disk tier (pickle round trip).
        reread = compile_procedure(
            procedure,
            machine=target,
            cost_model=cost_model,
            cache=CompileCache(directory),
        )
        assert _compiled_view(reread) == _compiled_view(fresh)

    def test_technique_subset_does_not_alias_full_compile(self, tmp_path):
        procedure = build_suite(names=["mcf"], scale=SCALE)[0].procedures[0]
        cache = CompileCache(tmp_path)
        full = compile_procedure(procedure, cache=cache)
        subset = compile_procedure(procedure, techniques=("baseline",), cache=cache)
        assert set(full.outcomes) == set(TECHNIQUES)
        assert set(subset.outcomes) == {"baseline"}

    def test_warm_suite_bit_identical_to_cold(self, tmp_path):
        cache = CompileCache(tmp_path)
        cold = run_suite(names=NAMES, scale=SCALE, cache=cache)
        warm = run_suite(names=NAMES, scale=SCALE, cache=cache)
        assert _suite_view(warm) == _suite_view(cold)
        assert cache.stats.hits > 0

    def test_uncached_run_matches_cached_run(self, tmp_path):
        plain = run_suite(names=NAMES, scale=SCALE)
        cached = run_suite(names=NAMES, scale=SCALE, cache=CompileCache(tmp_path))
        assert _suite_view(plain) == _suite_view(cached)


class TestWarmRunsDoNoWork:
    def test_warm_suite_performs_zero_spill_placement_work(self, tmp_path, monkeypatch):
        """The ISSUE's acceptance criterion: no placement recomputation."""

        cache = CompileCache(tmp_path)
        cold = run_suite(names=NAMES, scale=SCALE, cache=cache)

        import repro.pipeline.compiler as compiler_mod

        def boom(*args, **kwargs):  # pragma: no cover - must not be reached
            raise AssertionError("warm run recomputed a spill placement")

        monkeypatch.setattr(compiler_mod, "place_entry_exit", boom)
        monkeypatch.setattr(compiler_mod, "place_shrink_wrap", boom)
        monkeypatch.setattr(compiler_mod, "place_hierarchical", boom)
        monkeypatch.setattr(compiler_mod, "allocate_registers", boom)

        warm = run_suite(names=NAMES, scale=SCALE, cache=cache)
        assert _suite_view(warm) == _suite_view(cold)

    def test_changed_configuration_misses(self, tmp_path):
        cache = CompileCache(tmp_path)
        run_suite(names=["mcf"], scale=SCALE, cache=cache)
        hits_before = cache.stats.hits
        run_suite(names=["mcf"], scale=SCALE, cost_model="execution_count", cache=cache)
        # A different cost model shares nothing with the first run.
        assert cache.stats.hits == hits_before


class TestCacheAndWorkersCompose:
    def test_parallel_cold_then_serial_warm(self, tmp_path, monkeypatch):
        cache = CompileCache(tmp_path)
        cold = run_suite(names=NAMES, scale=SCALE, workers=2, cache=cache)

        import repro.evaluation.parallel as parallel_mod

        def boom(*args, **kwargs):  # pragma: no cover - must not be reached
            raise AssertionError("a fully warm run must not touch the pool")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", boom)
        warm = run_suite(names=NAMES, scale=SCALE, workers=2, cache=cache)
        assert _suite_view(warm) == _suite_view(cold)

    def test_partial_warm_shards_only_misses(self, tmp_path):
        benchmark = build_suite(names=["gzip"], scale=0.2)[0]
        cache = CompileCache(tmp_path)
        half = benchmark.procedures[: len(benchmark.procedures) // 2]
        compile_many(half, cache=cache)
        stores_before = cache.stats.stores
        full = compile_many(benchmark.procedures, workers=2, cache=cache)
        assert [c.name for c in full] == [p.name for p in benchmark.procedures]
        # Only the uncached half was compiled and written back.
        assert cache.stats.stores == stores_before + (
            len(benchmark.procedures) - len(half)
        )

    def test_compile_many_warm_results_in_input_order(self, tmp_path):
        procedures = build_suite(names=["mcf"], scale=0.2)[0].procedures
        cache = CompileCache(tmp_path)
        cold = compile_many(procedures, cache=cache)
        warm = compile_many(procedures, workers=2, cache=cache)
        assert [_compiled_view(c) for c in cold] == [_compiled_view(w) for w in warm]


class TestCacheBypass:
    def test_identity_less_cost_model_bypasses_cache(self, tmp_path):
        class Anonymous(JumpEdgeCostModel):
            """Behaviourally jump-edge, but declines a cache identity."""

            name = "anonymous"

            def cache_identity(self):
                return None

        cache = CompileCache(tmp_path)
        procedure = build_suite(names=["mcf"], scale=SCALE)[0].procedures[0]
        compile_procedure(procedure, cost_model=Anonymous(), cache=cache)
        compile_procedure(procedure, cost_model=Anonymous(), cache=cache)
        assert cache.stats.lookups == 0 and cache.stats.stores == 0

    def test_no_cache_is_the_default(self, tmp_path):
        procedure = build_suite(names=["mcf"], scale=SCALE)[0].procedures[0]
        compiled = compile_procedure(procedure)
        assert compiled.name == procedure.name
        assert CompileCache(tmp_path).entry_count() == 0
