"""Tests for the on-disk compile cache store."""

import pickle

import pytest

from repro.cache.store import CACHE_VERSION, CompileCache, resolve_cache


KEY = "ab" + "0" * 62  # hex-digest-shaped key, shard "ab"
OTHER = "cd" + "1" * 62


class TestRoundTrip:
    def test_get_miss_returns_default(self, tmp_path):
        cache = CompileCache(tmp_path)
        assert cache.get(KEY) is None
        assert cache.get(KEY, default="sentinel") == "sentinel"
        assert cache.stats.misses == 2 and cache.stats.hits == 0

    def test_put_then_get(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.put(KEY, {"value": 42})
        assert cache.get(KEY) == {"value": 42}
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_persists_across_instances(self, tmp_path):
        CompileCache(tmp_path).put(KEY, [1.5, 2.5])
        fresh = CompileCache(tmp_path)
        assert fresh.get(KEY) == [1.5, 2.5]
        assert fresh.stats.hits == 1  # served from disk, not memory

    def test_sharded_layout_and_version_directory(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.put(KEY, "x")
        path = tmp_path / f"v{CACHE_VERSION}" / KEY[:2] / f"{KEY}.pkl"
        assert path.is_file()

    def test_entry_count_and_disk_bytes(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.put(KEY, "x")
        cache.put(OTHER, "y")
        assert cache.entry_count() == 2
        assert cache.disk_bytes() > 0


class TestCorruption:
    def test_garbage_file_is_a_miss(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.put(KEY, "good")
        path = tmp_path / f"v{CACHE_VERSION}" / KEY[:2] / f"{KEY}.pkl"
        path.write_bytes(b"this is not a pickle")
        fresh = CompileCache(tmp_path)
        assert fresh.get(KEY) is None
        assert fresh.stats.corrupt == 1
        assert not path.exists()  # corrupt entries are evicted from disk

    def test_wrong_schema_version_is_a_miss(self, tmp_path):
        cache = CompileCache(tmp_path)
        path = cache._path(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps({"schema": CACHE_VERSION + 1, "key": KEY, "value": "stale"})
        )
        assert cache.get(KEY) is None
        assert cache.stats.corrupt == 1

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = CompileCache(tmp_path)
        path = cache._path(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps({"schema": CACHE_VERSION, "key": OTHER, "value": "aliased"})
        )
        assert cache.get(KEY) is None
        assert cache.stats.corrupt == 1

    def test_payload_of_wrong_shape_is_a_miss(self, tmp_path):
        cache = CompileCache(tmp_path)
        path = cache._path(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps(["not", "a", "dict"]))
        assert cache.get(KEY) is None
        assert cache.stats.corrupt == 1


class TestMemoryTier:
    def test_lru_eviction_counts(self, tmp_path):
        cache = CompileCache(tmp_path, memory_entries=2)
        keys = [f"{i:02x}" + "0" * 62 for i in range(3)]
        for key in keys:
            cache.put(key, key)
        assert cache.stats.evictions == 1
        # The evicted entry is still served — from disk.
        assert cache.get(keys[0]) == keys[0]

    def test_memory_zero_disables_the_front(self, tmp_path):
        cache = CompileCache(tmp_path, memory_entries=0)
        cache.put(KEY, "x")
        assert cache._memory == {}
        assert cache.get(KEY) == "x"  # disk still answers


class TestClear:
    def test_clear_removes_all_entries(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.put(KEY, "x")
        cache.put(OTHER, "y")
        assert cache.clear() == 2
        assert cache.entry_count() == 0
        assert cache.get(KEY) is None

    def test_clear_removes_stale_version_directories(self, tmp_path):
        stale = tmp_path / "v0" / "ab"
        stale.mkdir(parents=True)
        (stale / "old.pkl").write_bytes(b"stale")
        cache = CompileCache(tmp_path)
        cache.put(KEY, "x")
        assert cache.clear() == 2
        assert not (tmp_path / "v0").exists()

    def test_clear_on_empty_directory(self, tmp_path):
        assert CompileCache(tmp_path / "never-created").clear() == 0


class TestStats:
    def test_hit_rate(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.put(KEY, "x")
        cache.get(KEY)
        cache.get(OTHER)
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert "hit_rate=50.0%" in cache.stats.describe()


class TestResolveCache:
    def test_none_passes_through(self):
        assert resolve_cache(None) is None

    def test_instance_passes_through(self, tmp_path):
        cache = CompileCache(tmp_path)
        assert resolve_cache(cache) is cache

    def test_path_builds_a_store(self, tmp_path):
        cache = resolve_cache(tmp_path / "cache")
        assert isinstance(cache, CompileCache)
        cache.put(KEY, "x")
        assert cache.get(KEY) == "x"


class TestConcurrentClearVsReaders:
    """``clear`` racing readers yields misses, never crashes (PR-5 satellite)."""

    def test_reader_misses_after_entry_vanishes(self, tmp_path):
        store = CompileCache(tmp_path, memory_entries=0)
        key = "ab" + "0" * 62
        store.put(key, {"v": 1})
        # Simulate the race: the entry disappears between put and get.
        CompileCache(tmp_path).clear()
        assert store.get(key) is None
        assert store.stats.misses == 1
        assert store.stats.corrupt == 0

    def test_maintenance_queries_survive_concurrent_clear(self, tmp_path):
        import threading

        store = CompileCache(tmp_path, memory_entries=0)
        for i in range(64):
            store.put(f"{i:02x}" + "0" * 62, {"v": i})
        clearer = CompileCache(tmp_path)
        errors = []

        def clear_loop():
            try:
                for _ in range(5):
                    clearer.clear()
            except Exception as exc:  # pragma: no cover - the failure we test for
                errors.append(exc)

        def read_loop():
            try:
                for i in range(200):
                    store.get(f"{i % 64:02x}" + "0" * 62)
                    store.entry_count()
                    store.disk_bytes()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=clear_loop)] + [
            threading.Thread(target=read_loop) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert errors == []

    def test_put_during_clear_never_raises(self, tmp_path):
        import threading

        store = CompileCache(tmp_path)
        clearer = CompileCache(tmp_path)
        errors = []

        def put_loop():
            try:
                for i in range(200):
                    store.put(f"{i % 16:02x}" + "1" * 62, {"v": i})
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def clear_loop():
            try:
                for _ in range(5):
                    clearer.clear()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=put_loop), threading.Thread(target=clear_loop)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert errors == []

    def test_shared_instance_is_thread_safe(self, tmp_path):
        """One store instance shared by threads (the compile server's event
        loop + dispatch thread): memory LRU and stats stay consistent."""

        import threading

        store = CompileCache(tmp_path, memory_entries=8)
        errors = []

        def hammer(base):
            try:
                for i in range(300):
                    key = f"{(base + i) % 32:02x}" + "2" * 62
                    if store.get(key) is None:
                        store.put(key, {"v": key})
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i * 7,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert errors == []
        assert store.stats.lookups == 1200
        assert len(store._memory) <= 8
