"""Tests for the on-disk compile cache store."""

import pickle

import pytest

from repro.cache.store import CACHE_VERSION, CompileCache, resolve_cache


KEY = "ab" + "0" * 62  # hex-digest-shaped key, shard "ab"
OTHER = "cd" + "1" * 62


class TestRoundTrip:
    def test_get_miss_returns_default(self, tmp_path):
        cache = CompileCache(tmp_path)
        assert cache.get(KEY) is None
        assert cache.get(KEY, default="sentinel") == "sentinel"
        assert cache.stats.misses == 2 and cache.stats.hits == 0

    def test_put_then_get(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.put(KEY, {"value": 42})
        assert cache.get(KEY) == {"value": 42}
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_persists_across_instances(self, tmp_path):
        CompileCache(tmp_path).put(KEY, [1.5, 2.5])
        fresh = CompileCache(tmp_path)
        assert fresh.get(KEY) == [1.5, 2.5]
        assert fresh.stats.hits == 1  # served from disk, not memory

    def test_sharded_layout_and_version_directory(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.put(KEY, "x")
        path = tmp_path / f"v{CACHE_VERSION}" / KEY[:2] / f"{KEY}.pkl"
        assert path.is_file()

    def test_entry_count_and_disk_bytes(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.put(KEY, "x")
        cache.put(OTHER, "y")
        assert cache.entry_count() == 2
        assert cache.disk_bytes() > 0


class TestCorruption:
    def test_garbage_file_is_a_miss(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.put(KEY, "good")
        path = tmp_path / f"v{CACHE_VERSION}" / KEY[:2] / f"{KEY}.pkl"
        path.write_bytes(b"this is not a pickle")
        fresh = CompileCache(tmp_path)
        assert fresh.get(KEY) is None
        assert fresh.stats.corrupt == 1
        assert not path.exists()  # corrupt entries are evicted from disk

    def test_wrong_schema_version_is_a_miss(self, tmp_path):
        cache = CompileCache(tmp_path)
        path = cache._path(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps({"schema": CACHE_VERSION + 1, "key": KEY, "value": "stale"})
        )
        assert cache.get(KEY) is None
        assert cache.stats.corrupt == 1

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = CompileCache(tmp_path)
        path = cache._path(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps({"schema": CACHE_VERSION, "key": OTHER, "value": "aliased"})
        )
        assert cache.get(KEY) is None
        assert cache.stats.corrupt == 1

    def test_payload_of_wrong_shape_is_a_miss(self, tmp_path):
        cache = CompileCache(tmp_path)
        path = cache._path(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps(["not", "a", "dict"]))
        assert cache.get(KEY) is None
        assert cache.stats.corrupt == 1


class TestMemoryTier:
    def test_lru_eviction_counts(self, tmp_path):
        cache = CompileCache(tmp_path, memory_entries=2)
        keys = [f"{i:02x}" + "0" * 62 for i in range(3)]
        for key in keys:
            cache.put(key, key)
        assert cache.stats.evictions == 1
        # The evicted entry is still served — from disk.
        assert cache.get(keys[0]) == keys[0]

    def test_memory_zero_disables_the_front(self, tmp_path):
        cache = CompileCache(tmp_path, memory_entries=0)
        cache.put(KEY, "x")
        assert cache._memory == {}
        assert cache.get(KEY) == "x"  # disk still answers


class TestClear:
    def test_clear_removes_all_entries(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.put(KEY, "x")
        cache.put(OTHER, "y")
        assert cache.clear() == 2
        assert cache.entry_count() == 0
        assert cache.get(KEY) is None

    def test_clear_removes_stale_version_directories(self, tmp_path):
        stale = tmp_path / "v0" / "ab"
        stale.mkdir(parents=True)
        (stale / "old.pkl").write_bytes(b"stale")
        cache = CompileCache(tmp_path)
        cache.put(KEY, "x")
        assert cache.clear() == 2
        assert not (tmp_path / "v0").exists()

    def test_clear_on_empty_directory(self, tmp_path):
        assert CompileCache(tmp_path / "never-created").clear() == 0


class TestStats:
    def test_hit_rate(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.put(KEY, "x")
        cache.get(KEY)
        cache.get(OTHER)
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert "hit_rate=50.0%" in cache.stats.describe()


class TestResolveCache:
    def test_none_passes_through(self):
        assert resolve_cache(None) is None

    def test_instance_passes_through(self, tmp_path):
        cache = CompileCache(tmp_path)
        assert resolve_cache(cache) is cache

    def test_path_builds_a_store(self, tmp_path):
        cache = resolve_cache(tmp_path / "cache")
        assert isinstance(cache, CompileCache)
        cache.put(KEY, "x")
        assert cache.get(KEY) == "x"
