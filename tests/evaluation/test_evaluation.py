"""Tests for the experiment runners and reports (Figure 5, Tables 1-2, ablations)."""

import math

import pytest

from repro.evaluation.ablations import AblationRow, render_ablation
from repro.evaluation.figure5 import figure5, render_figure5
from repro.evaluation.reporting import format_percent, format_table, horizontal_bar_chart
from repro.evaluation.runner import run_benchmark, run_suite
from repro.evaluation.table1 import average_row, render_table1, table1
from repro.evaluation.table2 import render_table2, table2
from repro.pipeline.compiler import TECHNIQUES
from repro.workloads.spec_like import build_benchmark, spec_by_name

#: A small but representative subset keeps the evaluation tests quick.
SUBSET = ["gzip", "mcf", "crafty"]
SCALE = 0.3


@pytest.fixture(scope="module")
def measurement():
    return run_suite(names=SUBSET, scale=SCALE)


class TestRunner:
    def test_benchmarks_in_requested_order(self, measurement):
        assert measurement.names() == SUBSET

    def test_overheads_are_nonnegative_and_ordered(self, measurement):
        for benchmark in measurement.benchmarks:
            for technique in TECHNIQUES:
                assert benchmark.total_overhead(technique) >= 0
            assert benchmark.ratio_to_baseline("optimized") <= 1.0 + 1e-9
            assert benchmark.ratio_to_baseline("optimized") <= benchmark.ratio_to_baseline("shrinkwrap") + 1e-9

    def test_ratio_for_zero_baseline_is_one(self):
        measurement = run_benchmark(build_benchmark(spec_by_name("mcf"), scale=0.15))
        # Even if mcf's overhead is (near) zero the ratio stays well defined.
        assert measurement.ratio_to_baseline("optimized") <= 1.0 + 1e-9

    def test_pass_seconds_accumulate(self, measurement):
        for benchmark in measurement.benchmarks:
            assert benchmark.pass_seconds.get("optimized", 0.0) >= 0.0
            assert benchmark.incremental_seconds("optimized") >= 0.0

    def test_wall_clock_and_cpu_totals_tracked_separately(self, measurement):
        """CPU-seconds are summed worker time; wall-clock is parent-measured.

        A serial run must satisfy cpu <= wall (the passes are a subset of the
        run), and the measurement must record which worker count produced it.
        """

        assert measurement.wall_seconds > 0.0
        assert measurement.workers_used == 1
        assert 0.0 < measurement.cpu_seconds_total() <= measurement.wall_seconds

    def test_run_benchmark_records_its_own_wall_clock(self):
        result = run_benchmark(build_benchmark(spec_by_name("mcf"), scale=0.15))
        assert result.wall_seconds > 0.0
        assert result.cpu_seconds_total() <= result.wall_seconds

    def test_average_ratio(self, measurement):
        average = measurement.average_ratio("optimized")
        assert 0.0 < average <= 1.0 + 1e-9

    def test_benchmark_lookup(self, measurement):
        assert measurement.benchmark("mcf").name == "mcf"
        with pytest.raises(KeyError):
            measurement.benchmark("eon")


class TestFigure5:
    def test_rows_match_measurement(self, measurement):
        rows = figure5(measurement)
        assert [r.benchmark for r in rows] == SUBSET
        for row, benchmark in zip(rows, measurement.benchmarks):
            assert row.baseline == pytest.approx(benchmark.total_overhead("baseline"))
            assert row.optimized <= row.baseline + 1e-9

    def test_render_contains_all_benchmarks_and_series(self, measurement):
        text = render_figure5(figure5(measurement))
        for name in SUBSET:
            assert name in text
        for series in ("Optimized", "Shrinkwrap", "Baseline"):
            assert series in text

    def test_render_without_chart(self, measurement):
        text = render_figure5(figure5(measurement), chart=False)
        assert "bar-chart view" not in text


class TestTable1:
    def test_rows_and_average(self, measurement):
        rows = table1(measurement)
        average = average_row(rows)
        assert average.benchmark == "Average"
        assert 0 < average.optimized_ratio <= average.shrinkwrap_ratio + 0.5
        assert average.paper_optimized_ratio == pytest.approx(0.848)

    def test_render_shows_percentages_and_paper_reference(self, measurement):
        text = render_table1(table1(measurement))
        assert "%" in text
        assert "Average" in text
        assert "(paper)" in text

    def test_paper_reference_ratios_attached(self, measurement):
        rows = {r.benchmark: r for r in table1(measurement)}
        assert rows["gzip"].paper_optimized_ratio == pytest.approx(0.830)
        assert rows["crafty"].paper_shrinkwrap_ratio == pytest.approx(0.933)


class TestTable2:
    def test_incremental_times_and_ratio(self, measurement):
        rows = table2(measurement)
        assert [r.benchmark for r in rows] == SUBSET
        for row in rows:
            assert row.shrinkwrap_seconds >= 0
            assert row.optimized_seconds >= 0
            if row.shrinkwrap_seconds > 0:
                assert row.ratio == pytest.approx(row.optimized_seconds / row.shrinkwrap_seconds)
            else:
                assert math.isnan(row.ratio)

    def test_hierarchical_pass_costs_more_than_shrink_wrapping(self, measurement):
        rows = table2(measurement)
        totals = (sum(r.shrinkwrap_seconds for r in rows), sum(r.optimized_seconds for r in rows))
        # The hierarchical pass runs shrink-wrapping internally plus the PST
        # machinery, so in aggregate it must be slower.
        assert totals[1] > totals[0]

    def test_render(self, measurement):
        text = render_table2(table2(measurement))
        assert "incremental" in text
        assert "Average" in text

    def test_render_labels_pass_times_as_cpu(self, measurement):
        """Regression: summed worker durations must not be passed off as
        elapsed time — the columns say CPU and the note reports both."""

        text = render_table2(table2(measurement), measurement)
        assert "CPU (s)" in text
        assert "pass CPU total" in text
        assert "wall-clock elapsed" in text
        assert f"workers={measurement.workers_used}" in text

    def test_render_without_measurement_omits_the_note(self, measurement):
        assert "wall-clock elapsed" not in render_table2(table2(measurement))


class TestReportingHelpers:
    def test_format_table_alignment_and_title(self):
        text = format_table(["name", "value"], [("a", 1.0), ("bb", 22.5)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2] and "value" in lines[2]

    def test_format_percent(self):
        assert format_percent(0.848) == "84.8%"

    def test_bar_chart_scales_to_width(self):
        text = horizontal_bar_chart(["x"], [[10.0, 5.0, 2.0]], ["a", "b", "c"], width=20)
        assert text.count("#") == 20

    def test_ablation_row_and_render(self):
        rows = [AblationRow("bench", 100.0, 120.0)]
        assert rows[0].ratio == pytest.approx(1.2)
        text = render_ablation(rows, "A", "B", "title")
        assert "bench" in text and "1.200" in text
