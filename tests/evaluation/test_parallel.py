"""Tests for the process-pool parallel evaluation engine.

The central guarantee: sharding over workers changes *nothing* about the
measurements.  Aggregation runs in generation order on both paths, so every
float — overheads, counts — must be bit-identical between ``workers=1`` and
``workers=N`` (only ``pass_seconds`` differ, being wall-clock readings).
"""

import pytest

from repro.evaluation.parallel import (
    ProcedureMeasurement,
    _chunk_plan,
    effective_workers,
    measure_procedure,
    measure_procedure_groups,
    resolve_workers,
)
from repro.evaluation.runner import run_benchmark, run_suite
from repro.pipeline.compiler import compile_many
from repro.spill.cost_models import JumpEdgeCostModel
from repro.workloads.spec_like import build_suite

#: A tiny but non-degenerate slice of the suite: gzip has cold procedures,
#: gcc has jump-edge shapes, mcf is small.
NAMES = ("gzip", "gcc", "mcf")
SCALE = 0.1


def _strip_timings(measurement):
    """Everything deterministic about a suite measurement."""

    return [
        (
            m.name,
            m.num_procedures,
            m.num_blocks,
            m.num_instructions,
            m.allocator_overhead,
            dict(m.callee_saved_overhead),
            sorted(m.pass_seconds),  # keys are deterministic, values are time
        )
        for m in measurement.benchmarks
    ]


@pytest.fixture(scope="module")
def serial_measurement():
    return run_suite(names=NAMES, scale=SCALE, workers=1)


class TestResolveWorkers:
    def test_none_means_all_cores(self):
        assert resolve_workers(None) >= 1

    def test_explicit_value_passes_through(self):
        assert resolve_workers(3) == 3

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_auto_mode_falls_back_to_serial_on_single_core(self, monkeypatch):
        """Regression: a pool on one core is pure overhead (0.89x in
        BENCH_parallel.json), so ``workers=None`` must resolve to serial."""

        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert resolve_workers(None) == 1

    def test_auto_mode_handles_unknown_cpu_count(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert resolve_workers(None) == 1

    def test_auto_mode_respects_affinity_mask(self, monkeypatch):
        """cpu_count reports the *host*; a 1-CPU affinity mask (container
        quota) must still mean serial."""

        import os
        import repro.evaluation.parallel as parallel_mod

        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        if hasattr(os, "sched_getaffinity"):
            monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0})
            assert parallel_mod.available_cpus() == 1
            assert resolve_workers(None) == 1

    def test_auto_mode_never_spawns_a_pool_on_single_core(self, monkeypatch):
        import os
        import repro.evaluation.parallel as parallel_mod

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        if hasattr(os, "sched_getaffinity"):
            monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0})

        def boom(*args, **kwargs):  # pragma: no cover - must not be reached
            raise AssertionError("auto mode on a single core must stay serial")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", boom)
        benchmark = build_suite(names=["mcf"], scale=SCALE)[0]
        measurement = run_benchmark(benchmark, workers=None)
        assert measurement.num_procedures == len(benchmark.procedures)

    def test_explicit_workers_still_shard_on_single_core(self, monkeypatch):
        """An explicit ``--workers 2`` is honoured even when auto would not."""

        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert resolve_workers(2) == 2


class TestEffectiveWorkers:
    """``workers_used`` must report what actually ran, not the request."""

    def test_serial_fallbacks_report_one(self):
        assert effective_workers(1, total=100) == 1
        assert effective_workers(8, total=1) == 1  # batch too small to shard

    def test_unpicklable_cost_model_reports_one(self):
        class ClosureModel(JumpEdgeCostModel):
            name = "closure"

            def __init__(self, machine=None):
                super().__init__(machine)
                self.tweak = lambda cost: cost

        assert effective_workers(8, total=100, cost_model=ClosureModel()) == 1

    def test_shardable_batch_reports_the_pool_size(self):
        assert effective_workers(4, total=100) == 4

    def test_pool_size_capped_by_batch_size(self):
        """A 3-procedure batch never fills an 8-worker pool — the executor
        caps at the chunk count, and the honest number must match."""

        assert effective_workers(8, total=3) == 3

    def test_run_suite_records_actual_not_requested_workers(self):
        class ClosureModel(JumpEdgeCostModel):
            name = "closure"

            def __init__(self, machine=None):
                super().__init__(machine)
                self.tweak = lambda cost: cost

        measurement = run_suite(
            names=["mcf"], scale=SCALE, cost_model=ClosureModel(), workers=8
        )
        assert measurement.workers_used == 1


class TestChunkPlan:
    def test_covers_every_procedure_in_order(self):
        plan = _chunk_plan([5, 1, 7], workers=2)
        seen = {0: [], 1: [], 2: []}
        for group, start, stop in plan:
            assert start < stop
            seen[group].extend(range(start, stop))
        assert seen == {0: list(range(5)), 1: [0], 2: list(range(7))}

    def test_empty_groups(self):
        assert _chunk_plan([], workers=4) == []
        assert _chunk_plan([0, 0], workers=4) == []

    def test_chunks_shared_across_groups(self):
        # 8 procedures over 2 workers * 4 chunks-per-worker => chunk size 1.
        plan = _chunk_plan([4, 4], workers=2)
        assert len(plan) == 8


class TestParallelIdenticalToSerial:
    def test_run_suite_workers4_bit_identical(self, serial_measurement):
        parallel = run_suite(names=NAMES, scale=SCALE, workers=4)
        assert _strip_timings(parallel) == _strip_timings(serial_measurement)

    def test_run_benchmark_workers2_bit_identical(self):
        benchmark = build_suite(names=["gzip"], scale=SCALE)[0]
        serial = run_benchmark(benchmark, workers=1)
        parallel = run_benchmark(benchmark, workers=2)
        assert serial.allocator_overhead == parallel.allocator_overhead
        assert serial.callee_saved_overhead == parallel.callee_saved_overhead
        assert serial.num_procedures == parallel.num_procedures
        assert serial.num_blocks == parallel.num_blocks
        assert serial.num_instructions == parallel.num_instructions

    def test_non_default_target_and_model(self):
        serial = run_suite(
            names=["mcf"], scale=SCALE, machine="micro",
            cost_model="execution_count", workers=1,
        )
        parallel = run_suite(
            names=["mcf"], scale=SCALE, machine="micro",
            cost_model="execution_count", workers=2,
        )
        assert _strip_timings(serial) == _strip_timings(parallel)


class TestSerialFallback:
    def test_workers1_never_spawns(self, monkeypatch):
        import repro.evaluation.parallel as parallel_mod

        def boom(*args, **kwargs):  # pragma: no cover - must not be reached
            raise AssertionError("workers=1 must not create a process pool")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", boom)
        benchmark = build_suite(names=["mcf"], scale=SCALE)[0]
        measurement = run_benchmark(benchmark, workers=1)
        assert measurement.num_procedures == len(benchmark.procedures)

    def test_non_picklable_cost_model_falls_back(self, monkeypatch):
        import repro.evaluation.parallel as parallel_mod

        class ClosureModel(JumpEdgeCostModel):
            """A custom model carrying an unpicklable closure."""

            name = "closure"

            def __init__(self, machine=None):
                super().__init__(machine)
                self.tweak = lambda cost: cost  # lambdas do not pickle

        def boom(*args, **kwargs):  # pragma: no cover - must not be reached
            raise AssertionError("non-picklable cost model must run serially")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", boom)
        measurement = run_suite(names=["mcf"], scale=SCALE, cost_model=ClosureModel(), workers=4)
        assert measurement.benchmarks[0].num_procedures >= 1

    def test_single_procedure_stays_serial(self, monkeypatch):
        import repro.evaluation.parallel as parallel_mod

        def boom(*args, **kwargs):  # pragma: no cover - must not be reached
            raise AssertionError("a single procedure must not spawn workers")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", boom)
        procedures = build_suite(names=["mcf"], scale=SCALE)[0].procedures[:1]
        groups = measure_procedure_groups([procedures], workers=8)
        assert len(groups) == 1 and len(groups[0]) == 1
        assert isinstance(groups[0][0], ProcedureMeasurement)


class TestCompileMany:
    def test_parallel_results_in_input_order(self):
        procedures = build_suite(names=["gzip"], scale=0.3)[0].procedures
        serial = compile_many(procedures, workers=1)
        parallel = compile_many(procedures, workers=2)
        assert [c.name for c in serial] == [c.name for c in parallel]
        for a, b in zip(serial, parallel):
            assert a.allocator_overhead == b.allocator_overhead
            for technique in a.outcomes:
                assert a.callee_saved_overhead(technique) == b.callee_saved_overhead(technique)

    def test_keep_procedures_retains_artifacts(self):
        benchmark = build_suite(names=["mcf"], scale=SCALE)[0]
        measurement = run_benchmark(benchmark, keep_procedures=True)
        assert len(measurement.procedures) == measurement.num_procedures


class TestMeasureProcedure:
    def test_summary_matches_compiled_procedure(self):
        from repro.pipeline.compiler import compile_procedure

        procedure = build_suite(names=["mcf"], scale=SCALE)[0].procedures[0]
        compiled = compile_procedure(procedure)
        summary = measure_procedure(procedure)
        assert summary.name == compiled.name
        assert summary.allocator_overhead == compiled.allocator_overhead
        assert summary.callee_saved_overhead == {
            t: compiled.callee_saved_overhead(t) for t in ("baseline", "shrinkwrap", "optimized")
        }


class TestPoolTeardown:
    """A failing procedure must never leak worker processes (PR-5 satellite)."""

    def test_worker_failure_propagates_and_leaves_no_children(self):
        import multiprocessing
        import time

        procedures = list(build_suite(names=["mcf"], scale=SCALE)[0].procedures)
        # A picklable "procedure" that explodes inside the worker: the
        # pair unpacks, but allocation chokes on the non-IR payload.
        poisoned = procedures[:3] + [("not a function", "not a profile")] + procedures[3:]
        with pytest.raises(Exception):
            compile_many(poisoned, workers=2)
        # The pool was shut down with its workers joined: no child
        # processes survive the failure (allow a moment for reaping).
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []

    def test_keyboard_interrupt_tears_the_pool_down(self, monkeypatch):
        """Simulated ^C while collecting results: the engine must cancel
        pending chunks and join every worker before re-raising."""

        import multiprocessing
        import time

        from repro.evaluation import parallel as parallel_mod

        procedures = list(build_suite(names=["gzip"], scale=0.2)[0].procedures)

        original_chunk = parallel_mod._compile_chunk

        def interrupting_result(self, timeout=None):
            raise KeyboardInterrupt

        # Interrupt the parent at the first result collection.
        monkeypatch.setattr(
            "concurrent.futures.Future.result", interrupting_result
        )
        with pytest.raises(KeyboardInterrupt):
            compile_many(procedures, workers=2)
        monkeypatch.undo()

        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []
        assert original_chunk is parallel_mod._compile_chunk  # sanity
