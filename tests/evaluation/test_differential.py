"""The differential stress harness and its CLI subcommand."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.evaluation.differential import (
    STRESS_COST_MODELS,
    StressReport,
    StressViolation,
    render_stress,
    run_stress,
)
from repro.workloads.scenarios import scenario_names

# A small but representative configuration: one diverse family per axis.
SMALL = dict(
    scenarios=["switch_dispatch", "irreducible_loop"],
    targets=["tiny", "parisc"],
    count=2,
)


@pytest.fixture(scope="module")
def small_report():
    return run_stress(**SMALL)


class TestRunStress:
    def test_small_run_is_clean(self, small_report):
        assert small_report.ok
        assert small_report.violations == []

    def test_covers_the_full_matrix(self, small_report):
        combos = {(r.scenario, r.target, r.cost_model) for r in small_report.rows}
        assert combos == {
            (scenario, target, model)
            for scenario in SMALL["scenarios"]
            for target in SMALL["targets"]
            for model in STRESS_COST_MODELS
        }
        assert small_report.num_procedures() == 2 * 2 * 2

    def test_every_row_has_every_technique(self, small_report):
        for row in small_report.rows:
            assert set(row.overheads) == {"baseline", "shrinkwrap", "optimized"}

    def test_every_row_carries_a_lint_fingerprint(self, small_report):
        """The harness lints every procedure and records the report
        fingerprint — the purity/determinism sentinel for the whole sweep."""

        for row in small_report.rows:
            assert row.lint_fingerprint
            assert len(row.lint_fingerprint) == 64
            assert all(c in "0123456789abcdef" for c in row.lint_fingerprint)

    def test_lint_fingerprints_are_stable_across_runs(self, small_report):
        again = run_stress(**SMALL)
        assert [r.lint_fingerprint for r in again.rows] == [
            r.lint_fingerprint for r in small_report.rows
        ]

    def test_report_is_deterministic(self, small_report):
        again = run_stress(**SMALL)
        assert again.rows == small_report.rows
        assert render_stress(again) == render_stress(small_report)

    def test_default_run_covers_every_family(self):
        report = run_stress(targets=["tiny"], count=1, check_determinism=False)
        assert {r.scenario for r in report.rows} == set(scenario_names())
        assert report.ok

    def test_render_mentions_violations(self):
        report = StressReport(
            scenarios=("s",), targets=("t",), techniques=("baseline",), seed=0
        )
        report.violations.append(
            StressViolation("s", "t", "p", "jump_edge", "bad", "detail", "func p() {}")
        )
        text = render_stress(report, show_programs=True)
        assert "VIOLATION" in text
        assert "func p() {}" in text

    def test_compile_failure_becomes_violation(self, monkeypatch):
        import repro.evaluation.differential as differential

        def explode(*args, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(differential, "compile_procedure", explode)
        report = run_stress(
            scenarios=["call_web"], targets=["tiny"], count=1, check_determinism=False
        )
        assert not report.ok
        assert all(v.invariant == "compile-or-verify" for v in report.violations)
        assert all("boom" in v.detail for v in report.violations)
        # The violation carries the repro program, ready for the corpus.
        assert all(v.program.startswith("func ") for v in report.violations)


class TestStressCli:
    def test_stress_subcommand_exits_zero(self, capsys):
        code = main(
            [
                "stress",
                "--target",
                "tiny",
                "--scenario",
                "irreducible_loop",
                "--count",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "irreducible_loop" in out
        assert "0 violation(s)" in out

    def test_scenarios_subcommand_lists_families(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_stress_exit_code_reflects_violations(self, monkeypatch, capsys):
        import repro.evaluation.differential as differential

        def explode(*args, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(differential, "compile_procedure", explode)
        code = main(
            ["stress", "--target", "tiny", "--scenario", "call_web", "--count", "1"]
        )
        assert code == 1
        assert "VIOLATION" in capsys.readouterr().out
