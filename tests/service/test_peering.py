"""The cache-peering protocol: frames, the shared tier, and the client.

Covers the three layers separately:

* frame builders/validators (pure functions, strict unknown-field posture
  mirroring the main protocol's);
* :class:`SharedCacheTier` — bounded LRU semantics and counters;
* :class:`PeerCacheClient` against a real ``serve_peering_connection``
  listener — including the failure-tolerance contract: a dead or
  mismatched tier is always a *miss*, never an exception.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service.peering import (
    PEERING_VERSION,
    PeerCacheClient,
    SharedCacheTier,
    cache_get_message,
    cache_put_message,
    parse_peer_address,
    parse_peer_hello,
    parse_peering_frame,
    peer_hello_message,
    serve_peering_connection,
    validate_entry,
)
from repro.service.protocol import ProtocolError

ENTRY = {"result": {"name": "f", "answer": 1}, "pass_seconds": {"spill": 0.5}}


# ---------------------------------------------------------------------------
# Frames.
# ---------------------------------------------------------------------------


def test_parse_peer_address():
    assert parse_peer_address("127.0.0.1:7814") == ("127.0.0.1", 7814)
    assert parse_peer_address("::1:7814") == ("::1", 7814)
    for bad in ("7814", "host:", ":7814", "host:notaport", "host:0", "host:70000"):
        with pytest.raises(ValueError):
            parse_peer_address(bad)


def test_peer_hello_roundtrip_and_validation():
    assert parse_peer_hello(peer_hello_message()) == PEERING_VERSION
    with pytest.raises(ProtocolError):
        parse_peer_hello({"type": "cache-get", "id": "x", "key": "k"})
    with pytest.raises(ProtocolError):
        parse_peer_hello({"type": "peer-hello", "peering": "1"})
    with pytest.raises(ProtocolError):
        parse_peer_hello({"type": "peer-hello", "peering": 1, "extra": True})


def test_parse_peering_frame_roundtrips():
    kind, rid, key, entry = parse_peering_frame(cache_get_message("p1", "k"))
    assert (kind, rid, key, entry) == ("cache-get", "p1", "k", None)
    kind, rid, key, entry = parse_peering_frame(cache_put_message("p2", "k", ENTRY))
    assert (kind, rid, key) == ("cache-put", "p2", "k")
    assert entry == ENTRY


def test_parse_peering_frame_rejects_malformed():
    for bad in (
        {"type": "bogus", "id": "p1", "key": "k"},
        {"type": "cache-get", "id": "", "key": "k"},
        {"type": "cache-get", "id": "p1", "key": ""},
        {"type": "cache-get", "id": "p1", "key": "k", "extra": 1},
        {"type": "cache-put", "id": "p1", "key": "k", "entry": "not-an-object"},
    ):
        with pytest.raises(ProtocolError):
            parse_peering_frame(bad)


def test_validate_entry_is_strict():
    validated = validate_entry(ENTRY)
    assert validated == ENTRY
    assert validated is not ENTRY  # defensive copy
    for bad in (
        None,
        [],
        {"result": {}},  # fine — pass_seconds defaults
        {"result": "x", "pass_seconds": {}},
        {"result": {}, "pass_seconds": []},
        {"result": {}, "pass_seconds": {}, "extra": 1},
    ):
        if bad == {"result": {}}:
            assert validate_entry(bad) == {"result": {}, "pass_seconds": {}}
            continue
        with pytest.raises(ProtocolError):
            validate_entry(bad)


# ---------------------------------------------------------------------------
# The tier.
# ---------------------------------------------------------------------------


def test_tier_put_get_and_duplicate_counting():
    tier = SharedCacheTier(max_entries=8)
    assert tier.get("k") is None
    assert tier.put("k", ENTRY) is True
    assert tier.put("k", ENTRY) is False  # idempotent duplicate
    assert tier.get("k") == ENTRY
    assert len(tier) == 1
    snap = tier.snapshot()
    assert snap["gets"] == 2 and snap["hits"] == 1 and snap["misses"] == 1
    assert snap["puts"] == 2 and snap["stored"] == 1 and snap["duplicate_puts"] == 1
    assert snap["hit_rate"] == 0.5


def test_tier_lru_evicts_least_recently_used():
    tier = SharedCacheTier(max_entries=2)
    tier.put("a", ENTRY)
    tier.put("b", ENTRY)
    assert tier.get("a") is not None  # refresh "a"
    tier.put("c", ENTRY)  # evicts "b", the LRU entry
    assert tier.get("b") is None
    assert tier.get("a") is not None
    assert tier.get("c") is not None
    assert tier.snapshot()["evictions"] == 1


def test_tier_rejects_invalid_bound():
    with pytest.raises(ValueError):
        SharedCacheTier(max_entries=0)


# ---------------------------------------------------------------------------
# Client against a live tier listener.
# ---------------------------------------------------------------------------


def run(coroutine):
    """Run one async test body on a fresh loop."""

    return asyncio.run(coroutine)


async def start_tier(tier):
    server = await asyncio.start_server(
        lambda r, w: serve_peering_connection(tier, r, w), "127.0.0.1", 0
    )
    return server, server.sockets[0].getsockname()[1]


def test_client_roundtrip_against_live_tier():
    async def body():
        tier = SharedCacheTier()
        server, port = await start_tier(tier)
        client = PeerCacheClient("127.0.0.1", port, timeout=10.0)
        try:
            assert await client.get("k") is None  # miss
            await client.put("k", ENTRY)
            assert await client.get("k") == ENTRY  # hit, byte-identical
            snap = client.snapshot()
            assert snap["connected"] is True
            assert snap["gets"] == 2 and snap["hits"] == 1 and snap["puts"] == 1
            assert snap["errors"] == 0
        finally:
            await client.close()
            server.close()
            await server.wait_closed()
        assert tier.snapshot()["stored"] == 1

    run(body())


def test_client_concurrent_requests_share_one_connection():
    async def body():
        tier = SharedCacheTier()
        server, port = await start_tier(tier)
        client = PeerCacheClient("127.0.0.1", port, timeout=10.0)
        try:
            await asyncio.gather(
                *(client.put(f"k{i}", ENTRY) for i in range(8))
            )
            results = await asyncio.gather(
                *(client.get(f"k{i}") for i in range(8))
            )
            assert all(entry == ENTRY for entry in results)
        finally:
            await client.close()
            server.close()
            await server.wait_closed()

    run(body())


def test_client_treats_dead_peer_as_miss_with_cooldown():
    """The failure-tolerance contract: no listener ⇒ miss, not exception,
    and the cooldown suppresses reconnect storms."""

    async def body():
        server, port = await start_tier(SharedCacheTier())
        server.close()
        await server.wait_closed()  # port is now dead
        client = PeerCacheClient("127.0.0.1", port, timeout=0.5, retry_seconds=60.0)
        try:
            assert await client.get("k") is None
            await client.put("k", ENTRY)  # must not raise
            errors_after_first = client.errors
            assert errors_after_first >= 1
            # In cooldown: no new connection attempt, still a miss.
            assert await client.get("k") is None
            assert client.errors == errors_after_first
        finally:
            await client.close()

    run(body())


def test_client_recovers_after_connection_drop():
    async def body():
        tier = SharedCacheTier()
        server, port = await start_tier(tier)
        client = PeerCacheClient("127.0.0.1", port, timeout=5.0, retry_seconds=0.0)
        try:
            await client.put("k", ENTRY)
            # Sever the established connection out from under the client.
            client._writer.transport.abort()
            await asyncio.sleep(0.05)  # read loop sees the reset, tears down
            assert client.snapshot()["connected"] is False
            # retry_seconds=0: the very next call reconnects and hits.
            assert await client.get("k") == ENTRY
        finally:
            await client.close()
            server.close()
            await server.wait_closed()

    run(body())


def test_tier_listener_rejects_version_mismatch():
    async def body():
        tier = SharedCacheTier()
        server, port = await start_tier(tier)
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b'{"type": "peer-hello", "peering": 999}\n')
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            import json

            reply = json.loads(line)
            assert reply["type"] == "error"
            assert reply["code"] == "protocol"
            # The tier hangs up after a handshake violation.
            assert await asyncio.wait_for(reader.readline(), timeout=5.0) == b""
            writer.close()
        finally:
            server.close()
            await server.wait_closed()
        assert tier.snapshot()["protocol_errors"] == 1

    run(body())


def test_tier_listener_answers_errors_for_bad_frames_but_stays_up():
    async def body():
        tier = SharedCacheTier()
        server, port = await start_tier(tier)
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b'{"type": "peer-hello", "peering": 1}\n')
            await writer.drain()
            await asyncio.wait_for(reader.readline(), timeout=5.0)  # hello back
            # A well-formed frame of a client-side type: error, stays up.
            writer.write(b'{"type": "cache-hit", "id": "p1", "key": "k", "entry": {"result": {}}}\n')
            # A malformed frame: error, stays up.
            writer.write(b'{"type": "cache-get", "id": "p2"}\n')
            # A valid get still works afterwards.
            writer.write(b'{"type": "cache-get", "id": "p3", "key": "k"}\n')
            await writer.drain()
            import json

            replies = [
                json.loads(await asyncio.wait_for(reader.readline(), timeout=5.0))
                for _ in range(3)
            ]
            assert replies[0]["type"] == "error"
            assert replies[1]["type"] == "error"
            assert replies[2] == {"type": "cache-miss", "id": "p3", "key": "k"}
            writer.close()
        finally:
            server.close()
            await server.wait_closed()

    run(body())
