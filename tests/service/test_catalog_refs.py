"""``catalog:`` program references through the protocol and the live server.

Three contracts under test:

1. catalog references resolve deterministically (same fingerprints and
   cache key every time), with the ``catalog:`` prefix, the seed and the
   index all optional, and aliases resolving exactly like their target
   combination codes;
2. a served catalog compile is byte-identical to the serial
   ``compile_many`` oracle, and an MD scenario-kind entry answers
   byte-identically to the legacy ``scenario:`` reference it wraps;
3. malformed catalog *and* scenario references fail with the one unified
   error shape (``<kind> reference <ref> does not resolve: <detail>``),
   and the served error payload's message is byte-identical to the local
   :class:`ProtocolError` string for the same request.
"""

from __future__ import annotations

import json

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import (
    ProtocolError,
    parse_compile_request,
    resolve_compile_request,
)

from tests.service.conftest import oracle_result_bytes


def compile_message(**overrides):
    """A valid baseline catalog compile message, with overrides."""

    message = {
        "type": "compile",
        "id": "c1",
        "program": {"catalog": "catalog:gcd1_MD_RED"},
    }
    message.update(overrides)
    return message


def resolve(message):
    return resolve_compile_request(parse_compile_request(message))


def identity(resolved):
    """What deterministic resolution must pin: fingerprints + cache key."""

    return (
        resolved.function_fingerprint,
        resolved.profile_fingerprint,
        resolved.cache_key,
    )


class TestResolution:
    def test_catalog_reference_resolves_deterministically(self):
        first = resolve(compile_message())
        second = resolve(compile_message())
        assert identity(first) == identity(second)

    def test_prefix_is_optional(self):
        bare = resolve(compile_message(program={"catalog": "gcd1_MD_RED:3:1"}))
        prefixed = resolve(
            compile_message(program={"catalog": "catalog:gcd1_MD_RED:3:1"})
        )
        assert identity(bare) == identity(prefixed)

    def test_seed_and_index_default_to_zero(self):
        short = resolve(compile_message(program={"catalog": "gcd1_MD_RED"}))
        seeded = resolve(compile_message(program={"catalog": "gcd1_MD_RED:0"}))
        full = resolve(compile_message(program={"catalog": "gcd1_MD_RED:0:0"}))
        assert identity(short) == identity(seeded) == identity(full)

    def test_alias_resolves_like_its_combination_code(self):
        via_alias = resolve(
            compile_message(program={"catalog": "catalog:switch_dispatch:5:1"})
        )
        via_code = resolve(
            compile_message(program={"catalog": "catalog:switch1_MD_RED:5:1"})
        )
        assert identity(via_alias) == identity(via_code)

    def test_pyfunc_entry_resolves_to_namespaced_function(self):
        resolved = resolve(compile_message())
        assert resolved.function.name == "pyfunc.textbook.gcd"

    def test_md_scenario_entry_matches_legacy_scenario_reference(self):
        """An MD catalog entry wraps the registry builder bit-for-bit, so
        the two reference grammars must resolve to the same function."""

        via_catalog = resolve(
            compile_message(program={"catalog": "catalog:switch1_MD_RED:0:0"})
        )
        via_scenario = resolve(
            compile_message(program={"scenario": "scenario:switch_dispatch:0:0"})
        )
        assert via_catalog.function_fingerprint == via_scenario.function_fingerprint
        assert via_catalog.profile_fingerprint == via_scenario.profile_fingerprint

    def test_pyfunc_cache_keys_are_distinct_from_scenarios(self):
        pyfunc = resolve(compile_message(program={"catalog": "gcd1_MD_RED"}))
        scenario = resolve(
            compile_message(program={"scenario": "switch_dispatch:0:0"})
        )
        assert pyfunc.cache_key != scenario.cache_key


BAD_CATALOG_REFS = [
    "catalog:nonesuch99_MD_RED",  # unknown combination code
    "catalog:gcd1_MD_RED:0:0:9",  # too many parts
    "catalog:gcd1_MD_RED:banana",  # non-integer seed
    "catalog:gcd1_MD_RED:0:-1",  # negative index
]

BAD_SCENARIO_REFS = [
    "scenario:classic_mix",  # seed required for scenario refs
    "scenario:no_such_family:0:0",  # unknown family
    "scenario:classic_mix:x:0",  # non-integer seed
]


class TestUnifiedErrors:
    @pytest.mark.parametrize("reference", BAD_CATALOG_REFS)
    def test_malformed_catalog_reference_shape(self, reference):
        message = compile_message(program={"catalog": reference})
        with pytest.raises(ProtocolError) as excinfo:
            resolve(message)
        text = str(excinfo.value)
        assert text.startswith(f"catalog reference {reference!r} does not resolve: ")

    @pytest.mark.parametrize("reference", BAD_SCENARIO_REFS)
    def test_malformed_scenario_reference_shape(self, reference):
        message = compile_message(program={"scenario": reference})
        with pytest.raises(ProtocolError) as excinfo:
            resolve(message)
        text = str(excinfo.value)
        assert text.startswith(f"scenario reference {reference!r} does not resolve: ")

    def test_unknown_catalog_name_lists_expectations(self):
        with pytest.raises(ProtocolError) as excinfo:
            resolve(compile_message(program={"catalog": "catalog:bogus1_MD_RED"}))
        text = str(excinfo.value)
        assert "unknown catalog name" in text
        assert "gcd1_MD_RED" in text  # the expected-names list is spelled out


class TestServedCatalog:
    def test_served_result_byte_identical_to_oracle(self, embedded_server):
        message = compile_message(program={"catalog": "catalog:gcd1_MD_RED:0:0"})
        with embedded_server(workers=1) as emb:
            with ServiceClient(port=emb.port) as client:
                response = client.send_compile_message(message)
        assert response["type"] == "result"
        served = json.dumps(response["result"], sort_keys=True).encode("utf-8")
        assert served == oracle_result_bytes(message)

    def test_client_catalog_kwarg_round_trips(self, embedded_server):
        with embedded_server(workers=1) as emb:
            with ServiceClient(port=emb.port) as client:
                response = client.compile(catalog="catalog:fibiter1_MD_RED")
        assert response["type"] == "result"
        assert response["result"]["name"] == "pyfunc.textbook.fib_iter"

    def test_client_rejects_ambiguous_program_kwargs(self):
        from repro.service.client import _compile_message

        with pytest.raises(ValueError):
            _compile_message(
                "r1", None, "classic_mix:0:0", "parisc", "jump_edge",
                None, None, "use", "off", "catalog:gcd1_MD_RED",
            )

    @pytest.mark.parametrize(
        "program",
        [{"catalog": reference} for reference in BAD_CATALOG_REFS]
        + [{"scenario": reference} for reference in BAD_SCENARIO_REFS],
    )
    def test_served_error_byte_identical_to_local_error(
        self, embedded_server, program
    ):
        """The server's ``bad_request`` message for a malformed reference is
        the local :class:`ProtocolError` string, byte for byte — the same
        one-payload-everywhere contract the result path already keeps."""

        message = compile_message(program=program)
        with pytest.raises(ProtocolError) as local:
            resolve(message)
        with embedded_server(workers=1) as emb:
            with ServiceClient(port=emb.port) as client:
                with pytest.raises(ServiceError) as served:
                    client.send_compile_message(message)
        assert served.value.code == "bad_request"
        assert served.value.detail.encode("utf-8") == str(local.value).encode("utf-8")
