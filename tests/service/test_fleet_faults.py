"""Fleet fault injection: real processes, real signals, real sockets.

The satellite battery the ISSUE mandates, on the process backend:

* **death** — SIGKILL a shard while it holds in-flight forwards; the
  router must re-route with zero dropped and zero duplicated responses,
  and the hash ring must converge to the survivors;
* **wedge** — SIGSTOP a shard so it stops reading; the stall watchdog's
  bounded-progress check must isolate it (bounded-write backpressure
  never blocks the router loop) and the load must finish green on the
  healthy shards;
* **remediation** — SIGSTOP a shard with the watchdog effectively off
  and the fleet running with ``remediate=True``: the *policy engine* —
  not the watchdog, not the test — must quarantine the wedged shard,
  drain+restart it, and readmit the replacement into the ring.

These tests spawn actual ``python -m repro serve`` subprocesses, so they
are the slowest in the service suite; everything signal-free lives in
``test_fleet.py`` on the thread backend.
"""

from __future__ import annotations

import threading
import time

from repro.service.fleet import Fleet
from repro.service.loadgen import build_request_plan, run_load
from repro.service.policy import PolicyEngine, RestartRule, WedgedShardRule
from repro.service.protocol import parse_compile_request, resolve_compile_request
from repro.service.ring import HashRing


def owners_for(plan, members):
    """shard id -> number of plan requests it owns, via the public ring."""

    ring = HashRing(members)
    counts = {member: 0 for member in members}
    for message in plan:
        resolved = resolve_compile_request(parse_compile_request(message))
        counts[ring.route(resolved.cache_key)] += 1
    return counts


def test_sigkill_mid_batch_reroutes_without_loss():
    """Kill a shard while requests are in flight on it: every request is
    answered exactly once, byte-identical to the oracle, and the ring
    shrinks to the survivors."""

    plan = build_request_plan(mix="uniform", requests=30, seed=5)
    with Fleet(
        shards=3, backend="process", batch_window_ms=25.0, stall_timeout=10.0
    ) as fleet:
        state = {"victim": None}
        done = threading.Event()

        def killer():
            # Strike the first shard seen holding in-flight forwards —
            # that is what makes the kill "mid-batch".
            deadline = time.monotonic() + 60.0
            while not done.is_set() and time.monotonic() < deadline:
                stats = fleet.stats()
                busy = [s for s in stats["shards"] if s["pending"] > 0]
                if busy:
                    victim = max(busy, key=lambda s: s["pending"])
                    state["victim"] = victim["id"]
                    fleet.kill_shard(victim["id"])
                    return
                time.sleep(0.02)

        thread = threading.Thread(target=killer)
        thread.start()
        report = run_load(
            fleet.host, fleet.port, plan, clients=6, check_oracle=True
        )
        done.set()
        thread.join(10.0)
        stats = fleet.stats()

    victim = state["victim"]
    assert victim is not None, "no shard ever held pending work"
    # Zero dropped, zero duplicated, zero wrong bytes.
    assert report.ok, report.invariant_violations or report.errors
    assert report.completed == len(plan)
    assert report.errors == {}
    assert report.protocol_errors == 0
    assert report.transport_errors == 0
    # The ring converged to the survivors; the death is attributed.
    assert stats["router"]["shard_deaths"] == 1
    assert victim in stats["lost_shards"]
    assert victim not in stats["ring"]["members"]
    assert len(stats["ring"]["members"]) == 2
    # The in-flight forwards that died were actually re-routed.
    assert stats["router"]["rerouted"] >= 1


def test_sigstop_wedged_shard_is_isolated_by_the_watchdog():
    """Freeze a shard that owns live keys: the watchdog detects stalled
    pending work within the stall bound, closes the link, and the load
    finishes green on the surviving shards."""

    plan = build_request_plan(mix="uniform", requests=12, seed=11)
    members = ["s0", "s1", "s2"]
    counts = owners_for(plan, members)
    victim = max(counts, key=lambda member: counts[member])
    assert counts[victim] > 0

    with Fleet(
        shards=3, backend="process", batch_window_ms=10.0, stall_timeout=2.0
    ) as fleet:
        fleet.suspend_shard(victim)
        started = time.monotonic()
        report = run_load(
            fleet.host, fleet.port, plan, clients=4, check_oracle=True
        )
        elapsed = time.monotonic() - started
        stats = fleet.stats()
        # Unfreeze before teardown so the drain can reap the process.
        fleet.resume_shard(victim)

    assert report.ok, report.invariant_violations or report.errors
    assert report.completed == len(plan)
    assert report.errors == {}
    assert report.transport_errors == 0
    # The watchdog, not a transport error, took the shard out.
    assert stats["router"]["wedged"] == 1
    assert victim in stats["lost_shards"]
    assert stats["lost_shards"][victim].startswith("wedged:")
    assert victim not in stats["ring"]["members"]
    # Isolation was bounded by the stall timeout, not a full send timeout.
    assert elapsed < 60.0


def test_policy_engine_quarantines_restarts_and_readmits_a_wedged_shard():
    """Freeze a shard that owns live keys with the watchdog parked far out
    of range: the *policy engine* must issue quarantine, then drain+restart
    the shard process, then readmit the healthy replacement — while the
    load finishes green on the surviving shards and the ring returns to
    full strength."""

    plan = build_request_plan(mix="uniform", requests=12, seed=11)
    members = ["s0", "s1", "s2"]
    counts = owners_for(plan, members)
    victim = max(counts, key=lambda member: counts[member])
    assert counts[victim] > 0

    engine = PolicyEngine(
        rules=[WedgedShardRule(stall_seconds=1.5), RestartRule(after_seconds=0.5)]
    )
    with Fleet(
        shards=3,
        backend="process",
        batch_window_ms=10.0,
        # The watchdog would win the race at its default bound; park it so
        # any isolation observed here is attributable to the policy engine.
        stall_timeout=300.0,
        remediate=True,
        policy=engine,
        policy_interval=0.25,
    ) as fleet:
        fleet.suspend_shard(victim)
        report = run_load(
            fleet.host, fleet.port, plan, clients=4, check_oracle=True
        )
        # The engine acts asynchronously: wait for the full lifecycle to
        # land in the decision log (restart SIGCONTs and reaps the frozen
        # process itself — the test never resumes the victim).
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            actions = [(d.action, d.target) for d in fleet.decisions()]
            if ("readmit", victim) in actions:
                break
            time.sleep(0.1)
        stats = fleet.stats()
        decisions = fleet.decisions()

    # The load itself stayed green throughout.
    assert report.ok, report.invariant_violations or report.errors
    assert report.completed == len(plan)
    assert report.errors == {}
    assert report.transport_errors == 0

    # The policy engine — not the watchdog, not the test — ran the whole
    # lifecycle, in order, against the victim shard.
    lifecycle = [
        (d.action, d.target)
        for d in decisions
        if d.target == victim and d.action in ("quarantine", "restart", "readmit")
    ]
    assert lifecycle == [
        ("quarantine", victim),
        ("restart", victim),
        ("readmit", victim),
    ]
    rules = {d.action: d.rule for d in decisions if d.target == victim}
    assert rules["quarantine"] == "wedged-shard"
    assert rules["restart"] == "restart-shard"

    # Quarantine is attributed as a wedge, and the restarted replacement
    # rejoined: the ring is back to full strength with nothing lost.
    assert stats["router"]["wedged"] == 1
    assert victim not in stats["lost_shards"]
    assert sorted(stats["ring"]["members"]) == members


def test_killed_shard_does_not_lose_the_tier():
    """Answers a dead shard already published stay servable: the tier
    outlives its contributors."""

    plan = build_request_plan(mix="uniform", requests=6, seed=23)
    with Fleet(shards=2, backend="process", batch_window_ms=10.0) as fleet:
        first = run_load(fleet.host, fleet.port, plan, clients=2, check_oracle=True)
        assert first.ok and first.completed == len(plan)
        stored = fleet.stats()["tier"]["stored"]
        assert stored > 0
        fleet.kill_shard("s0")
        # Replay the identical plan: every unique key is already in the
        # tier, so the router answers without compiling anywhere.
        second = run_load(fleet.host, fleet.port, plan, clients=2, check_oracle=True)
        stats = fleet.stats()

    assert second.ok and second.completed == len(plan)
    assert second.tier_hit_responses == len(plan)
    assert stats["tier"]["stored"] == stored  # nothing recompiled or lost
    assert stats["ring"]["members"] == ["s1"]
