"""Load-generator tests: plan determinism, driver modes, invariant checking."""

from __future__ import annotations

import pytest

from repro.service.loadgen import (
    WARMUP_BURST,
    build_request_plan,
    oracle_results,
    plan_signature,
    render_load_report,
    run_load,
)


class TestPlanDeterminism:
    @pytest.mark.parametrize("mix", ("uniform", "hot", "mixed"))
    def test_same_seed_same_plan(self, mix):
        a = build_request_plan(mix=mix, requests=24, seed=5)
        b = build_request_plan(mix=mix, requests=24, seed=5)
        assert a == b

    def test_different_seed_different_plan(self):
        a = build_request_plan(mix="hot", requests=24, seed=1)
        b = build_request_plan(mix="hot", requests=24, seed=2)
        assert a != b

    def test_ids_are_sequential(self):
        plan = build_request_plan(mix="uniform", requests=5, seed=0)
        assert [m["id"] for m in plan] == ["q0", "q1", "q2", "q3", "q4"]

    def test_uniform_mix_has_no_duplicates(self):
        plan = build_request_plan(mix="uniform", requests=30, seed=0)
        signatures = [plan_signature(m) for m in plan]
        assert len(set(signatures)) == len(signatures)

    @pytest.mark.parametrize("mix", ("hot", "mixed"))
    def test_skewed_mixes_open_with_a_duplicate_burst(self, mix):
        plan = build_request_plan(mix=mix, requests=20, seed=0)
        head = {plan_signature(m) for m in plan[:WARMUP_BURST]}
        assert len(head) == 1  # the first requests are the same hot program
        signatures = [plan_signature(m) for m in plan]
        assert len(set(signatures)) < len(signatures)  # duplicates exist

    def test_every_plan_entry_is_protocol_valid(self):
        for mix in ("uniform", "hot", "mixed"):
            for message in build_request_plan(mix=mix, requests=12, seed=3):
                plan_signature(message)  # parse_compile_request under the hood

    def test_targets_cycle(self):
        plan = build_request_plan(
            mix="uniform", requests=6, seed=0, targets=("parisc", "tiny")
        )
        assert [m["target"] for m in plan] == ["parisc", "tiny"] * 3

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            build_request_plan(mix="bursty")
        with pytest.raises(ValueError):
            build_request_plan(requests=0)
        with pytest.raises(ValueError):
            build_request_plan(targets=())


class TestCatalogMix:
    def test_same_seed_same_plan(self):
        a = build_request_plan(mix="catalog", requests=24, seed=5)
        b = build_request_plan(mix="catalog", requests=24, seed=5)
        assert a == b

    def test_warmup_burst_is_a_pyfunc(self):
        """The duplicate burst opens on the catalog's first *pyfunc* entry —
        translated functions lead the mix by construction."""

        from repro.workloads.catalog import get_catalog

        first_pyfunc = get_catalog().names("pyfunc")[0]
        plan = build_request_plan(mix="catalog", requests=12, seed=0)
        head = {plan_signature(m) for m in plan[:WARMUP_BURST]}
        assert len(head) == 1
        for message in plan[:WARMUP_BURST]:
            assert message["program"]["catalog"] == f"catalog:{first_pyfunc}:0:0"

    def test_round_robin_covers_the_whole_catalog(self):
        from repro.workloads.catalog import get_catalog

        catalog = get_catalog()
        entries = catalog.names("pyfunc") + catalog.names("scenario")
        plan = build_request_plan(
            mix="catalog", requests=len(entries) + WARMUP_BURST, seed=0
        )
        names = {
            m["program"]["catalog"].split(":")[1] for m in plan
        }
        assert names == set(entries)

    def test_catalog_plan_entries_are_protocol_valid(self):
        for message in build_request_plan(mix="catalog", requests=10, seed=3):
            plan_signature(message)  # parse_compile_request under the hood

    def test_legacy_mixes_never_emit_catalog_references(self):
        """Adding the catalog mix must not perturb the existing plans."""

        for mix in ("uniform", "hot", "mixed"):
            for message in build_request_plan(mix=mix, requests=16, seed=1):
                assert "catalog" not in message["program"]
                assert "scenario" in message["program"]


class TestOracle:
    def test_oracle_computed_once_per_unique_signature(self):
        plan = build_request_plan(mix="hot", requests=12, seed=1)
        truth = oracle_results(plan)
        assert set(truth) == {plan_signature(m) for m in plan}


class TestDriving:
    def test_closed_loop_with_oracle_check(self, embedded_server, tmp_path):
        plan = build_request_plan(mix="mixed", requests=16, seed=7)
        with embedded_server(cache=str(tmp_path / "cache")) as emb:
            report = run_load(
                emb.host, emb.port, plan, mode="closed", clients=4, check_oracle=True
            )
        assert report.ok, report.invariant_violations
        assert report.completed == 16
        assert report.protocol_errors == 0
        assert report.server_stats is not None
        assert report.server_stats["requests"]["completed"] >= 16

    def test_open_loop_smoke(self, embedded_server):
        plan = build_request_plan(mix="uniform", requests=8, seed=2)
        with embedded_server() as emb:
            report = run_load(
                emb.host, emb.port, plan, mode="open", clients=2, rate=200.0
            )
        assert report.ok
        assert report.completed == 8
        assert report.throughput_rps > 0

    def test_cold_burst_coalesces(self, embedded_server):
        """The warmup burst + concurrent clients on a cold server must
        register at least one coalesced response (the CI smoke invariant)."""

        plan = build_request_plan(mix="hot", requests=12, seed=9)
        with embedded_server(batch_window_ms=60.0) as emb:
            report = run_load(emb.host, emb.port, plan, mode="closed", clients=4)
        assert report.ok
        server_coalesced = report.server_stats["requests"]["coalesced"]
        assert max(report.coalesced_responses, server_coalesced) > 0

    def test_render_report_mentions_the_essentials(self, embedded_server):
        plan = build_request_plan(mix="uniform", requests=4, seed=0)
        with embedded_server() as emb:
            report = run_load(emb.host, emb.port, plan, clients=2)
        text = render_load_report(report)
        assert "4/4 completed" in text
        assert "invariants      : all held" in text
        assert "protocol errors : 0" in text

    def test_report_json_summary_is_serializable(self, embedded_server):
        import json

        plan = build_request_plan(mix="uniform", requests=4, seed=0)
        with embedded_server() as emb:
            report = run_load(emb.host, emb.port, plan, clients=2)
        payload = report.to_json()
        json.dumps(payload)
        assert payload["completed"] == 4
        assert "latency_ms" in payload

    def test_invalid_driver_options_rejected(self):
        plan = build_request_plan(mix="uniform", requests=2, seed=0)
        with pytest.raises(ValueError):
            run_load("127.0.0.1", 1, plan, mode="sideways")
        with pytest.raises(ValueError):
            run_load("127.0.0.1", 1, plan, clients=0)
        with pytest.raises(ValueError):
            run_load("127.0.0.1", 1, plan, mode="open", rate=0.0)


class TestDrainingStatsRace:
    """The end-of-run stats fetch racing a draining/dying server.

    Regression for the fleet-era race: loadgen used to fail a whole green
    run with a timeout when the server drained between the last response
    and the final ``stats`` request.  Now the report carries the explicit
    :data:`~repro.service.loadgen.PARTIAL_STATS` marker instead.
    """

    @staticmethod
    def _draining_server():
        """A protocol-faithful server that dies on ``stats`` requests.

        Answers the handshake and every compile (with a fixed dummy
        result), but hangs up the moment telemetry is requested — exactly
        what a connection to a shard killed at end-of-run looks like.
        """

        import asyncio
        import threading

        from repro.service.protocol import (
            decode_message,
            encode_message,
            hello_message,
        )

        ready = threading.Event()
        state = {}

        def serve():
            async def handle(reader, writer):
                await reader.readline()  # client hello
                writer.write(encode_message(hello_message({"name": "fake"})))
                await writer.drain()
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    message = decode_message(line)
                    if message.get("type") == "stats":
                        break  # drain: connection drops mid-telemetry
                    writer.write(
                        encode_message(
                            {
                                "type": "result",
                                "id": message.get("id"),
                                "result": {"answer": 1},
                                "pass_seconds": {},
                                "service": {"cache": "miss"},
                            }
                        )
                    )
                    await writer.drain()
                writer.close()

            async def main():
                server = await asyncio.start_server(handle, "127.0.0.1", 0)
                state["port"] = server.sockets[0].getsockname()[1]
                state["loop"] = asyncio.get_running_loop()
                state["stop"] = asyncio.Event()
                ready.set()
                await state["stop"].wait()
                server.close()
                await server.wait_closed()

            asyncio.run(main())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert ready.wait(10.0)
        return state, thread

    def test_partial_stats_marker_instead_of_timeout(self):
        import time

        from repro.service.loadgen import PARTIAL_STATS

        state, thread = self._draining_server()
        try:
            plan = build_request_plan(mix="uniform", requests=6, seed=4)
            started = time.monotonic()
            report = run_load(
                "127.0.0.1", state["port"], plan, clients=2, timeout=30.0
            )
            elapsed = time.monotonic() - started
        finally:
            state["loop"].call_soon_threadsafe(state["stop"].set)
            thread.join(10.0)

        # The run itself is green and the stats are explicitly partial —
        # not a timeout error, not a missing field, and not a stall.
        assert report.ok, report.invariant_violations
        assert report.completed == len(plan)
        assert report.server_stats == PARTIAL_STATS
        assert report.server_stats["draining"] is True
        assert elapsed < 15.0

    def test_render_report_marks_partial_stats(self):
        state, thread = self._draining_server()
        try:
            plan = build_request_plan(mix="uniform", requests=4, seed=4)
            report = run_load(
                "127.0.0.1", state["port"], plan, clients=2, timeout=30.0
            )
        finally:
            state["loop"].call_soon_threadsafe(state["stop"].set)
            thread.join(10.0)
        text = render_load_report(report)
        assert "stats partial" in text
        assert "draining" in text
