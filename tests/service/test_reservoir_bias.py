"""Regression pins for the reservoir-histogram tail bias (and its fix).

``LatencyHistogram`` keeps samples verbatim until ``MAX_SAMPLES`` and then
decimates to an arrival-order strided subsample.  For time-correlated
latency that subsample is *not* representative: whether a burst survives
decimation depends on which arrival phase it lands on, so two streams
with the identical multiset of values can report p99s an entire burst
apart.  The bias is documented and gated — cumulative lifetime stats
tolerate it — and the windowed health path in :mod:`repro.service.health`
uses fixed-bucket counts instead, whose quantiles are exact up to bucket
resolution regardless of volume or arrival order.  These tests pin both
behaviours deterministically (the histogram has no randomness).
"""

from __future__ import annotations

import math

from repro.service.health import (
    LATENCY_BUCKET_BOUNDS_MS,
    bucketed_quantile,
    latency_bucket_bound,
    latency_bucket_index,
)
from repro.service.metrics import MAX_SAMPLES, LatencyHistogram

FAST_MS = 1.0
SLOW_MS = 800.0
BURST = 1400  # slow samples: ~2% of the stream, so they own the true p99


def exact_nearest_rank(values, percent):
    """The percentile the reservoir *would* report with every sample kept."""

    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(percent / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def record_all(stream):
    histogram = LatencyHistogram()
    for value in stream:
        histogram.record(value)
    return histogram


def burst_stream(slow_phase):
    """``MAX_SAMPLES`` of warmup, then a burst interleaved 1:1 with fast
    traffic.  ``slow_phase`` picks which arrival offset the slow samples
    occupy — the multiset of values is identical either way."""

    pair = [FAST_MS, SLOW_MS] if slow_phase == "even" else [SLOW_MS, FAST_MS]
    return [FAST_MS] * MAX_SAMPLES + pair * BURST


class TestReservoirBias:
    def test_reservoir_is_verbatim_below_max_samples(self):
        stream = [FAST_MS] * 5000 + [SLOW_MS] * 80
        histogram = record_all(stream)
        assert histogram._stride == 1
        assert len(histogram._samples) == len(stream)
        for percent in (50.0, 95.0, 99.0, 100.0):
            assert histogram.percentile(percent) == exact_nearest_rank(
                stream, percent
            )

    def test_decimated_p99_depends_on_arrival_phase(self):
        """The documented bias: after decimation only every second arrival
        is kept, so a burst landing on the dropped phase vanishes from the
        reservoir entirely while the same burst on the kept phase survives
        in full — p99 flips between the two regimes."""

        dropped = record_all(burst_stream("even"))
        kept = record_all(burst_stream("odd"))
        assert dropped._stride == 2 and kept._stride == 2
        assert exact_nearest_rank(burst_stream("even"), 99.0) == SLOW_MS

        # Same multiset of values, two different answers — the dropped
        # phase misses the burst by three orders of magnitude.
        assert dropped.percentile(99.0) == FAST_MS
        assert kept.percentile(99.0) == SLOW_MS
        assert sum(1 for s in dropped._samples if s == SLOW_MS) == 0
        assert sum(1 for s in kept._samples if s == SLOW_MS) == BURST

    def test_decimation_keeps_count_sum_min_max_exact(self):
        """The gate: only percentiles are approximate — the scalar stats
        the service reports alongside them never degrade."""

        stream = burst_stream("even")
        histogram = record_all(stream)
        assert histogram.count == len(stream)
        assert histogram.minimum == FAST_MS
        assert histogram.maximum == SLOW_MS
        assert histogram.mean == sum(stream) / len(stream)
        assert len(histogram._samples) < histogram.count

    def test_windowed_fixed_buckets_are_phase_invariant(self):
        """The fix: the health path counts into fixed buckets, so the same
        multiset produces the same quantile no matter the arrival order,
        and it equals the bucket bound of the true nearest-rank sample."""

        quantiles = []
        for phase in ("even", "odd"):
            stream = burst_stream(phase)
            counts = [0] * (len(LATENCY_BUCKET_BOUNDS_MS) + 1)
            for value in stream:
                counts[latency_bucket_index(value)] += 1
            quantiles.append(bucketed_quantile(counts, 99.0))
        assert quantiles[0] == quantiles[1]

        stream = burst_stream("even")
        ordered = sorted(
            latency_bucket_bound(latency_bucket_index(v)) for v in stream
        )
        rank = max(1, math.ceil(99.0 * len(ordered) / 100.0))
        assert quantiles[0] == ordered[rank - 1]
        assert quantiles[0] == latency_bucket_bound(latency_bucket_index(SLOW_MS))
