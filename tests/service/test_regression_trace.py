"""Pinned loadgen interleaving: scheduler/coalescing behaviour by seed.

``traces/hot_coalesce.jsonl`` is the exact request sequence
``build_request_plan(mix="hot", requests=12, seed=42)`` produced when this
subsystem was built — 12 requests over 4 unique programs, duplicate-burst
first.  Mirroring the PR-4 corpus pattern, the trace is pinned as a *file*
so the interleaving stays fixed forever, independent of the load
generator that originally produced it.

Replayed under a controlled schedule (every request admitted before the
batch window closes), the server's behaviour is fully deterministic:

* exactly ``unique`` procedures compile, in exactly one batch;
* exactly ``total - unique`` requests coalesce onto in-flight entries;
* every response is byte-identical to the serial ``compile_many`` oracle.
"""

from __future__ import annotations

import asyncio
import json
import os

from repro.service.loadgen import _PipelinedClient, build_request_plan
from repro.service.protocol import parse_compile_request, response_result_bytes
from tests.service.conftest import oracle_result_bytes

TRACE_PATH = os.path.join(os.path.dirname(__file__), "traces", "hot_coalesce.jsonl")


def load_trace():
    """The pinned request sequence, one JSON message per line."""

    with open(TRACE_PATH, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def test_trace_is_what_the_seeded_plan_still_generates():
    """The generator still reproduces the pinned interleaving bit for bit —
    the loadgen determinism contract (same seed ⇒ same plan, forever)."""

    trace = load_trace()
    regenerated = build_request_plan(mix="hot", requests=12, seed=42)
    assert regenerated == trace


def test_trace_replay_coalesces_deterministically(embedded_server):
    trace = load_trace()
    signatures = [parse_compile_request(m).signature() for m in trace]
    unique = len(set(signatures))
    assert unique < len(trace)  # the fixture must contain duplicates

    # A window long enough that the whole trace is admitted before the
    # first dispatch, and a batch bound that fits every unique entry:
    # under this schedule the coalescing outcome is exact, not
    # probabilistic.
    with embedded_server(batch_window_ms=500.0, batch_max_requests=32) as emb:

        async def replay():
            # Two pipelined connections (id-demultiplexed): every request
            # is on the wire before any response is awaited, so the whole
            # trace is admitted within the batch window.
            connections = [
                await _PipelinedClient.connect(emb.host, emb.port, timeout=60.0)
                for _ in range(2)
            ]
            try:
                tasks = [
                    asyncio.ensure_future(
                        connections[position % len(connections)].request(
                            message, timeout=60.0
                        )
                    )
                    for position, message in enumerate(trace)
                ]
                return await asyncio.gather(*tasks)
            finally:
                for connection in connections:
                    await connection.close()

        responses = asyncio.run(replay())
        stats = emb.stats()

    # Exact, schedule-independent outcome.
    assert stats["requests"]["compiled"] == unique
    assert stats["requests"]["coalesced"] == len(trace) - unique
    assert stats["batches"]["dispatched"] == 1
    assert stats["batches"]["max_size"] == unique
    assert stats["requests"]["errors"] == 0

    # Every fan-out copy matches the serial oracle bytes.
    truth = {
        signature: oracle_result_bytes(message)
        for signature, message in zip(signatures, trace)
    }
    for signature, response in zip(signatures, responses):
        assert response["type"] == "result"
        assert response_result_bytes(response) == truth[signature]
