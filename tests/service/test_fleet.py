"""The multi-shard fleet, end to end on the thread backend.

Covers the tentpole's functional contract without process faults (those
live in ``test_fleet_faults.py``): ring-affine routing, the shared cache
tier turning one shard's compile into fleet-wide hits, byte-identity
against the serial ``compile_many`` oracle, the shard-side peer path,
aggregate stats, and graceful drain.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.pipeline.compiler import compile_many
from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.fleet import Fleet
from repro.service.peering import SharedCacheTier, serve_peering_connection
from repro.service.protocol import (
    parse_compile_request,
    resolve_compile_request,
    response_result_bytes,
    result_payload,
)
from repro.service.ring import HashRing
from tests.service.test_serving_properties import make_mix, serial_oracle, serve_mix


def scenario_message(request_id: str, spec: str, target: str = "parisc"):
    """One scenario-registry compile message."""

    return {
        "type": "compile",
        "id": request_id,
        "program": {"scenario": spec},
        "target": target,
    }


@pytest.fixture(scope="module")
def fleet():
    """A 3-shard thread-backend fleet shared by the tests in this module."""

    with Fleet(shards=3, backend="thread", batch_window_ms=5.0) as running:
        yield running


def test_fleet_stats_shape(fleet):
    stats = fleet.stats()
    assert stats["schema"] == "fleet-stats/v1"
    assert stats["draining"] is False
    assert stats["ring"]["members"] == ["s0", "s1", "s2"]
    assert sum(stats["ring"]["points"].values()) == 3 * 64
    assert stats["lost_shards"] == {}
    assert {shard["id"] for shard in stats["shards"]} == {"s0", "s1", "s2"}
    for shard in stats["shards"]:
        assert shard["healthy"] is True
        assert shard["status"] == "ok"
        assert shard["stats"]["schema"] == "service-stats/v1"
    assert "tier" in stats and "router" in stats


def test_routing_follows_the_ring(fleet):
    """Every response is served by exactly the shard the public ring
    assigns to the request's cache key — pinned placement, not luck."""

    ring = HashRing(["s0", "s1", "s2"])
    messages = [
        scenario_message(f"r{i}", f"scenario:switch_dispatch:{100 + i}:0")
        for i in range(6)
    ]
    with ServiceClient(port=fleet.port, timeout=120.0) as client:
        for message in messages:
            expected = ring.route(
                resolve_compile_request(parse_compile_request(message)).cache_key
            )
            response = client.send_compile_message(message)
            assert response["type"] == "result"
            assert response["service"]["shard"] == expected


def test_repeat_request_is_a_tier_hit_not_a_recompile(fleet):
    """One shard's compile populates the shared tier; the identical
    request asked again — even from a different client — answers from the
    tier with byte-identical results and no second compile."""

    message = scenario_message("t0", "scenario:deep_loop_nest:55:1", target="tiny")
    before = fleet.stats()["tier"]["stored"]
    with ServiceClient(port=fleet.port, timeout=120.0) as client:
        first = client.send_compile_message(message)
    with ServiceClient(port=fleet.port, timeout=120.0) as client:
        second = client.send_compile_message(dict(message, id="t1"))
    assert first["type"] == second["type"] == "result"
    assert first["service"]["cache"] in ("miss", "hit")
    assert second["service"]["cache"] == "tier"
    assert "shard" not in second["service"]  # answered by the router itself
    assert response_result_bytes(first) == response_result_bytes(second)
    assert fleet.stats()["tier"]["stored"] == before + 1


def test_fleet_matches_serial_oracle_with_single_compile(fleet):
    """The tentpole invariant: a concurrent mix served by the fleet is
    byte-identical to serial ``compile_many``, and the fleet as a whole
    compiles each unique key at most once."""

    messages = make_mix(seed=1302, size=8, duplicates=6)
    truth = serial_oracle(messages)
    compiled_before = sum(
        shard["stats"]["requests"]["compiled"] for shard in fleet.stats()["shards"]
    )
    served = asyncio.run(serve_mix(fleet.port, messages, clients=4))
    assert len(served) == len(messages)
    for message, response in served:
        signature = parse_compile_request(message).signature()
        assert response["type"] == "result", response
        assert response_result_bytes(response) == truth[signature]
    stats = fleet.stats()
    compiled = (
        sum(shard["stats"]["requests"]["compiled"] for shard in stats["shards"])
        - compiled_before
    )
    unique = len({parse_compile_request(m).signature() for m in messages})
    assert compiled <= unique
    assert stats["router"]["errors"] == 0
    assert stats["router"]["shard_deaths"] == 0


def test_attach_duplicate_shard_id_rejected(fleet):
    with pytest.raises(Exception) as excinfo:
        fleet._call(fleet.router.attach_shard("s0", fleet.host, 1))
    assert "already attached" in str(excinfo.value)


def test_bad_request_is_answered_not_fatal(fleet):
    with ServiceClient(port=fleet.port, timeout=30.0) as client:
        response = client._roundtrip(
            {"type": "compile", "id": "bad", "program": {}}
        )
    assert response["type"] == "error"
    # The fleet keeps serving afterwards.
    with ServiceClient(port=fleet.port, timeout=120.0) as client:
        ok = client.send_compile_message(
            scenario_message("after-bad", "scenario:switch_dispatch:77:0")
        )
    assert ok["type"] == "result"


def test_single_shard_fleet_round_trips():
    with Fleet(shards=1, backend="thread", batch_window_ms=5.0) as fleet:
        message = scenario_message("solo", "scenario:switch_dispatch:9:0")
        with ServiceClient(port=fleet.port, timeout=120.0) as client:
            response = client.send_compile_message(message)
        assert response["type"] == "result"
        assert response["service"]["shard"] == "s0"
        stats = fleet.stats()
        assert stats["ring"]["members"] == ["s0"]


def test_drain_is_graceful_and_idempotent():
    with Fleet(shards=2, backend="thread", batch_window_ms=5.0) as fleet:
        with ServiceClient(port=fleet.port, timeout=120.0) as client:
            response = client.send_compile_message(
                scenario_message("d0", "scenario:switch_dispatch:13:0")
            )
        assert response["type"] == "result"
        port = fleet.port
        fleet.stop()
        fleet.stop()  # idempotent
        # The client port is closed after the drain.
        with pytest.raises(OSError):
            ServiceClient(port=port, timeout=2.0)


def test_shard_peer_path_answers_from_a_prepopulated_tier(tmp_path):
    """The shard-side peer client, deterministically: an embedded server
    pointed at a tier that already holds the key answers with
    ``cache_status == "peer"`` and the exact oracle bytes — no compile."""

    from repro.service.embedded import EmbeddedServer

    message = scenario_message("p0", "scenario:switch_dispatch:21:1", target="micro")
    resolved = resolve_compile_request(parse_compile_request(message))
    compiled = compile_many(
        [(resolved.function, resolved.profile)],
        machine=resolved.request.target,
        cost_model=resolved.request.cost_model,
        techniques=list(resolved.request.techniques),
        verify=True,
    )[0]
    payload = result_payload(resolved, compiled)
    truth = json.dumps(payload, sort_keys=True).encode("utf-8")

    import threading

    ready = threading.Event()
    state = {}

    def tier_thread():
        async def main():
            tier = SharedCacheTier()
            tier.put(resolved.cache_key, {"result": payload, "pass_seconds": {}})
            server = await asyncio.start_server(
                lambda r, w: serve_peering_connection(tier, r, w), "127.0.0.1", 0
            )
            state["tier"] = tier
            state["port"] = server.sockets[0].getsockname()[1]
            state["loop"] = asyncio.get_running_loop()
            state["stop"] = asyncio.Event()
            ready.set()
            await state["stop"].wait()
            server.close()
            await server.wait_closed()

        asyncio.run(main())

    worker = threading.Thread(target=tier_thread, daemon=True)
    worker.start()
    assert ready.wait(10.0)
    try:
        with EmbeddedServer(peer=f"127.0.0.1:{state['port']}") as emb:
            with ServiceClient(port=emb.port, timeout=120.0) as client:
                response = client.send_compile_message(message)
            stats = emb.stats()
    finally:
        state["loop"].call_soon_threadsafe(state["stop"].set)
        worker.join(10.0)

    assert response["type"] == "result"
    assert response["service"]["cache"] == "peer"
    assert response_result_bytes(response) == truth
    assert stats["requests"]["peer_hits"] == 1
    assert stats["requests"]["compiled"] == 0
    assert stats["peer"]["connected"] is True
    assert state["tier"].snapshot()["hits"] == 1
