"""The consistent-hash ring: determinism, balance, and minimal rebalance.

The fleet's "one compile per coalesced key" guarantee is compositional:
the ring gives per-key shard affinity, the shard gives per-key
coalescing.  That makes the ring's determinism a correctness property,
not a performance nicety — these tests pin it.
"""

from __future__ import annotations

import collections

import pytest

from repro.service.ring import DEFAULT_VNODES, HashRing


def test_route_is_deterministic_across_instances():
    """Two rings with the same members agree on every key — the property
    that lets a pinned trace assert shard placement forever."""

    members = ["s0", "s1", "s2", "s3"]
    first = HashRing(members)
    second = HashRing(list(reversed(members)))  # insertion order must not matter
    for index in range(200):
        key = f"key-{index}"
        assert first.route(key) == second.route(key)
        assert first.route_order(key) == second.route_order(key)


def test_route_distribution_is_roughly_balanced():
    ring = HashRing(["s0", "s1", "s2"])
    counts = collections.Counter(ring.route(f"key-{i}") for i in range(3000))
    assert set(counts) == {"s0", "s1", "s2"}
    for member, count in counts.items():
        # Virtual nodes keep the imbalance well within 2x of fair share.
        assert 3000 / 3 / 2 < count < 3000 / 3 * 2, (member, count)


def test_remove_only_moves_the_dead_members_keys():
    """Minimal disruption: keys owned by survivors never move on a death."""

    ring = HashRing(["s0", "s1", "s2", "s3"])
    keys = [f"key-{i}" for i in range(1000)]
    before = {key: ring.route(key) for key in keys}
    ring.remove("s2")
    for key in keys:
        after = ring.route(key)
        if before[key] != "s2":
            assert after == before[key]
        else:
            assert after != "s2"


def test_dead_members_keys_move_to_their_failover_successor():
    """The new owner after a death is exactly ``route_order[1]`` from
    before it — so the router's failover walk and the post-death ring
    agree on where a key lands."""

    ring = HashRing(["s0", "s1", "s2"])
    keys = [f"key-{i}" for i in range(300)]
    orders = {key: ring.route_order(key) for key in keys}
    ring.remove("s1")
    for key in keys:
        if orders[key][0] == "s1":
            assert ring.route(key) == orders[key][1]


def test_route_order_is_owner_first_and_distinct():
    ring = HashRing(["s0", "s1", "s2", "s3"])
    for index in range(100):
        key = f"key-{index}"
        order = ring.route_order(key)
        assert order[0] == ring.route(key)
        assert sorted(order) == sorted(ring.members)
        assert len(order) == len(set(order))


def test_route_order_count_truncates():
    ring = HashRing(["s0", "s1", "s2"])
    assert len(ring.route_order("k", count=2)) == 2
    assert ring.route_order("k", count=0) == []
    assert ring.route_order("k", count=99) == ring.route_order("k")


def test_membership_operations_are_idempotent():
    ring = HashRing()
    ring.add("s0")
    ring.add("s0")
    assert len(ring) == 1
    assert ring.describe() == {"s0": DEFAULT_VNODES}
    ring.remove("missing")  # no-op
    ring.remove("s0")
    ring.remove("s0")
    assert len(ring) == 0
    assert "s0" not in ring


def test_empty_ring_raises_on_route_and_returns_no_order():
    ring = HashRing()
    with pytest.raises(LookupError):
        ring.route("key")
    assert ring.route_order("key") == []


def test_invalid_construction_rejected():
    with pytest.raises(ValueError):
        HashRing(vnodes=0)
    with pytest.raises(ValueError):
        HashRing().add("")


def test_describe_counts_sum_to_members_times_vnodes():
    ring = HashRing(["s0", "s1"], vnodes=16)
    described = ring.describe()
    assert sum(described.values()) == 2 * 16
    assert set(described) == {"s0", "s1"}
