"""Property tests: the rolling-window estimator vs brute-force recomputation.

The estimator's documented contract: a window of ``W`` seconds evaluated
at time ``now`` covers exactly the buckets with index in
``[floor(now/bs) - span + 1, floor(now/bs)]`` where
``span = max(1, round(W/bs))``, and a windowed quantile equals the fixed
bucket bound of the true nearest-rank sample among the covered events.
Hypothesis draws whole event streams (counter increments, latency samples
and gauge readings at arbitrary injected-clock times) and the brute-force
oracle recomputes every aggregate from the raw events.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.health import (
    LATENCY_BUCKET_BOUNDS_MS,
    HealthMonitor,
    RollingWindow,
    bucketed_quantile,
    latency_bucket_bound,
    latency_bucket_index,
)

BUCKET_SECONDS = 1.0
CAPACITY_SECONDS = 120.0

#: One event: (time, kind, value).
events_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=90.0, allow_nan=False, allow_infinity=False),
        st.sampled_from(["count", "latency", "gauge"]),
        st.floats(min_value=0.0, max_value=30000.0, allow_nan=False, allow_infinity=False),
    ),
    min_size=0,
    max_size=60,
)

window_seconds_strategy = st.sampled_from([1.0, 3.0, 10.0, 30.0, 60.0])


def covered(event_time: float, now: float, window_seconds: float) -> bool:
    """Brute-force membership: is the event's bucket inside the window?"""

    span = max(1, round(window_seconds / BUCKET_SECONDS))
    current = math.floor(now / BUCKET_SECONDS)
    index = math.floor(event_time / BUCKET_SECONDS)
    return current - span + 1 <= index <= current


def brute_force_quantile(values, percent: float) -> float:
    """Nearest-rank quantile over raw values, reported at bucket resolution."""

    if not values:
        return 0.0
    ordered = sorted(latency_bucket_bound(latency_bucket_index(v)) for v in values)
    rank = max(1, math.ceil(percent * len(ordered) / 100.0))
    return ordered[rank - 1]


@settings(deadline=None, max_examples=80)
@given(events=events_strategy, window_seconds=window_seconds_strategy)
def test_window_aggregate_matches_brute_force(events, window_seconds):
    events = sorted(events, key=lambda event: event[0])
    window = RollingWindow(
        bucket_seconds=BUCKET_SECONDS, capacity_seconds=CAPACITY_SECONDS
    )
    for t, kind, value in events:
        if kind == "count":
            window.increment("received", 1.0, now=t)
        elif kind == "latency":
            window.observe_latency(value, now=t)
        else:
            window.observe_gauge("queue_depth", value, now=t)
    now = events[-1][0] if events else 0.0
    aggregate = window.aggregate(window_seconds, now=now)

    in_window = [e for e in events if covered(e[0], now, window_seconds)]
    expected_counts = sum(1 for e in in_window if e[1] == "count")
    latencies = [e[2] for e in in_window if e[1] == "latency"]
    gauges = [e[2] for e in in_window if e[1] == "gauge"]

    assert aggregate.counts.get("received", 0.0) == expected_counts
    assert aggregate.latency_count == len(latencies)
    for percent in (50.0, 90.0, 95.0, 99.0, 100.0):
        assert aggregate.quantile(percent) == brute_force_quantile(latencies, percent)
    if gauges:
        assert aggregate.gauges["queue_depth"] == max(gauges)
    else:
        assert "queue_depth" not in aggregate.gauges
    # The rate is exactly count / configured window length.
    assert aggregate.rate("received") == expected_counts / window_seconds


@settings(deadline=None, max_examples=80)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=50000.0, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=200,
    ),
    percent=st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
)
def test_bucketed_quantile_equals_nearest_rank_at_bucket_resolution(values, percent):
    counts = [0] * (len(LATENCY_BUCKET_BOUNDS_MS) + 1)
    for value in values:
        counts[latency_bucket_index(value)] += 1
    assert bucketed_quantile(counts, percent) == brute_force_quantile(values, percent)


@settings(deadline=None, max_examples=40)
@given(
    feeds=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),  # dt between feeds
            st.integers(min_value=0, max_value=50),  # received delta
            st.integers(min_value=0, max_value=50),  # completed delta
        ),
        min_size=1,
        max_size=30,
    )
)
def test_monitor_delta_feed_totals_match_brute_force(feeds):
    """Cumulative counters delta-fed at arbitrary times: the windowed sum
    equals the brute-force sum of the deltas landing inside the window."""

    class Clock:
        t = 0.0

        def __call__(self):
            return self.t

    clock = Clock()
    monitor = HealthMonitor(
        counters=("received", "completed"),
        windows=(("fast", 10.0), ("slow", 60.0)),
        clock=clock,
    )
    cumulative_received = 0
    cumulative_completed = 0
    raw = []  # (t, received_delta, completed_delta)
    for dt, d_received, d_completed in feeds:
        clock.t += dt
        cumulative_received += d_received
        cumulative_completed += d_completed
        raw.append((clock.t, d_received, d_completed))
        monitor.feed_counters(
            {"received": cumulative_received, "completed": cumulative_completed}
        )
    sample = monitor.sample()
    for label, seconds in (("fast", 10.0), ("slow", 60.0)):
        expected_received = sum(
            d for t, d, _ in raw if covered(t, clock.t, seconds)
        )
        expected_completed = sum(
            d for t, _, d in raw if covered(t, clock.t, seconds)
        )
        counts = sample["windows"][label]["counts"]
        assert counts["received"] == expected_received
        assert counts["completed"] == expected_completed
