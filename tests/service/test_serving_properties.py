"""The serving-correctness property: served ≡ direct ``compile_many``.

The ISSUE's core invariant, tested end to end: N concurrent clients
submitting a seeded, shuffled mix of scenario-registry programs — with
forced duplicate submissions and warm-cache replays — must receive
responses whose ``result`` payloads are **byte-identical** to a serial
:func:`~repro.pipeline.compiler.compile_many` oracle over the same
(program, target, techniques, profile) inputs.
"""

from __future__ import annotations

import asyncio
import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.pipeline.compiler import compile_many
from repro.service.client import AsyncServiceClient
from repro.service.protocol import (
    parse_compile_request,
    resolve_compile_request,
    response_result_bytes,
    result_payload,
)
from repro.workloads.scenarios import scenario_names

#: The request space the property draws from (kept small enough that one
#: hypothesis example stays fast, varied enough to cross scenario families,
#: targets, technique subsets and cost models).
TARGETS = ("parisc", "tiny", "micro")
MODELS = ("jump_edge", "execution_count")
TECHNIQUE_CHOICES = (
    ("baseline", "shrinkwrap", "optimized"),
    ("baseline", "optimized"),
    ("baseline",),
)


def make_mix(seed: int, size: int, duplicates: int):
    """A seeded, shuffled request mix with ``duplicates`` forced repeats."""

    rng = random.Random(f"serving-property/{seed}")
    families = scenario_names()
    messages = []
    for position in range(size):
        family = rng.choice(families)
        messages.append(
            {
                "type": "compile",
                "id": f"m{position}",
                "program": {
                    "scenario": f"scenario:{family}:{seed}:{rng.randrange(3)}"
                },
                "target": rng.choice(TARGETS),
                "cost_model": rng.choice(MODELS),
                "techniques": list(rng.choice(TECHNIQUE_CHOICES)),
            }
        )
    # Forced coalescing pressure: duplicate existing entries verbatim
    # (fresh ids), then shuffle the whole plan.
    for copy in range(duplicates):
        original = rng.choice(messages)
        messages.append(dict(original, id=f"d{copy}"))
    rng.shuffle(messages)
    return messages


def serial_oracle(messages):
    """signature -> canonical result bytes, via one serial compile_many batch.

    Groups by compile options exactly the way the server's dispatcher does,
    then runs each group through a *serial, uncached* ``compile_many`` —
    the ground truth the server must reproduce bit for bit.
    """

    resolved = {}
    for message in messages:
        request = parse_compile_request(message)
        signature = request.signature()
        if signature not in resolved:
            resolved[signature] = resolve_compile_request(request)

    groups = {}
    for signature, item in resolved.items():
        groups.setdefault(item.options_key, []).append((signature, item))

    truth = {}
    for (target, cost_model, techniques, _cache), items in groups.items():
        compiled = compile_many(
            [(item.function, item.profile) for _sig, item in items],
            machine=target,
            cost_model=cost_model,
            techniques=list(techniques),
            verify=True,
        )
        for (signature, item), one in zip(items, compiled):
            truth[signature] = json.dumps(
                result_payload(item, one), sort_keys=True
            ).encode("utf-8")
    return truth


async def serve_mix(port: int, messages, clients: int):
    """Submit the mix from ``clients`` concurrent connections; gather responses."""

    connections = [
        await AsyncServiceClient.connect(port=port) for _ in range(clients)
    ]
    try:
        cursor = 0

        async def worker(connection):
            nonlocal cursor
            mine = []
            while cursor < len(messages):
                message = messages[cursor]
                cursor += 1
                mine.append((message, await connection.send_compile_message(message)))
            return mine

        nested = await asyncio.gather(*(worker(c) for c in connections))
        return [pair for chunk in nested for pair in chunk]
    finally:
        for connection in connections:
            await connection.close()


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_concurrent_serving_matches_serial_compile_many(seed, tmp_path_factory):
    """N concurrent clients, shuffled mix, duplicates, warm replays — all
    byte-identical to the serial oracle."""

    from repro.service.embedded import EmbeddedServer

    messages = make_mix(seed, size=8, duplicates=4)
    truth = serial_oracle(messages)
    cache_dir = str(tmp_path_factory.mktemp("serving-cache"))

    with EmbeddedServer(
        cache=cache_dir, batch_window_ms=40.0, batch_max_requests=8
    ) as emb:
        served = asyncio.run(serve_mix(emb.port, messages, clients=4))
        # Warm replay: the same mix again — now largely cache hits — must
        # still answer identically.
        replayed = asyncio.run(serve_mix(emb.port, messages, clients=2))
        stats = emb.stats()

    assert len(served) == len(messages)
    for message, response in served + replayed:
        signature = parse_compile_request(message).signature()
        assert response["type"] == "result", response
        assert response_result_bytes(response) == truth[signature]

    # The warm pass really exercised the cache front.
    assert stats["requests"]["cache_hits"] > 0
    assert stats["requests"]["errors"] == 0
    assert stats["requests"]["protocol_errors"] == 0


def test_forced_duplicate_burst_coalesces_and_matches(embedded_server):
    """Duplicates submitted before the window closes coalesce to one
    compile, and every fan-out copy matches the oracle bytes."""

    message = {
        "type": "compile",
        "id": "b0",
        "program": {"scenario": "scenario:switch_dispatch:11:0"},
        "target": "parisc",
    }
    duplicates = 6
    truth = serial_oracle([message])[parse_compile_request(message).signature()]

    with embedded_server(batch_window_ms=200.0, batch_max_requests=4) as emb:

        async def burst():
            connections = [
                await AsyncServiceClient.connect(port=emb.port)
                for _ in range(duplicates)
            ]
            try:
                return await asyncio.gather(
                    *(
                        c.send_compile_message(dict(message, id=f"b{i}"))
                        for i, c in enumerate(connections)
                    )
                )
            finally:
                for c in connections:
                    await c.close()

        responses = asyncio.run(burst())
        stats = emb.stats()

    assert all(response_result_bytes(r) == truth for r in responses)
    assert stats["requests"]["compiled"] == 1
    assert stats["requests"]["coalesced"] == duplicates - 1


@pytest.mark.parametrize("target", ("parisc", "tiny"))
def test_served_equals_direct_for_corpus_programs(embedded_server, target):
    """The PR-4 regression corpus, served: byte-identical to the oracle."""

    import os

    from tests.service.conftest import oracle_result_bytes

    corpus_dir = os.path.join(
        os.path.dirname(os.path.dirname(__file__)), "workloads", "corpus"
    )
    fixtures = sorted(n for n in os.listdir(corpus_dir) if n.endswith(".ir"))
    assert fixtures
    with embedded_server() as emb:
        from repro.service.client import ServiceClient

        with ServiceClient(port=emb.port) as client:
            for name in fixtures:
                with open(os.path.join(corpus_dir, name), encoding="utf-8") as handle:
                    text = handle.read()
                message = {
                    "type": "compile",
                    "id": name,
                    "program": {"ir": text},
                    "target": target,
                }
                response = client.send_compile_message(message)
                assert response_result_bytes(response) == oracle_result_bytes(message)


@settings(max_examples=3, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    shards=st.integers(min_value=2, max_value=4),
)
def test_fleet_serving_matches_serial_compile_many(seed, shards):
    """The fleet-wide property: any seeded mix served by any 2–4 shard
    fleet is byte-identical to the serial oracle, and no key is compiled
    more than once across the whole fleet."""

    from repro.service.fleet import Fleet

    messages = make_mix(seed, size=6, duplicates=4)
    truth = serial_oracle(messages)

    with Fleet(shards=shards, backend="thread", batch_window_ms=5.0) as fleet:
        served = asyncio.run(serve_mix(fleet.port, messages, clients=3))
        stats = fleet.stats()

    assert len(served) == len(messages)
    for message, response in served:
        signature = parse_compile_request(message).signature()
        assert response["type"] == "result", response
        assert response_result_bytes(response) == truth[signature]

    # Per-key compile count ≤ 1 fleet-wide: ring affinity + shard-local
    # coalescing + the synchronous tier publish, composed.
    compiled = sum(
        shard["stats"]["requests"]["compiled"] for shard in stats["shards"]
    )
    unique = len({parse_compile_request(m).signature() for m in messages})
    assert compiled <= unique
    assert stats["router"]["errors"] == 0
    assert stats["router"]["shard_deaths"] == 0
    assert stats["router"]["protocol_errors"] == 0
