"""Protocol-layer tests: framing, strict validation, resolution, payloads."""

from __future__ import annotations

import json

import pytest

from repro.ir.fingerprint import fingerprint_function
from repro.service.protocol import (
    PROTOCOL_VERSION,
    CompileRequest,
    ProtocolError,
    decode_message,
    encode_message,
    error_message,
    hello_message,
    parse_compile_request,
    parse_hello,
    resolve_compile_request,
)


def compile_message(**overrides):
    """A valid baseline compile message, with overrides."""

    message = {
        "type": "compile",
        "id": "r1",
        "program": {"scenario": "scenario:call_web:0:0"},
    }
    message.update(overrides)
    return message


class TestFraming:
    def test_encode_decode_round_trip(self):
        message = compile_message()
        assert decode_message(encode_message(message)) == message

    def test_encoding_is_key_sorted_and_stable(self):
        a = encode_message({"b": 1, "a": 2})
        b = encode_message({"a": 2, "b": 1})
        assert a == b
        assert a.endswith(b"\n")

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(b"[1, 2, 3]\n")

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(b"{nope\n")


class TestHello:
    def test_hello_round_trip(self):
        assert parse_hello(hello_message()) == PROTOCOL_VERSION

    def test_hello_with_server_info(self):
        message = hello_message(server_info={"max_queue": 4})
        assert message["server"] == {"max_queue": 4}

    def test_non_integer_version_rejected_with_protocol_code(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_hello({"type": "hello", "protocol": "1"})
        assert excinfo.value.code == "protocol"

    def test_error_message_shape(self):
        message = error_message("overloaded", "full", request_id="r9")
        assert message == {
            "type": "error",
            "code": "overloaded",
            "message": "full",
            "id": "r9",
        }


class TestCompileRequestValidation:
    def test_minimal_message_fills_defaults(self):
        request = parse_compile_request(compile_message())
        assert request.target == "parisc"
        assert request.cost_model == "jump_edge"
        assert request.techniques == ("baseline", "shrinkwrap", "optimized")
        assert request.cache == "use"

    @pytest.mark.parametrize(
        "mutation",
        [
            {"id": ""},
            {"id": 7},
            {"program": "not-an-object"},
            {"program": {}},
            {"program": {"ir": "x", "scenario": "y"}},
            {"program": {"scenario": ""}},
            {"target": "vax"},
            {"cost_model": "psychic"},
            {"techniques": []},
            {"techniques": ["baseline", "baseline"]},
            {"techniques": ["warp"]},
            {"techniques": "baseline"},
            {"cache": "sometimes"},
            {"surprise": True},
        ],
    )
    def test_invalid_fields_rejected(self, mutation):
        with pytest.raises(ProtocolError):
            parse_compile_request(compile_message(**mutation))

    @pytest.mark.parametrize(
        "profile",
        [
            "not-an-object",
            {"invocations": "many"},
            {"invocations": -3.0},
            {"invocations": True},
            {"probabilities": {"no-arrow": 0.5}},
            {"probabilities": {"a->b": 1.5}},
            {"probabilities": {"a->b": "half"}},
            {"unknown_knob": 1},
        ],
    )
    def test_invalid_profiles_rejected(self, profile, sample_ir):
        message = compile_message(program={"ir": sample_ir}, profile=profile)
        with pytest.raises(ProtocolError):
            parse_compile_request(message)

    def test_profile_on_scenario_program_rejected(self):
        with pytest.raises(ProtocolError):
            parse_compile_request(compile_message(profile={"invocations": 10.0}))

    def test_signature_ignores_id_but_not_work(self):
        a = parse_compile_request(compile_message(id="r1")).signature()
        b = parse_compile_request(compile_message(id="r2")).signature()
        c = parse_compile_request(compile_message(target="tiny")).signature()
        assert a == b
        assert a != c


class TestResolution:
    def test_scenario_reference_resolves_deterministically(self):
        message = compile_message()
        first = resolve_compile_request(parse_compile_request(message))
        second = resolve_compile_request(parse_compile_request(message))
        assert first.cache_key == second.cache_key
        assert first.function_fingerprint == fingerprint_function(second.function)

    def test_scenario_prefix_is_optional(self):
        bare = compile_message(program={"scenario": "call_web:0:0"})
        prefixed = compile_message(program={"scenario": "scenario:call_web:0:0"})
        assert (
            resolve_compile_request(parse_compile_request(bare)).cache_key
            == resolve_compile_request(parse_compile_request(prefixed)).cache_key
        )

    def test_scenario_index_defaults_to_zero(self):
        short = compile_message(program={"scenario": "call_web:0"})
        long = compile_message(program={"scenario": "call_web:0:0"})
        assert (
            resolve_compile_request(parse_compile_request(short)).cache_key
            == resolve_compile_request(parse_compile_request(long)).cache_key
        )

    @pytest.mark.parametrize(
        "reference",
        ["call_web", "call_web:zero", "call_web:0:-1", "no_such_family:0"],
    )
    def test_bad_scenario_references_rejected(self, reference):
        message = compile_message(program={"scenario": reference})
        with pytest.raises(ProtocolError):
            parse_compile_request(message) and resolve_compile_request(
                parse_compile_request(message)
            )

    def test_inline_ir_resolves_and_fingerprints(self, sample_ir):
        message = compile_message(program={"ir": sample_ir})
        resolved = resolve_compile_request(parse_compile_request(message))
        assert resolved.function.name == "sample"
        assert resolved.profile.invocations == 1000.0

    def test_inline_ir_with_profile_changes_the_key(self, sample_ir):
        plain = compile_message(program={"ir": sample_ir})
        profiled = compile_message(
            program={"ir": sample_ir},
            profile={"invocations": 500.0, "probabilities": {"entry->merge": 0.9}},
        )
        key_a = resolve_compile_request(parse_compile_request(plain)).cache_key
        key_b = resolve_compile_request(parse_compile_request(profiled)).cache_key
        assert key_a != key_b

    def test_unparsable_ir_rejected(self):
        message = compile_message(program={"ir": "func broken ("})
        with pytest.raises(ProtocolError):
            resolve_compile_request(parse_compile_request(message))

    def test_multi_function_module_rejected(self, sample_ir):
        two = sample_ir + sample_ir.replace("sample", "second")
        message = compile_message(program={"ir": two})
        with pytest.raises(ProtocolError):
            resolve_compile_request(parse_compile_request(message))

    def test_cache_policy_namespaces_the_coalesce_key(self):
        use = resolve_compile_request(parse_compile_request(compile_message()))
        bypass = resolve_compile_request(
            parse_compile_request(compile_message(cache="bypass"))
        )
        assert use.cache_key == bypass.cache_key
        assert use.coalesce_key != bypass.coalesce_key

    def test_options_differ_the_cache_key(self):
        base = resolve_compile_request(parse_compile_request(compile_message()))
        other_model = resolve_compile_request(
            parse_compile_request(compile_message(cost_model="execution_count"))
        )
        fewer = resolve_compile_request(
            parse_compile_request(compile_message(techniques=["baseline"]))
        )
        assert len({base.cache_key, other_model.cache_key, fewer.cache_key}) == 3


class TestWireRoundTrip:
    def test_request_to_message_parses_back_equal(self):
        request = CompileRequest(
            id="r7",
            program={"scenario": "scenario:classic_mix:3:1"},
            target="tiny",
            cost_model="execution_count",
            techniques=("baseline", "optimized"),
            cache="bypass",
        )
        # Through JSON, as the wire would carry it.
        parsed = parse_compile_request(json.loads(encode_message(request.to_message())))
        assert parsed == request
