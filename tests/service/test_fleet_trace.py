"""Pinned fleet scheduling: shard placement and tier behaviour by trace.

``traces/fleet_coalesce.jsonl`` is the exact request sequence
``build_request_plan(mix="hot", requests=16, seed=7)`` produced when the
fleet was built — 16 requests over 4 unique programs.  Like the PR-5
``hot_coalesce`` fixture, it is pinned as a *file* so the interleaving
stays fixed forever; on top of it this module pins the fleet's routing
itself:

* every request's cache key maps to a **pinned shard** (the literal
  ``OWNERS`` table below) — SHA-256 ring placement is a contract, not an
  implementation detail;
* replayed serially on a 3-shard fleet, the outcome is exact: the first
  occurrence of each key is a ``miss`` compiled by its owner, every
  later duplicate is answered by the router from the shared tier; each
  shard compiles exactly the unique keys it owns, the fleet compiles
  each key exactly once, and the tier stores exactly ``unique`` entries;
* a second full replay is 100% tier hits with zero new compiles.
"""

from __future__ import annotations

import json
import os

from repro.service.client import ServiceClient
from repro.service.fleet import Fleet
from repro.service.loadgen import build_request_plan
from repro.service.protocol import (
    parse_compile_request,
    resolve_compile_request,
    response_result_bytes,
)
from repro.service.ring import HashRing
from tests.service.test_serving_properties import serial_oracle

TRACE_PATH = os.path.join(os.path.dirname(__file__), "traces", "fleet_coalesce.jsonl")

#: The pinned ring placement for a ["s0", "s1", "s2"] fleet: request id →
#: owning shard.  Pure SHA-256 arithmetic — if this table ever changes,
#: ring compatibility broke and every deployed fleet would reshuffle.
OWNERS = {
    "q0": "s0", "q1": "s0", "q2": "s0", "q3": "s1",
    "q4": "s2", "q5": "s0", "q6": "s0", "q7": "s1",
    "q8": "s1", "q9": "s1", "q10": "s1", "q11": "s1",
    "q12": "s0", "q13": "s0", "q14": "s0", "q15": "s2",
}

#: First occurrence of each unique key in trace order (the compiles).
FIRST_OCCURRENCES = ("q0", "q3", "q4", "q5")

#: Unique keys each shard owns (what it, and only it, must compile).
OWNED_UNIQUE = {"s0": 2, "s1": 1, "s2": 1}


def load_trace():
    """The pinned request sequence, one JSON message per line."""

    with open(TRACE_PATH, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def test_trace_is_what_the_seeded_plan_still_generates():
    """Loadgen determinism: seed 7 still reproduces the pinned file."""

    assert build_request_plan(mix="hot", requests=16, seed=7) == load_trace()


def test_ring_placement_matches_the_pinned_owners():
    """The consistent-hash placement of every trace key is pinned."""

    ring = HashRing(["s0", "s1", "s2"])
    for message in load_trace():
        resolved = resolve_compile_request(parse_compile_request(message))
        assert ring.route(resolved.cache_key) == OWNERS[message["id"]]


def test_trace_replay_pins_fleet_scheduling(tmp_path):
    """Serial replay on a live 3-shard fleet: placement, tier behaviour
    and the fleet-wide single-compile guarantee, all exact."""

    trace = load_trace()
    truth = serial_oracle(trace)
    first = set(FIRST_OCCURRENCES)

    with Fleet(
        shards=3,
        backend="thread",
        batch_window_ms=5.0,
        cache_root=str(tmp_path),
    ) as fleet:
        with ServiceClient(port=fleet.port, timeout=120.0) as client:
            responses = [client.send_compile_message(m) for m in trace]
        stats = fleet.stats()

        # Replay the whole trace again: pure tier service, no compiles.
        with ServiceClient(port=fleet.port, timeout=120.0) as client:
            replayed = [
                client.send_compile_message(dict(m, id=f"r-{m['id']}"))
                for m in trace
            ]
        replay_stats = fleet.stats()

    for message, response in zip(trace, responses):
        assert response["type"] == "result", response
        signature = parse_compile_request(message).signature()
        assert response_result_bytes(response) == truth[signature]
        if message["id"] in first:
            # The first occurrence compiles, on exactly the pinned owner.
            assert response["service"]["cache"] == "miss"
            assert response["service"]["shard"] == OWNERS[message["id"]]
        else:
            # Every duplicate answers from the shared tier at the router.
            assert response["service"]["cache"] == "tier"
            assert "shard" not in response["service"]

    # Each shard compiled exactly the unique keys it owns — nothing more.
    compiled_by = {
        shard["id"]: shard["stats"]["requests"]["compiled"]
        for shard in stats["shards"]
    }
    assert compiled_by == OWNED_UNIQUE
    # Fleet-wide: one compile per unique key, one tier entry per key, one
    # tier answer per duplicate.
    unique = len(FIRST_OCCURRENCES)
    assert sum(compiled_by.values()) == unique
    assert stats["tier"]["stored"] == unique
    assert stats["router"]["tier_hits"] == len(trace) - unique
    assert stats["router"]["errors"] == 0

    # The replay leg: byte-identical, all tier, zero new compiles.
    for message, response in zip(trace, replayed):
        signature = parse_compile_request(message).signature()
        assert response["service"]["cache"] == "tier"
        assert response_result_bytes(response) == truth[signature]
    replay_compiled = {
        shard["id"]: shard["stats"]["requests"]["compiled"]
        for shard in replay_stats["shards"]
    }
    assert replay_compiled == OWNED_UNIQUE
    assert replay_stats["tier"]["stored"] == unique
