"""Policy engine tests: rules, determinism, and the live shed-load path.

The rule tests drive the engine with hand-built ``health-sample/v1``
payloads (decisions are a pure function of the sample stream, so no
server is needed); the integration tests run a real server and assert
that ``shed_on`` actually turns into ``overloaded`` rejections at
admission — and that results stay bit-identical to the oracle with the
policy engine enabled.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service.client import AsyncServiceClient, OverloadedError
from repro.service.health import LATENCY_BUCKET_BOUNDS_MS, SLO
from repro.service.policy import (
    ACTIONS,
    DECISION_SCHEMA,
    PolicyEngine,
    RestartRule,
    ShedLoadRule,
    SloAlarmRule,
    WedgedShardRule,
    default_engine,
    default_rules,
    render_decisions,
    replay_decisions,
)
from repro.service.protocol import response_result_bytes
from repro.service.server import CompileServer
from tests.service.conftest import oracle_result_bytes


def make_sample(
    t=0.0,
    queue_limit=None,
    queue_depth=0.0,
    received=0,
    completed=0,
    errors=0,
    latency_buckets=None,
    shards=None,
):
    """A hand-built ``health-sample/v1`` payload (both windows identical)."""

    buckets = latency_buckets or [0] * (len(LATENCY_BUCKET_BOUNDS_MS) + 1)
    window = {
        "seconds": 10.0,
        "counts": {"received": received, "completed": completed, "errors": errors},
        "latency": {"count": sum(buckets), "buckets": buckets},
        "gauges": {"queue_depth": queue_depth},
        "rates": {},
    }
    sample = {
        "schema": "health-sample/v1",
        "t": t,
        "queue_limit": queue_limit,
        "windows": {"fast": window, "slow": dict(window)},
    }
    if shards is not None:
        sample["shards"] = shards
    return sample


class TestShedLoadRule:
    def engine(self):
        return PolicyEngine(rules=[ShedLoadRule()])

    def test_hysteresis_band(self):
        engine = self.engine()
        # Below the enter bound: nothing.
        assert engine.step(make_sample(t=1.0, queue_limit=64, queue_depth=40.0)) == []
        # Crossing 0.8: shed_on, exactly once.
        on = engine.step(make_sample(t=2.0, queue_limit=64, queue_depth=56.0))
        assert [d.action for d in on] == ["shed_on"]
        assert on[0].target == "admission" and on[0].window == "fast"
        assert engine.step(make_sample(t=3.0, queue_limit=64, queue_depth=60.0)) == []
        # Mid-band (0.25 < fraction < 0.8): still shedding, no decision.
        assert engine.step(make_sample(t=4.0, queue_limit=64, queue_depth=30.0)) == []
        # At or below 0.25: shed_off.
        off = engine.step(make_sample(t=5.0, queue_limit=64, queue_depth=16.0))
        assert [d.action for d in off] == ["shed_off"]
        assert engine.state.shedding is False

    def test_inert_without_a_queue_limit(self):
        engine = self.engine()
        assert engine.step(make_sample(t=1.0, queue_depth=1000.0)) == []

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            ShedLoadRule(enter_fraction=0.2, exit_fraction=0.5)
        with pytest.raises(ValueError):
            ShedLoadRule(enter_fraction=1.5)


class TestSloAlarmRule:
    def test_alarm_edges_latch(self):
        slo = SLO(name="err", kind="error_rate", threshold=0.01, burn_threshold=2.0)
        engine = PolicyEngine(rules=[SloAlarmRule()], slos=[slo])
        burning = make_sample(t=1.0, received=100, completed=50, errors=50)
        quiet = make_sample(t=2.0, received=100, completed=100, errors=0)
        on = engine.step(burning)
        assert [d.action for d in on] == ["alarm_on"]
        assert on[0].target == "err"
        assert on[0].threshold == 2.0
        # Latched: a still-burning sample emits nothing new.
        assert engine.step(dict(burning, t=1.5)) == []
        off = engine.step(quiet)
        assert [d.action for d in off] == ["alarm_off"]
        assert engine.state.alarms == set()


class TestShardLifecycleRules:
    def engine(self):
        return PolicyEngine(
            rules=[WedgedShardRule(stall_seconds=4.0), RestartRule(after_seconds=2.0)]
        )

    @staticmethod
    def shard(shard_id, healthy=True, pending=0, stalled=0.0):
        return {
            "id": shard_id,
            "healthy": healthy,
            "pending": pending,
            "stalled_seconds": stalled,
        }

    def test_quarantine_then_restart_then_readmit(self):
        engine = self.engine()
        # Healthy fleet: nothing.
        assert engine.step(make_sample(t=0.0, shards=[self.shard("s0"), self.shard("s1")])) == []
        # s1 stalls with pending work: quarantine, once.
        wedged = [self.shard("s0"), self.shard("s1", pending=3, stalled=5.0)]
        decisions = engine.step(make_sample(t=1.0, shards=wedged))
        assert [(d.action, d.target) for d in decisions] == [("quarantine", "s1")]
        assert engine.step(make_sample(t=2.0, shards=wedged)) == []
        # Past the grace period: restart.
        decisions = engine.step(make_sample(t=3.5, shards=[self.shard("s0")]))
        assert [(d.action, d.target) for d in decisions] == [("restart", "s1")]
        # The replacement comes back healthy: readmit, state fully cleared.
        healthy = [self.shard("s0"), self.shard("s1", pending=0, stalled=0.0)]
        decisions = engine.step(make_sample(t=6.0, shards=healthy))
        assert [(d.action, d.target) for d in decisions] == [("readmit", "s1")]
        assert engine.state.quarantined == {}
        assert engine.state.restarted == set()
        # A fresh wedge on the same shard is handled again.
        decisions = engine.step(
            make_sample(t=9.0, shards=[self.shard("s1", pending=1, stalled=9.0)])
        )
        assert [(d.action, d.target) for d in decisions] == [("quarantine", "s1")]

    def test_stall_without_pending_work_is_idle_not_wedged(self):
        engine = self.engine()
        idle = [self.shard("s0", pending=0, stalled=100.0)]
        assert engine.step(make_sample(t=1.0, shards=idle)) == []

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            WedgedShardRule(stall_seconds=0.0)
        with pytest.raises(ValueError):
            RestartRule(after_seconds=-1.0)


class TestEngineDeterminism:
    def samples(self):
        return [
            make_sample(t=0.0, queue_limit=64, queue_depth=10.0),
            make_sample(t=1.0, queue_limit=64, queue_depth=60.0),
            make_sample(
                t=2.0, queue_limit=64, queue_depth=60.0,
                received=100, completed=40, errors=60,
            ),
            make_sample(t=3.0, queue_limit=64, queue_depth=5.0),
        ]

    def test_same_samples_same_decision_bytes(self):
        first = render_decisions(replay_decisions(self.samples()))
        second = render_decisions(replay_decisions(self.samples()))
        assert first == second
        assert first  # the scenario above produces decisions

    def test_seq_is_monotonic_and_t_comes_from_the_sample(self):
        decisions = replay_decisions(self.samples())
        assert [d.seq for d in decisions] == list(range(len(decisions)))
        assert all(d.t in (0.0, 1.0, 2.0, 3.0) for d in decisions)

    def test_payload_shape(self):
        decisions = replay_decisions(self.samples())
        payload = decisions[0].payload()
        assert payload["schema"] == DECISION_SCHEMA
        assert set(payload) == {
            "schema", "seq", "t", "rule", "action", "target",
            "window", "value", "threshold", "reason",
        }
        assert payload["action"] in ACTIONS

    def test_default_rules_catalogue(self):
        names = [rule.name for rule in default_rules()]
        assert names == ["shed-load", "slo-alarm", "wedged-shard", "restart-shard"]


class TestServerShedding:
    """The live half: shed_on at admission really rejects with 'overloaded'."""

    def test_shed_on_rejects_and_shed_off_recovers_bit_identical(self):
        message = {
            "type": "compile",
            "id": "r1",
            "program": {"scenario": "scenario:call_web:3:0"},
        }

        async def scenario():
            server = CompileServer(max_queue=64, enable_policy=True)
            await server.start()
            try:
                # Simulate sustained queue pressure in the rolling window,
                # then tick: the engine must order shed_on.
                server.health.observe_gauge("queue_depth", 60.0)
                decisions = server.health_tick()
                assert [d.action for d in decisions] == ["shed_on"]
                assert server.shedding

                client = await AsyncServiceClient.connect(
                    port=server.port, retries=0
                )
                try:
                    with pytest.raises(OverloadedError):
                        await client.send_compile_message(message)
                    snapshot = await server.stats_snapshot_async()
                    assert snapshot["requests"]["rejected_shed"] == 1
                    assert snapshot["requests"]["rejected_overloaded"] == 1
                    assert snapshot["policy"]["enabled"] is True
                    assert snapshot["policy"]["shedding"] is True
                    assert snapshot["policy"]["decisions"] == 1

                    # Pressure subsides (tick far enough ahead that the
                    # windowed gauge maximum has aged out): shed_off, and
                    # the same request now serves bit-identically.
                    relief = server.health.now() + 30.0
                    decisions = server.health_tick(now=relief)
                    # The shed rejection itself was an error response, so
                    # this tick may legitimately raise burn alarms too —
                    # the load-shedding transition is what matters here.
                    assert "shed_off" in [d.action for d in decisions]
                    assert not server.shedding
                    response = await client.send_compile_message(
                        dict(message, id="r2")
                    )
                    assert response_result_bytes(response) == oracle_result_bytes(
                        message
                    )
                finally:
                    await client.close()
            finally:
                await server.drain()

        asyncio.run(scenario())

    def test_policy_disabled_server_never_sheds(self):
        async def scenario():
            server = CompileServer(max_queue=64, enable_policy=False)
            await server.start()
            try:
                server.health.observe_gauge("queue_depth", 64.0)
                assert server.health_tick() == []
                assert not server.shedding
                snapshot = await server.stats_snapshot_async()
                assert snapshot["policy"]["enabled"] is False
            finally:
                await server.drain()

        asyncio.run(scenario())
