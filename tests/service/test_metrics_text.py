"""The ``metrics-text/v1`` scrape endpoint: determinism, parsing, transport.

The rendering contract is *byte*-determinism given a snapshot: the pinned
property the ops CI job asserts against a live fleet.  These tests cover
the pure renderer, the parser (its inverse for well-formedness checks),
and the ``metrics`` request type on both a single server and a fleet
router — fetched over real sockets via ``ServiceClient.metrics_text``.
"""

from __future__ import annotations

import json

import pytest

from repro.service.client import ServiceClient
from repro.service.fleet import Fleet
from repro.service.health import (
    METRICS_TEXT_SCHEMA,
    parse_metrics_text,
    render_metrics_text,
)


class TestRenderer:
    def snapshot(self):
        """A miniature but representative service snapshot."""

        return {
            "schema": "service-stats/v1",
            "uptime_seconds": 12.5,
            "draining": False,
            "requests": {"received": 10, "completed": 9, "errors": 1},
            "rates": {"qps": 0.72},
            "batches": {"dispatched": 3, "mean_size": 3.0, "max_size": 4},
            "queue": {"depth": 0, "peak_depth": 5},
            "latency_ms": {"count": 9, "p50": 2.0, "p99": 8.0},
            "policy": {"enabled": True, "shedding": False, "decisions": 2},
            "health": {
                "schema": "health-sample/v1",
                "t": 12.5,
                "queue_limit": 64,
                "windows": {
                    "fast": {
                        "seconds": 10.0,
                        "counts": {"received": 4, "completed": 4, "errors": 0},
                        "latency": {"count": 4, "buckets": [4], "p50": 1.0},
                        "gauges": {"queue_depth": 2.0},
                        "rates": {"qps": 0.4, "error_rate": 0.0, "availability": 1.0},
                    }
                },
            },
        }

    def test_byte_deterministic_rendering(self):
        first = render_metrics_text(self.snapshot())
        second = render_metrics_text(self.snapshot())
        assert first == second
        # A JSON round-trip of the snapshot must not change a byte either
        # (dict iteration order never leaks into the rendering).
        third = render_metrics_text(json.loads(json.dumps(self.snapshot())))
        assert first == third

    def test_header_and_series_content(self):
        text = render_metrics_text(self.snapshot())
        assert text.startswith(f"# {METRICS_TEXT_SCHEMA}\n")
        series = parse_metrics_text(text)
        assert series['repro_requests_total{event="completed"}'] == 9.0
        assert series["repro_uptime_seconds"] == 12.5
        assert series["repro_draining"] == 0.0
        assert series["repro_policy_shedding"] == 0.0
        assert series["repro_policy_decisions_total"] == 2.0
        assert series['repro_window_latency_ms{stat="p50",window="fast"}'] == 1.0
        assert series['repro_window_rate{name="availability",window="fast"}'] == 1.0
        assert series['repro_window_gauge{name="queue_depth",window="fast"}'] == 2.0

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            render_metrics_text({"schema": "no-such-schema/v9"})

    def test_parser_rejects_malformed_input(self):
        with pytest.raises(ValueError):
            parse_metrics_text("repro_x 1\n")  # no header
        with pytest.raises(ValueError):
            parse_metrics_text(f"# {METRICS_TEXT_SCHEMA}\nnot a metric line\n")


class TestServerScrape:
    def test_metrics_request_round_trip(self, embedded_server):
        with embedded_server() as emb:
            with ServiceClient(port=emb.port) as client:
                client.compile(scenario="scenario:call_web:6:0")
                text = client.metrics_text()
                snapshot = client.stats()
        assert text.startswith(f"# {METRICS_TEXT_SCHEMA}\n")
        series = parse_metrics_text(text)
        assert series['repro_requests_total{event="completed"}'] == 1.0
        assert series["repro_policy_shedding"] == 0.0
        # Byte-determinism against the snapshot: rendering the fetched
        # snapshot locally gives the same *structure* of series (the live
        # scrape raced its own counters, so values may differ slightly).
        local = parse_metrics_text(render_metrics_text(snapshot))
        assert set(local) == set(series)

    def test_scrape_of_one_snapshot_is_byte_deterministic(self, embedded_server):
        with embedded_server() as emb:
            with ServiceClient(port=emb.port) as client:
                client.compile(scenario="scenario:call_web:7:0")
                snapshot = client.stats()
        assert render_metrics_text(snapshot) == render_metrics_text(snapshot)


class TestFleetScrape:
    def test_fleet_metrics_request_round_trip(self):
        with Fleet(shards=2, backend="thread", batch_window_ms=5.0) as fleet:
            with ServiceClient(port=fleet.port) as client:
                client.compile(scenario="scenario:call_web:8:0")
                text = client.metrics_text()
        series = parse_metrics_text(text)
        assert series["repro_ring_members"] == 2.0
        assert series["repro_lost_shards"] == 0.0
        assert series['repro_router_total{event="completed"}'] == 1.0
        assert series['repro_shard_healthy{shard="s0"}'] == 1.0
        assert series['repro_shard_healthy{shard="s1"}'] == 1.0
        # The router's windowed health is present under its own prefix.
        assert any(key.startswith("repro_router_window_total") for key in series)

    def test_fleet_snapshot_renders_deterministically(self):
        with Fleet(shards=2, backend="thread", batch_window_ms=5.0) as fleet:
            snapshot = fleet.stats()
        assert render_metrics_text(snapshot) == render_metrics_text(
            json.loads(json.dumps(snapshot))
        )
