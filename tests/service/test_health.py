"""Unit tests for the rolling-window health core and the SLO engine.

Everything here runs on an injected clock — no sleeps, no wall time: the
window estimator, the delta-feeding discipline and the burn-rate math are
all driven by explicit ``now`` values.
"""

from __future__ import annotations

import pytest

from repro.service.health import (
    DEFAULT_WINDOWS,
    HEALTH_SCHEMA,
    LATENCY_BUCKET_BOUNDS_MS,
    LATENCY_OVERFLOW_BOUND_MS,
    SLO,
    HealthMonitor,
    RollingWindow,
    bucketed_quantile,
    default_slos,
    evaluate_slos,
    latency_bucket_bound,
    latency_bucket_index,
    slo_burn,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, start: float = 1000.0):
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> float:
        self.t += seconds
        return self.t


class TestLatencyBuckets:
    def test_bucket_index_uses_inclusive_upper_bounds(self):
        assert latency_bucket_index(0.0) == 0
        assert latency_bucket_index(1.0) == 0
        assert latency_bucket_index(1.0001) == 1
        assert latency_bucket_index(500.0) == 8
        assert latency_bucket_index(10000.0) == len(LATENCY_BUCKET_BOUNDS_MS) - 1

    def test_overflow_bucket_reports_the_conventional_cap(self):
        overflow = latency_bucket_index(99999.0)
        assert overflow == len(LATENCY_BUCKET_BOUNDS_MS)
        assert latency_bucket_bound(overflow) == LATENCY_OVERFLOW_BOUND_MS

    def test_quantile_empty_histogram_is_zero(self):
        counts = [0] * (len(LATENCY_BUCKET_BOUNDS_MS) + 1)
        assert bucketed_quantile(counts, 99.0) == 0.0

    def test_quantile_nearest_rank_on_known_counts(self):
        counts = [0] * (len(LATENCY_BUCKET_BOUNDS_MS) + 1)
        counts[0] = 98  # <= 1ms
        counts[8] = 2  # <= 500ms
        assert bucketed_quantile(counts, 50.0) == 1.0
        assert bucketed_quantile(counts, 98.0) == 1.0
        assert bucketed_quantile(counts, 99.0) == 500.0
        assert bucketed_quantile(counts, 100.0) == 500.0


class TestRollingWindow:
    def test_aggregate_only_covers_the_trailing_window(self):
        clock = FakeClock(0.0)
        window = RollingWindow(bucket_seconds=1.0, capacity_seconds=60.0, clock=clock)
        window.increment("received", now=0.5)
        window.increment("received", now=5.5)
        window.increment("received", now=9.5)
        # A 5s window at t=9.5 covers buckets 5..9: the event at 0.5 is out.
        aggregate = window.aggregate(5.0, now=9.5)
        assert aggregate.counts["received"] == 2.0
        # The full 10s window still sees all three.
        assert window.aggregate(10.0, now=9.5).counts["received"] == 3.0

    def test_gauges_track_window_maxima(self):
        window = RollingWindow(bucket_seconds=1.0, capacity_seconds=10.0)
        window.observe_gauge("queue_depth", 3.0, now=0.2)
        window.observe_gauge("queue_depth", 7.0, now=0.8)
        window.observe_gauge("queue_depth", 2.0, now=1.2)
        aggregate = window.aggregate(10.0, now=1.5)
        assert aggregate.gauges["queue_depth"] == 7.0
        # Once the 7.0 bucket ages out, the max drops.
        assert window.aggregate(1.0, now=1.5).gauges["queue_depth"] == 2.0

    def test_buckets_are_pruned_beyond_capacity(self):
        window = RollingWindow(bucket_seconds=1.0, capacity_seconds=5.0)
        window.increment("received", now=0.0)
        for t in range(1, 20):
            window.increment("received", now=float(t))
        assert len(window._buckets) <= window.capacity_buckets + 1

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            RollingWindow(bucket_seconds=0.0)
        with pytest.raises(ValueError):
            RollingWindow(bucket_seconds=2.0, capacity_seconds=1.0)


class TestHealthMonitor:
    def make(self, **kwargs):
        clock = FakeClock()
        monitor = HealthMonitor(
            counters=("received", "completed", "errors"),
            gauges=("queue_depth",),
            clock=clock,
            **kwargs,
        )
        return monitor, clock

    def test_unknown_counter_and_gauge_raise(self):
        monitor, _clock = self.make()
        with pytest.raises(ValueError):
            monitor.increment("no_such_counter")
        with pytest.raises(ValueError):
            monitor.observe_gauge("no_such_gauge", 1.0)

    def test_feed_counters_is_delta_based(self):
        monitor, clock = self.make()
        monitor.feed_counters({"received": 10, "completed": 10})
        clock.advance(1.0)
        monitor.feed_counters({"received": 14, "completed": 13})
        sample = monitor.sample()
        counts = sample["windows"]["fast"]["counts"]
        assert counts["received"] == 14
        assert counts["completed"] == 13
        clock.advance(1.0)
        # No movement: no new increments land.
        monitor.feed_counters({"received": 14, "completed": 13})
        counts = monitor.sample()["windows"]["fast"]["counts"]
        assert counts["received"] == 14

    def test_feed_counters_handles_a_reset(self):
        monitor, clock = self.make()
        monitor.feed_counters({"received": 10})
        clock.advance(1.0)
        # The cumulative value went backwards (a restarted metrics object):
        # count the new value from zero rather than a negative delta.
        monitor.feed_counters({"received": 3})
        counts = monitor.sample()["windows"]["fast"]["counts"]
        assert counts["received"] == 13

    def test_undeclared_fed_names_are_ignored(self):
        monitor, _clock = self.make()
        monitor.feed_counters({"received": 1, "something_else": 99})
        counts = monitor.sample()["windows"]["fast"]["counts"]
        assert "something_else" not in counts

    def test_sample_shape_and_rates(self):
        monitor, clock = self.make(queue_limit=64)
        monitor.feed_counters({"received": 20, "completed": 18, "errors": 2})
        for _ in range(18):
            monitor.observe_latency(3.0)
        monitor.observe_gauge("queue_depth", 12.0)
        clock.advance(0.25)
        sample = monitor.sample()
        assert sample["schema"] == HEALTH_SCHEMA
        assert sample["queue_limit"] == 64
        assert set(sample["windows"]) == {label for label, _ in DEFAULT_WINDOWS}
        fast = sample["windows"]["fast"]
        assert fast["seconds"] == 10.0
        assert fast["counts"]["received"] == 20
        assert fast["latency"]["count"] == 18
        assert fast["latency"]["p50"] == 5.0  # 3ms lands in the (2, 5] bucket
        assert fast["gauges"]["queue_depth"] == 12.0
        assert fast["rates"]["qps"] == round(18 / 10.0, 6)
        assert fast["rates"]["error_rate"] == 0.1
        assert fast["rates"]["availability"] == 0.9

    def test_no_traffic_availability_is_one(self):
        monitor, _clock = self.make()
        rates = monitor.sample()["windows"]["fast"]["rates"]
        assert rates == {"qps": 0.0, "error_rate": 0.0, "availability": 1.0}

    def test_sample_t_is_relative_to_monitor_start(self):
        monitor, clock = self.make()
        clock.advance(2.5)
        assert monitor.sample()["t"] == 2.5


def make_window_payload(received=0, completed=0, errors=0, latency_buckets=None):
    buckets = latency_buckets or [0] * (len(LATENCY_BUCKET_BOUNDS_MS) + 1)
    return {
        "seconds": 10.0,
        "counts": {"received": received, "completed": completed, "errors": errors},
        "latency": {"count": sum(buckets), "buckets": buckets},
        "gauges": {},
        "rates": {},
    }


class TestSLO:
    def test_latency_threshold_must_be_a_bucket_bound(self):
        SLO(name="ok", kind="latency", threshold=500.0)
        with pytest.raises(ValueError):
            SLO(name="bad", kind="latency", threshold=300.0)

    def test_invalid_kinds_and_ranges_rejected(self):
        with pytest.raises(ValueError):
            SLO(name="x", kind="throughput", threshold=1.0)
        with pytest.raises(ValueError):
            SLO(name="x", kind="error_rate", threshold=2.0)
        with pytest.raises(ValueError):
            SLO(name="x", kind="availability", threshold=0.0)
        with pytest.raises(ValueError):
            SLO(name="x", kind="error_rate", threshold=0.1, burn_threshold=0.0)

    def test_latency_burn_math(self):
        slo = SLO(name="p99", kind="latency", threshold=500.0, target=0.99)
        buckets = [0] * (len(LATENCY_BUCKET_BOUNDS_MS) + 1)
        buckets[0] = 98  # fast
        buckets[10] = 2  # 2000ms: slower than the 500ms threshold
        payload = make_window_payload(latency_buckets=buckets)
        # 2% bad against a 1% budget = burn 2.0.
        assert slo_burn(slo, payload) == 2.0

    def test_error_rate_and_availability_burn_math(self):
        err = SLO(name="err", kind="error_rate", threshold=0.01)
        avail = SLO(name="avail", kind="availability", threshold=0.995)
        payload = make_window_payload(received=100, completed=98, errors=2)
        assert slo_burn(err, payload) == 2.0
        assert slo_burn(avail, payload) == 4.0

    def test_no_traffic_burns_nothing(self):
        for slo in default_slos():
            assert slo_burn(slo, make_window_payload()) == 0.0

    def test_alarm_requires_both_windows_burning(self):
        slo = SLO(name="err", kind="error_rate", threshold=0.01, burn_threshold=2.0)
        burning = make_window_payload(received=100, completed=0, errors=50)
        quiet = make_window_payload(received=100, completed=100, errors=0)
        # Fast window burning alone: no alarm (a spike, not a trend).
        sample = {"windows": {"fast": burning, "slow": quiet}}
        report = evaluate_slos([slo], sample)
        assert report["err"]["fast_burn"] >= 2.0
        assert report["err"]["alarm"] is False
        # Both windows burning: alarm.
        sample = {"windows": {"fast": burning, "slow": burning}}
        assert evaluate_slos([slo], sample)["err"]["alarm"] is True

    def test_missing_window_contributes_zero_burn(self):
        slo = SLO(name="err", kind="error_rate", threshold=0.01)
        burning = make_window_payload(received=100, errors=50)
        report = evaluate_slos([slo], {"windows": {"fast": burning}})
        assert report["err"]["slow_burn"] == 0.0
        assert report["err"]["alarm"] is False

    def test_default_slos_cover_the_three_kinds(self):
        kinds = {slo.kind for slo in default_slos()}
        assert kinds == {"latency", "error_rate", "availability"}
