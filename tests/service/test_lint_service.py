"""The ``lint`` request type end to end: server, cache, fleet, strict gate.

The one-payload-everywhere contract under test: a served lint ``result``
is byte-identical (canonical JSON) to the local
:func:`repro.lint.lint_function` payload for the same inputs, a strict
compile's ``lint_rejected`` diagnostics equal the CLI's ``--json`` report
payloads, and lint answers flow through the same cache/coalesce/tier
machinery as compiles without ever aliasing them.
"""

from __future__ import annotations

import json

import pytest

from repro.lint import LintError, lint_function
from repro.service.client import ServiceClient, ServiceError
from repro.service.fleet import Fleet
from repro.service.protocol import (
    LintRequest,
    parse_lint_request,
    resolve_lint_request,
)
from repro.target.registry import get_target
from repro.workloads.scenarios import build_scenario

#: chaos_cfg seed 0 contains draws with genuine R001 errors — the strict
#: rejection fixture (pinned by the lint trace file).
ERROR_SCENARIO = "chaos_cfg:0:4"

#: classic_mix draws warn (dead ballast) but never error — strict passes.
WARN_SCENARIO = "classic_mix:0:0"


def canonical(payload) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def local_payload(scenario_ref, target="parisc", select=None, ignore=None):
    """The ground-truth lint payload, computed without any server."""

    family, seed, index = scenario_ref.split(":")
    machine = get_target(target)
    generated = build_scenario(
        family, seed=int(seed), count=int(index) + 1, machine=machine
    )[int(index)]
    return lint_function(
        generated.function,
        profile=generated.profile,
        machine=machine,
        select=select,
        ignore=ignore,
    ).payload()


class TestServedLint:
    def test_result_byte_identical_to_local_report(self, embedded_server):
        with embedded_server(workers=1) as emb:
            with ServiceClient(port=emb.port) as client:
                response = client.lint(scenario=WARN_SCENARIO, target="parisc")
        assert response["type"] == "result"
        assert canonical(response["result"]) == canonical(
            local_payload(WARN_SCENARIO)
        )

    def test_inline_ir_lints_like_the_library(self, embedded_server, sample_ir):
        from repro.ir.parser import parse_module
        from repro.ir.passes import ensure_single_exit
        from repro.profiling.synthetic import uniform_profile

        with embedded_server(workers=1) as emb:
            with ServiceClient(port=emb.port) as client:
                response = client.lint(ir=sample_ir, target="tiny")
        function = parse_module(sample_ir).functions[0]
        ensure_single_exit(function)
        expected = lint_function(
            function,
            profile=uniform_profile(function, invocations=1000.0),
            machine=get_target("tiny"),
        ).payload()
        assert canonical(response["result"]) == canonical(expected)

    def test_select_ignore_travel_on_the_wire(self, embedded_server):
        with embedded_server(workers=1) as emb:
            with ServiceClient(port=emb.port) as client:
                response = client.lint(
                    scenario=ERROR_SCENARIO, select=["R001", "R002"],
                    ignore=["R002"],
                )
        assert response["result"]["rules_run"] == ["R001"]
        assert canonical(response["result"]) == canonical(
            local_payload(ERROR_SCENARIO, select=["R001", "R002"], ignore=["R002"])
        )

    def test_unknown_rule_code_is_bad_request(self, embedded_server):
        with embedded_server(workers=1) as emb:
            with ServiceClient(port=emb.port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.lint(scenario=WARN_SCENARIO, select=["R999"])
        assert excinfo.value.code == "bad_request"

    def test_lint_results_cache_and_coalesce(self, embedded_server, tmp_path):
        with embedded_server(workers=1, cache=str(tmp_path)) as emb:
            with ServiceClient(port=emb.port) as client:
                first = client.lint(scenario=WARN_SCENARIO)
                second = client.lint(scenario=WARN_SCENARIO)
                bypass = client.lint(scenario=WARN_SCENARIO, cache="bypass")
        assert first["service"]["cache"] == "miss"
        assert second["service"]["cache"] == "hit"
        assert bypass["service"]["cache"] == "bypass"
        assert (
            canonical(first["result"])
            == canonical(second["result"])
            == canonical(bypass["result"])
        )

    def test_lint_cache_never_aliases_compiles(self, embedded_server, tmp_path):
        """Compile-then-lint of the same program: both are cold misses."""

        with embedded_server(workers=1, cache=str(tmp_path)) as emb:
            with ServiceClient(port=emb.port) as client:
                compiled = client.compile(scenario=WARN_SCENARIO)
                linted = client.lint(scenario=WARN_SCENARIO)
        assert compiled["service"]["cache"] == "miss"
        assert linted["service"]["cache"] == "miss"
        assert "diagnostics" in linted["result"]
        assert "diagnostics" not in compiled["result"]


class TestStrictCompileRejection:
    def test_lint_rejected_carries_the_cli_payload(self, embedded_server):
        """The served rejection diagnostics == the library's LintError
        payload == what the CLI emits as JSON for the same procedure."""

        with embedded_server(workers=1) as emb:
            with ServiceClient(port=emb.port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.compile(scenario=ERROR_SCENARIO, lint="strict")
        error = excinfo.value
        assert error.code == "lint_rejected"
        assert error.diagnostics is not None

        family, seed, index = ERROR_SCENARIO.split(":")
        machine = get_target("parisc")
        generated = build_scenario(
            family, seed=int(seed), count=int(index) + 1, machine=machine
        )[int(index)]
        report = lint_function(
            generated.function, profile=generated.profile, machine=machine
        )
        assert report.has_errors()
        expected = LintError([report]).payload()
        assert canonical(error.diagnostics) == canonical(expected)
        # ... and the rejection's report is exactly the lint result the
        # service would serve for a standalone lint request.
        assert canonical(error.diagnostics["reports"][0]) == canonical(
            local_payload(ERROR_SCENARIO)
        )

    def test_strict_compile_passes_on_warn_only_programs(self, embedded_server):
        with embedded_server(workers=1) as emb:
            with ServiceClient(port=emb.port) as client:
                response = client.compile(scenario=WARN_SCENARIO, lint="strict")
        assert response["type"] == "result"

    def test_lint_off_is_the_default_wire_format(self):
        """The lint field stays off the wire unless set — signature bytes
        (and therefore coalescing and caching) are unchanged from PR 5."""

        from repro.service.protocol import CompileRequest

        plain = CompileRequest(id="x", program={"scenario": WARN_SCENARIO})
        strict = CompileRequest(
            id="x", program={"scenario": WARN_SCENARIO}, lint="strict"
        )
        assert "lint" not in plain.to_message()
        assert strict.to_message()["lint"] == "strict"
        assert plain.signature() != strict.signature()


class TestFleetRouting:
    def test_lint_routes_through_the_fleet(self):
        with Fleet(shards=2, backend="thread", batch_window_ms=5.0) as fleet:
            with ServiceClient(port=fleet.port) as client:
                first = client.lint(scenario=WARN_SCENARIO)
                # The shard published the answer to the shared tier; the
                # router now answers without forwarding.
                second = client.lint(scenario=WARN_SCENARIO)
        assert canonical(first["result"]) == canonical(local_payload(WARN_SCENARIO))
        assert first["service"].get("shard", "").startswith("s")
        assert second["service"]["cache"] == "tier"
        assert canonical(second["result"]) == canonical(first["result"])

    def test_fleet_strict_compile_rejection(self):
        with Fleet(shards=2, backend="thread", batch_window_ms=5.0) as fleet:
            with ServiceClient(port=fleet.port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.compile(scenario=ERROR_SCENARIO, lint="strict")
        assert excinfo.value.code == "lint_rejected"
        assert excinfo.value.diagnostics is not None


class TestLintRequestProtocol:
    def test_parse_round_trip(self):
        request = LintRequest(
            id="r1",
            program={"scenario": WARN_SCENARIO},
            target="tiny",
            select=("R001", "R002"),
            ignore=("R002",),
        )
        parsed = parse_lint_request(request.to_message())
        assert parsed == request

    def test_resolution_is_deterministic(self):
        request = LintRequest(id="r1", program={"scenario": WARN_SCENARIO})
        keys = {resolve_lint_request(request).cache_key for _ in range(3)}
        assert len(keys) == 1

    def test_signatures_never_collide_with_compiles(self):
        from repro.service.protocol import CompileRequest

        lint = LintRequest(id="x", program={"scenario": WARN_SCENARIO})
        compile_ = CompileRequest(id="x", program={"scenario": WARN_SCENARIO})
        assert lint.signature() != compile_.signature()
