"""Server behaviour tests: serving, caching, coalescing, admission, drain.

Every test talks to a real server over real sockets (see ``conftest.py``).
"""

from __future__ import annotations

import asyncio
import json
import socket

import pytest

from repro.service.client import (
    AsyncServiceClient,
    OverloadedError,
    ServiceClient,
    ServiceError,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    decode_message,
    encode_message,
    response_result_bytes,
)
from tests.service.conftest import oracle_result_bytes


class TestBasicServing:
    def test_scenario_request_is_bit_identical_to_compile_many(self, embedded_server):
        message = {
            "type": "compile",
            "id": "r1",
            "program": {"scenario": "scenario:deep_loop_nest:5:1"},
            "target": "tiny",
        }
        with embedded_server() as emb:
            with ServiceClient(port=emb.port) as client:
                response = client.send_compile_message(message)
        assert response_result_bytes(response) == oracle_result_bytes(message)
        assert response["service"]["cache"] == "miss"
        assert response["service"]["coalesced"] is False
        assert response["timing"]["pass_seconds"]  # real pass timings came back

    def test_inline_ir_request_served(self, embedded_server, sample_ir):
        message = {
            "type": "compile",
            "id": "r1",
            "program": {"ir": sample_ir},
            "profile": {"invocations": 250.0, "probabilities": {"entry->merge": 0.75}},
        }
        with embedded_server() as emb:
            with ServiceClient(port=emb.port) as client:
                response = client.send_compile_message(message)
        assert response["result"]["name"] == "sample"
        assert response_result_bytes(response) == oracle_result_bytes(message)

    def test_every_registered_technique_subset_and_model(self, embedded_server):
        with embedded_server() as emb:
            with ServiceClient(port=emb.port) as client:
                for techniques in (["baseline"], ["baseline", "optimized"]):
                    for model in ("jump_edge", "execution_count"):
                        response = client.compile(
                            scenario="scenario:classic_mix:2:0",
                            target="micro",
                            cost_model=model,
                            techniques=techniques,
                        )
                        body = response["result"]
                        assert sorted(body["techniques_overhead"]) == sorted(techniques)
                        assert body["cost_model"] == model

    def test_bad_requests_get_bad_request_code_and_server_survives(
        self, embedded_server
    ):
        with embedded_server() as emb:
            with ServiceClient(port=emb.port) as client:
                for kwargs in (
                    dict(ir="func broken ("),
                    dict(scenario="scenario:not_a_family:0"),
                ):
                    with pytest.raises(ServiceError) as excinfo:
                        client.compile(**kwargs)
                    assert excinfo.value.code == "bad_request"
                # The connection and server still work afterwards.
                ok = client.compile(scenario="scenario:call_web:0:0")
                assert ok["result"]["name"].startswith("call_web")


class TestCacheFront:
    def test_warm_replay_is_a_hit_and_bit_identical(self, embedded_server, tmp_path):
        message = {
            "type": "compile",
            "id": "r1",
            "program": {"scenario": "scenario:switch_dispatch:1:0"},
        }
        with embedded_server(cache=str(tmp_path / "cache")) as emb:
            with ServiceClient(port=emb.port) as client:
                cold = client.send_compile_message(message)
                warm = client.send_compile_message(dict(message, id="r2"))
        assert cold["service"]["cache"] == "miss"
        assert warm["service"]["cache"] == "hit"
        assert response_result_bytes(cold) == response_result_bytes(warm)
        assert response_result_bytes(warm) == oracle_result_bytes(message)
        # A hit replays the cold compile's pass timings (documented).
        assert warm["timing"]["pass_seconds"] == cold["timing"]["pass_seconds"]

    def test_cache_survives_across_server_instances(self, embedded_server, tmp_path):
        directory = str(tmp_path / "cache")
        message = {
            "type": "compile",
            "id": "r1",
            "program": {"scenario": "scenario:pressure_sweep:2:3"},
        }
        with embedded_server(cache=directory) as emb:
            with ServiceClient(port=emb.port) as client:
                cold = client.send_compile_message(message)
        with embedded_server(cache=directory) as emb:
            with ServiceClient(port=emb.port) as client:
                warm = client.send_compile_message(message)
        assert warm["service"]["cache"] == "hit"
        assert response_result_bytes(cold) == response_result_bytes(warm)

    def test_bypass_policy_skips_the_cache(self, embedded_server, tmp_path):
        message = {
            "type": "compile",
            "id": "r1",
            "program": {"scenario": "scenario:call_web:4:0"},
            "cache": "bypass",
        }
        with embedded_server(cache=str(tmp_path / "cache")) as emb:
            with ServiceClient(port=emb.port) as client:
                first = client.send_compile_message(message)
                second = client.send_compile_message(dict(message, id="r2"))
        assert first["service"]["cache"] == "bypass"
        assert second["service"]["cache"] == "bypass"
        assert response_result_bytes(first) == response_result_bytes(second)


class TestCoalescing:
    def test_concurrent_identical_requests_compile_once(self, embedded_server):
        fanout = 5
        with embedded_server(batch_window_ms=150.0, batch_max_requests=8) as emb:

            async def burst():
                clients = [
                    await AsyncServiceClient.connect(port=emb.port)
                    for _ in range(fanout)
                ]
                try:
                    return await asyncio.gather(
                        *(
                            c.compile(scenario="scenario:irreducible_loop:9:0")
                            for c in clients
                        )
                    )
                finally:
                    for c in clients:
                        await c.close()

            responses = asyncio.run(burst())
            stats = emb.stats()
        bodies = {response_result_bytes(r) for r in responses}
        assert len(bodies) == 1
        coalesced = [r for r in responses if r["service"]["coalesced"]]
        assert len(coalesced) == fanout - 1
        assert stats["requests"]["compiled"] == 1
        assert stats["requests"]["coalesced"] == fanout - 1

    def test_coalesced_responses_match_the_oracle(self, embedded_server):
        message = {
            "type": "compile",
            "id": "x",
            "program": {"scenario": "scenario:chaos_cfg:3:2"},
            "target": "micro",
        }
        with embedded_server(batch_window_ms=150.0) as emb:

            async def burst():
                clients = [
                    await AsyncServiceClient.connect(port=emb.port) for _ in range(3)
                ]
                try:
                    return await asyncio.gather(
                        *(
                            c.send_compile_message(dict(message, id=f"r{i}"))
                            for i, c in enumerate(clients)
                        )
                    )
                finally:
                    for c in clients:
                        await c.close()

            responses = asyncio.run(burst())
        truth = oracle_result_bytes(message)
        assert all(response_result_bytes(r) == truth for r in responses)


class TestAdmissionControl:
    def test_overload_rejected_with_retryable_error(self, embedded_server):
        # queue bound 1 and a single-entry batch with a long window: the
        # first request occupies the batcher, the second the queue, and
        # every further unique request must be rejected.
        with embedded_server(
            max_queue=1, batch_max_requests=1, batch_window_ms=300.0
        ) as emb:

            async def flood():
                clients = [
                    await AsyncServiceClient.connect(port=emb.port, retries=0)
                    for _ in range(5)
                ]
                try:
                    return await asyncio.gather(
                        *(
                            c.compile(scenario=f"scenario:pressure_sweep:7:{i}")
                            for i, c in enumerate(clients)
                        ),
                        return_exceptions=True,
                    )
                finally:
                    for c in clients:
                        await c.close()

            outcomes = asyncio.run(flood())
            stats = emb.stats()
        rejected = [o for o in outcomes if isinstance(o, OverloadedError)]
        served = [o for o in outcomes if isinstance(o, dict)]
        assert rejected and served
        assert stats["requests"]["rejected_overloaded"] == len(rejected)
        # Nothing hung: every request was either served or rejected.
        assert len(rejected) + len(served) == 5

    def test_client_retry_eventually_succeeds(self, embedded_server):
        with embedded_server(
            max_queue=1, batch_max_requests=1, batch_window_ms=20.0
        ) as emb:

            async def flood():
                clients = [
                    await AsyncServiceClient.connect(
                        port=emb.port, retries=8, backoff=0.05
                    )
                    for _ in range(5)
                ]
                try:
                    return await asyncio.gather(
                        *(
                            c.compile(scenario=f"scenario:pressure_sweep:8:{i}")
                            for i, c in enumerate(clients)
                        ),
                        return_exceptions=True,
                    )
                finally:
                    for c in clients:
                        await c.close()

            outcomes = asyncio.run(flood())
        # With retries and a fast-draining queue every request succeeds.
        assert all(isinstance(o, dict) for o in outcomes)


class TestHandshake:
    def test_version_mismatch_rejected_and_closed(self, embedded_server):
        with embedded_server() as emb:
            with socket.create_connection(("127.0.0.1", emb.port), timeout=10) as raw:
                raw.sendall(encode_message({"type": "hello", "protocol": 99}))
                with raw.makefile("rb") as stream:
                    reply = decode_message(stream.readline())
                assert reply["type"] == "error"
                assert reply["code"] == "protocol"

    def test_first_message_must_be_hello(self, embedded_server):
        with embedded_server() as emb:
            with socket.create_connection(("127.0.0.1", emb.port), timeout=10) as raw:
                raw.sendall(encode_message({"type": "stats"}))
                with raw.makefile("rb") as stream:
                    reply = decode_message(stream.readline())
                assert reply["type"] == "error"
                assert reply["code"] == "protocol"

    def test_matching_version_gets_server_info(self, embedded_server):
        with embedded_server(max_queue=7) as emb:
            with socket.create_connection(("127.0.0.1", emb.port), timeout=10) as raw:
                raw.sendall(encode_message({"type": "hello", "protocol": PROTOCOL_VERSION}))
                with raw.makefile("rb") as stream:
                    reply = decode_message(stream.readline())
        assert reply["type"] == "hello"
        assert reply["protocol"] == PROTOCOL_VERSION
        assert reply["server"]["max_queue"] == 7

    def test_unknown_message_type_is_bad_request(self, embedded_server):
        with embedded_server() as emb:
            with ServiceClient(port=emb.port) as client:
                client._send({"type": "frobnicate", "id": "z"})
                reply = client._receive()
        assert reply["type"] == "error"
        assert reply["code"] == "bad_request"


class TestStatsAndDrain:
    def test_stats_request_shape(self, embedded_server, tmp_path):
        with embedded_server(cache=str(tmp_path / "cache")) as emb:
            with ServiceClient(port=emb.port) as client:
                client.compile(scenario="scenario:call_web:1:0")
                stats = client.stats()
        assert stats["schema"] == "service-stats/v1"
        for section in ("requests", "rates", "batches", "queue", "latency_ms", "cache"):
            assert section in stats
        assert stats["requests"]["completed"] == 1
        assert stats["cache"]["entries"] == 1
        assert json.dumps(stats)  # fully JSON-serializable

    def test_shutdown_request_drains_and_rejects_new_work(self, embedded_server):
        with embedded_server() as emb:
            with ServiceClient(port=emb.port) as client:
                client.compile(scenario="scenario:call_web:2:0")
                client.shutdown()
            # The listening socket closes once the drain finishes; poll
            # briefly for the OS to reflect it.
            import time

            for _ in range(100):
                try:
                    probe = socket.create_connection(("127.0.0.1", emb.port), timeout=1)
                except OSError:
                    break
                probe.close()
                time.sleep(0.05)
            else:
                pytest.fail("server kept accepting connections after shutdown")

    def test_draining_server_rejects_compiles_with_shutting_down(self, embedded_server):
        with embedded_server() as emb:
            with ServiceClient(port=emb.port, retries=0) as client:
                client.shutdown()
                # The already-open connection stays usable during drain;
                # new compile work must be refused.
                with pytest.raises(ServiceError) as excinfo:
                    client.compile(scenario="scenario:call_web:0:0")
                assert excinfo.value.code in ("shutting_down", "transport")


class TestRobustness:
    def test_drain_completes_with_an_idle_client_still_connected(
        self, embedded_server
    ):
        """Graceful drain must not wait for idle clients to hang up
        (``Server.wait_closed`` on 3.12+ blocks until every accepted
        connection finishes — the drain closes them itself first)."""

        with embedded_server() as emb:
            idle = ServiceClient(port=emb.port)  # connected, never sends
            try:
                with ServiceClient(port=emb.port) as active:
                    active.compile(scenario="scenario:call_web:5:0")
                    active.shutdown()
                # Exiting the embedded_server context joins the drain; a
                # deadlock here fails the test by timeout.
            finally:
                idle.close()

    def test_oversized_frame_answered_and_connection_dropped(self, embedded_server):
        from repro.service.protocol import MAX_FRAME_BYTES

        with embedded_server() as emb:
            with socket.create_connection(("127.0.0.1", emb.port), timeout=30) as raw:
                raw.sendall(encode_message({"type": "hello", "protocol": PROTOCOL_VERSION}))
                with raw.makefile("rb") as stream:
                    assert decode_message(stream.readline())["type"] == "hello"
                    # One line far beyond the stream limit.
                    raw.sendall(b"x" * (MAX_FRAME_BYTES + 4096) + b"\n")
                    reply = decode_message(stream.readline())
                    assert reply["type"] == "error"
                    assert reply["code"] == "protocol"
                    # The server closed the stream afterwards.
                    assert stream.readline() == b""
            # And it still serves fresh connections.
            with ServiceClient(port=emb.port) as client:
                response = client.compile(scenario="scenario:call_web:0:0")
                assert response["type"] == "result"

    def test_stats_and_shutdown_reject_unknown_fields(self, embedded_server):
        with embedded_server() as emb:
            with ServiceClient(port=emb.port) as client:
                client._send({"type": "stats", "id": "s1", "scope": "all"})
                reply = client._receive()
                assert reply["type"] == "error"
                assert reply["code"] == "bad_request"
                client._send({"type": "shutdown", "id": "s2", "force": True})
                reply = client._receive()
                assert reply["type"] == "error"
                assert reply["code"] == "bad_request"
                # Valid requests still work on the same connection (and the
                # rejected shutdown did NOT start a drain).
                assert client.stats()["requests"]["protocol_errors"] == 2
