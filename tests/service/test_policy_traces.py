"""The trace-driven policy corpus: every decision pinned byte-for-byte.

``tests/service/traces/<name>.trace.jsonl`` are real recordings (made by
``tools/record_policy_traces.py`` against live servers) and
``<name>.decisions.jsonl`` are their committed replays through the
default policy engine.  A replay is a pure function of the sample
stream, so these tests demand *byte* equality — same trace twice, and
under different hash seeds in a subprocess — against the committed pin:
any drift in windowing, burn math, rule ordering or rendering shows up
here as a diff, not as a flaky prod incident.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.service.health import METRIC_TRACE_SCHEMA, load_metric_trace
from repro.service.policy import render_decisions, replay_decisions

TRACES_DIR = os.path.join(os.path.dirname(__file__), "traces")
SCENARIOS = ("steady", "latency_burn", "wedged_shard")


def trace_path(name):
    return os.path.join(TRACES_DIR, f"{name}.trace.jsonl")


def pin_path(name):
    return os.path.join(TRACES_DIR, f"{name}.decisions.jsonl")


def read_pin(name):
    with open(pin_path(name), "r", encoding="utf-8") as handle:
        return handle.read()


class TestCorpusShape:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_trace_is_wellformed(self, name):
        with open(trace_path(name), "r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        assert header["schema"] == METRIC_TRACE_SCHEMA
        samples = load_metric_trace(trace_path(name))
        assert len(samples) >= 2
        assert all(sample["schema"] == "health-sample/v1" for sample in samples)
        # Time flows forward through the recording.
        ts = [sample["t"] for sample in samples]
        assert ts == sorted(ts)


class TestReplayPins:
    """Replay each committed trace and diff against the committed pin."""

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_replay_matches_pin_byte_for_byte(self, name):
        samples = load_metric_trace(trace_path(name))
        first = render_decisions(replay_decisions(samples))
        second = render_decisions(replay_decisions(samples))
        assert first == second  # same trace twice: identical bytes
        assert first == read_pin(name)

    def test_steady_trace_decides_nothing(self):
        assert read_pin("steady") == ""

    def test_latency_burn_raises_alarms(self):
        decisions = replay_decisions(load_metric_trace(trace_path("latency_burn")))
        actions = [(d.action, d.target) for d in decisions]
        assert ("alarm_on", "availability") in actions
        assert ("alarm_on", "error-rate") in actions
        # The tiny queue also crossed the shed threshold in the recording.
        assert ("shed_on", "admission") in actions
        for decision in decisions:
            if decision.action == "alarm_on":
                assert decision.value >= decision.threshold
                assert decision.window == "fast"

    def test_wedged_trace_runs_the_shard_lifecycle(self):
        decisions = replay_decisions(load_metric_trace(trace_path("wedged_shard")))
        shard_ids = {d.target for d in decisions if d.action == "quarantine"}
        assert len(shard_ids) == 1
        (victim,) = shard_ids
        lifecycle = [
            (d.action, d.target)
            for d in decisions
            if d.action in ("quarantine", "restart", "readmit")
        ]
        assert lifecycle == [
            ("quarantine", victim),
            ("restart", victim),
            ("readmit", victim),
        ]
        quarantine = next(d for d in decisions if d.action == "quarantine")
        assert quarantine.rule == "wedged-shard"
        assert quarantine.value >= quarantine.threshold


class TestReplayDeterminismAcrossProcesses:
    """`repro policy replay` under different hash seeds: identical stdout."""

    def run_replay(self, name, hash_seed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
        )
        return subprocess.run(
            [sys.executable, "-m", "repro", "policy", "replay",
             "--trace", trace_path(name)],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )

    @pytest.mark.parametrize("name", ("latency_burn", "wedged_shard"))
    def test_hash_seed_never_changes_the_decision_bytes(self, name):
        runs = [self.run_replay(name, seed) for seed in ("0", "42")]
        for run in runs:
            assert run.returncode == 0, run.stderr
        assert runs[0].stdout == runs[1].stdout == read_pin(name)

    def test_pin_flag_verifies_and_fails_on_drift(self, tmp_path):
        ok = subprocess.run(
            [sys.executable, "-m", "repro", "policy", "replay",
             "--trace", trace_path("wedged_shard"),
             "--pin", pin_path("wedged_shard")],
            capture_output=True, text=True, timeout=60,
            env=dict(os.environ, PYTHONPATH=os.path.join(
                os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
            )),
        )
        assert ok.returncode == 0, ok.stderr
        assert "match the pin" in ok.stderr

        drifted = tmp_path / "drifted.decisions.jsonl"
        drifted.write_text(read_pin("wedged_shard") + "{}\n")
        bad = subprocess.run(
            [sys.executable, "-m", "repro", "policy", "replay",
             "--trace", trace_path("wedged_shard"),
             "--pin", str(drifted)],
            capture_output=True, text=True, timeout=60,
            env=dict(os.environ, PYTHONPATH=os.path.join(
                os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
            )),
        )
        assert bad.returncode == 1
