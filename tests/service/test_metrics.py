"""Metrics-layer tests: histograms, counters, snapshot and shared shapes."""

from __future__ import annotations

import json

from repro.cache.store import CompileCache
from repro.service.metrics import (
    MAX_SAMPLES,
    LatencyHistogram,
    ServiceMetrics,
    cache_stats_payload,
)


class TestLatencyHistogram:
    def test_empty_histogram_reports_zeros(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.percentile(50) == 0.0
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["p50"] == 0.0

    def test_percentiles_on_known_data(self):
        histogram = LatencyHistogram()
        for value in range(1, 101):  # 1..100 ms
            histogram.record(float(value))
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(95) == 95.0
        assert histogram.percentile(99) == 99.0
        assert histogram.minimum == 1.0
        assert histogram.maximum == 100.0
        assert histogram.mean == 50.5

    def test_reservoir_decimation_bounds_memory_but_keeps_exact_count(self):
        histogram = LatencyHistogram()
        total = MAX_SAMPLES * 3
        for value in range(total):
            histogram.record(float(value))
        assert histogram.count == total
        assert len(histogram._samples) <= MAX_SAMPLES
        assert histogram.minimum == 0.0
        assert histogram.maximum == float(total - 1)
        # Percentiles stay representative after decimation (±2%).
        assert abs(histogram.percentile(50) - total / 2) < total * 0.02

    def test_summary_keys(self):
        histogram = LatencyHistogram()
        histogram.record(5.0)
        assert sorted(histogram.summary()) == sorted(
            ["count", "mean", "min", "max", "p50", "p95", "p99"]
        )


class TestServiceMetrics:
    def test_snapshot_shape_and_serializability(self):
        metrics = ServiceMetrics()
        metrics.received = 10
        metrics.completed = 8
        metrics.coalesced = 3
        metrics.cache_hits = 2
        metrics.record_batch(4)
        metrics.record_batch(2)
        metrics.observe_queue_depth(5)
        metrics.latency_ms.record(12.0)
        snapshot = metrics.snapshot(queue_depth=1)
        assert snapshot["schema"] == "service-stats/v1"
        assert snapshot["requests"]["coalesced"] == 3
        assert snapshot["rates"]["coalesce_rate"] == round(3 / 8, 4)
        assert snapshot["rates"]["cache_hit_rate"] == round(2 / 8, 4)
        assert snapshot["batches"] == {"dispatched": 2, "mean_size": 3.0, "max_size": 4}
        assert snapshot["queue"] == {"depth": 1, "peak_depth": 5}
        assert "cache" not in snapshot  # cacheless server omits the section
        json.dumps(snapshot)

    def test_rates_with_zero_completed_do_not_divide_by_zero(self):
        snapshot = ServiceMetrics().snapshot()
        assert snapshot["rates"]["coalesce_rate"] == 0.0
        assert snapshot["rates"]["cache_hit_rate"] == 0.0


class TestCacheStatsPayload:
    def test_shape_matches_cli_json_contract(self, tmp_path):
        cache = CompileCache(tmp_path / "store")
        cache.put("ab" + "0" * 62, {"x": 1})
        cache.get("ab" + "0" * 62)
        cache.get("cd" + "0" * 62)  # miss
        payload = cache_stats_payload(cache)
        assert sorted(payload) == sorted(
            [
                "hits",
                "misses",
                "hit_rate",
                "stores",
                "evictions",
                "corrupt",
                "entries",
                "disk_bytes",
            ]
        )
        assert payload["hits"] == 1
        assert payload["misses"] == 1
        assert payload["stores"] == 1
        assert payload["entries"] == 1
        assert payload["disk_bytes"] > 0

    def test_cli_cache_stats_json_uses_the_same_shape(self, tmp_path, capsys):
        from repro.cli import main

        cache = CompileCache(tmp_path / "store")
        cache.put("ab" + "0" * 62, {"x": 1})
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "store"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["directory"] == str(tmp_path / "store")
        assert sorted(payload["cache"]) == sorted(cache_stats_payload(cache))
        assert payload["cache"]["entries"] == 1
