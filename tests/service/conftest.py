"""Shared fixtures for the compile-service test suite.

The serving tests run a *real* :class:`~repro.service.server.CompileServer`
on a background thread (via :class:`~repro.service.embedded.EmbeddedServer`)
and talk to it over actual sockets — no mocked transports — so the
admission, batching, coalescing and drain behaviour under test is exactly
what production connections see.
"""

from __future__ import annotations

import json
from contextlib import contextmanager

import pytest

from repro.pipeline.compiler import compile_many
from repro.service.embedded import EmbeddedServer
from repro.service.protocol import (
    parse_compile_request,
    resolve_compile_request,
    result_payload,
)

#: A small but non-trivial IR program used by inline-IR tests (one guarded
#: call-crossing region, so every technique places something).
SAMPLE_IR = """
func sample() {
entry:
  li v0, #5
  cmplt v1, v0, #3
  br v1, @merge
body:
  call @helper() -> (v2)
  add v3, v2, #1
  add v4, v2, #2
  call @helper2(v2)
  add v5, v3, v4
merge:
  li v6, #7
  ret v6
}
"""


@pytest.fixture
def embedded_server():
    """Factory fixture: ``embedded_server(**kwargs)`` yields a live server."""

    @contextmanager
    def factory(**kwargs):
        with EmbeddedServer(**kwargs) as server:
            yield server

    return factory


@pytest.fixture
def sample_ir():
    """The inline-IR sample program."""

    return SAMPLE_IR


def oracle_result_bytes(message) -> bytes:
    """The canonical result bytes a direct ``compile_many`` produces.

    The serial, in-process ground truth every served response must match
    byte-for-byte (the ISSUE's core invariant).
    """

    request = parse_compile_request(message)
    resolved = resolve_compile_request(request)
    compiled = compile_many(
        [(resolved.function, resolved.profile)],
        machine=request.target,
        cost_model=request.cost_model,
        techniques=list(request.techniques),
        verify=True,
    )[0]
    return json.dumps(result_payload(resolved, compiled), sort_keys=True).encode("utf-8")


@pytest.fixture
def oracle():
    """Fixture handle on :func:`oracle_result_bytes`."""

    return oracle_result_bytes
