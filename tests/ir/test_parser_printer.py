"""Round-trip tests for the textual IR parser and printer."""

import pytest

from hypothesis import given

from repro.ir.parser import IRParseError, parse_function, parse_instruction, parse_module
from repro.ir.printer import format_instruction, print_function, print_module
from repro.ir import instructions as ins
from repro.ir.instructions import Opcode
from repro.ir.module import Module
from repro.ir.values import Immediate, Label, PhysicalRegister, StackSlot, VirtualRegister, vreg
from repro.workloads.programs import call_chain_function, diamond_function, loop_function, paper_example

from tests.conftest import generated_procedures


SAMPLE = """
func sample(v0, v1) {
entry:
  li v2, #5
  add v3, v0, v2
  cmplt v4, v3, v1
  br v4, @greater
less:
  call @callee(v3) -> (v5)
  store v5, [sp+0]
  jmp @done
greater:
  load v6, [sp+0] !spill
  sub v3, v6, v1
done:
  ret v3
}
"""


class TestParser:
    def test_parse_sample_function(self):
        function = parse_function(SAMPLE)
        assert function.name == "sample"
        assert [p.name for p in function.params] == ["v0", "v1"]
        assert [b.label for b in function.blocks] == ["entry", "less", "greater", "done"]

    def test_parsed_call_has_defs_and_target(self):
        function = parse_function(SAMPLE)
        call = function.block("less").instructions[0]
        assert call.is_call()
        assert call.target == Label("callee")
        assert call.registers_written() == [VirtualRegister("v5")]

    def test_parsed_purpose_tag(self):
        function = parse_function(SAMPLE)
        load = function.block("greater").instructions[0]
        assert load.purpose == "spill"

    def test_parse_instruction_errors(self):
        with pytest.raises(IRParseError):
            parse_instruction("frobnicate v1, v2")
        with pytest.raises(IRParseError):
            parse_instruction("add v1, v2")      # missing operand
        with pytest.raises(IRParseError):
            parse_instruction("br v1")           # missing target

    def test_statement_outside_function_rejected(self):
        with pytest.raises(IRParseError):
            parse_module("entry:\n  nop\n")

    def test_unterminated_function_rejected(self):
        with pytest.raises(IRParseError):
            parse_module("func f() {\nentry:\n  ret\n")

    def test_instruction_before_block_label_rejected(self):
        with pytest.raises(IRParseError):
            parse_module("func f() {\n  nop\n}\n")

    def test_physical_registers_parse_with_index(self):
        inst = parse_instruction("add gr5, gr3, gr4")
        assert inst.registers_written() == [PhysicalRegister("gr5", 5)]

    def test_comments_are_ignored(self):
        module = parse_module("// a comment\nfunc f() {\nentry:\n  nop\n  ret ; trailing\n}\n")
        assert module.function("f").instruction_count() == 2

    def test_parse_function_rejects_multiple_functions(self):
        with pytest.raises(IRParseError):
            parse_function(SAMPLE + "\nfunc g() {\nentry:\n  ret\n}\n")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "function",
        [diamond_function(), loop_function(), call_chain_function(), paper_example().function],
        ids=["diamond", "loop", "call_chain", "paper_example"],
    )
    def test_print_parse_print_is_stable(self, function):
        text = print_function(function)
        reparsed = parse_function(text)
        assert print_function(reparsed) == text

    def test_module_round_trip(self):
        module = Module("m")
        module.add_function(diamond_function())
        module.add_function(loop_function())
        text = print_module(module)
        assert print_module(parse_module(text)) == text

    @given(generated_procedures(max_segments=4))
    def test_generated_procedures_round_trip(self, procedure):
        text = print_function(procedure.function)
        assert print_function(parse_function(text)) == text


class TestFormatting:
    def test_format_call_without_returns(self):
        assert format_instruction(ins.call("f", args=[vreg(0)])) == "call @f(v0)"

    def test_format_ret_with_value(self):
        assert format_instruction(ins.ret([vreg(1)])) == "ret v1"

    def test_format_store_with_purpose(self):
        text = format_instruction(ins.callee_save(vreg(0), StackSlot(3)))
        assert text == "store v0, [sp+3] !callee_save"

    def test_format_branch(self):
        assert format_instruction(ins.branch(vreg(2), Label("loop"))) == "br v2, @loop"
