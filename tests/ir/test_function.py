"""Tests for basic blocks, functions, modules and CFG derivation."""

import pytest

from repro.ir import instructions as ins
from repro.ir.basic_block import BasicBlock
from repro.ir.cfg import EdgeKind
from repro.ir.function import ENTRY_SENTINEL, EXIT_SENTINEL, Function, reachable_blocks
from repro.ir.module import Module
from repro.ir.values import Label, vreg
from repro.ir.builder import FunctionBuilder
from repro.workloads.programs import diamond_function, loop_function, paper_example


class TestBasicBlock:
    def test_terminator_detection(self):
        block = BasicBlock("b", [ins.nop(), ins.ret()])
        assert block.has_terminator()
        assert block.terminator.is_return()

    def test_falls_through_without_terminator(self):
        assert BasicBlock("b", [ins.nop()]).falls_through()

    def test_conditional_branch_falls_through(self):
        block = BasicBlock("b", [ins.branch(vreg(0), Label("t"))])
        assert block.falls_through()

    def test_jump_does_not_fall_through(self):
        block = BasicBlock("b", [ins.jump(Label("t"))])
        assert not block.falls_through()

    def test_append_keeps_terminator_last(self):
        block = BasicBlock("b", [ins.ret()])
        block.append(ins.nop())
        assert block.instructions[-1].is_return()

    def test_insert_before_terminator(self):
        block = BasicBlock("b", [ins.nop(), ins.ret()])
        block.insert_before_terminator(ins.nop())
        assert len(block) == 3
        assert block.instructions[-1].is_return()

    def test_prepend(self):
        block = BasicBlock("b", [ins.ret()])
        marker = ins.nop()
        block.prepend(marker)
        assert block.instructions[0] is marker

    def test_body_excludes_terminator(self):
        block = BasicBlock("b", [ins.nop(), ins.ret()])
        assert len(block.body()) == 1

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            BasicBlock("")


class TestFunctionCfg:
    def test_diamond_edges_and_kinds(self):
        function = diamond_function()
        edges = {e.key: e.kind for e in function.edges()}
        assert edges[("entry", "then")] is EdgeKind.JUMP
        assert edges[("entry", "else_")] is EdgeKind.FALLTHROUGH
        assert edges[("else_", "merge")] is EdgeKind.JUMP
        assert edges[("then", "merge")] is EdgeKind.FALLTHROUGH

    def test_successors_and_predecessors(self):
        function = diamond_function()
        assert set(function.successors("entry")) == {"then", "else_"}
        assert set(function.predecessors("merge")) == {"then", "else_"}

    def test_entry_and_exit(self):
        function = diamond_function()
        assert function.entry.label == "entry"
        assert function.exit.label == "merge"
        assert function.has_single_exit()

    def test_virtual_edges(self):
        function = diamond_function()
        assert function.entry_edge().key == (ENTRY_SENTINEL, "entry")
        assert function.exit_edge().key == ("merge", EXIT_SENTINEL)

    def test_loop_back_edge_present(self):
        function = loop_function()
        assert function.has_edge("body", "header")

    def test_edge_lookup_raises_for_missing_edge(self):
        function = diamond_function()
        with pytest.raises(KeyError):
            function.edge("then", "entry")

    def test_duplicate_block_label_rejected(self):
        function = Function("f")
        function.add_block(BasicBlock("a", [ins.ret()]))
        with pytest.raises(ValueError):
            function.add_block(BasicBlock("a"))

    def test_new_label_avoids_collisions(self):
        function = Function("f")
        function.add_block(BasicBlock("bb1", [ins.ret()]))
        assert function.new_label("bb") != "bb1"

    def test_reachable_blocks(self):
        function = diamond_function()
        assert reachable_blocks(function) == set(function.block_labels)

    def test_clone_is_deep_for_instructions(self):
        function = diamond_function()
        clone = function.clone()
        clone.block("entry").instructions.pop()
        assert len(function.block("entry")) != len(clone.block("entry"))

    def test_instruction_count(self):
        function = diamond_function()
        assert function.instruction_count() == sum(len(b) for b in function.blocks)

    def test_stack_slot_allocation_is_monotonic(self):
        function = diamond_function()
        first = function.allocate_stack_slot()
        second = function.allocate_stack_slot("callee_save")
        assert second.index == first.index + 1

    def test_paper_example_has_sixteen_blocks(self):
        example = paper_example()
        assert len(example.function) == 16
        assert set(example.function.block_labels) == set("ABCDEFGHIJKLMNOP")


class TestModule:
    def test_add_and_lookup(self):
        module = Module("m")
        module.add_function(diamond_function())
        assert module.has_function("diamond")
        assert module.function("diamond").name == "diamond"
        assert "diamond" in module

    def test_duplicate_function_rejected(self):
        module = Module("m")
        module.add_function(diamond_function())
        with pytest.raises(ValueError):
            module.add_function(diamond_function())

    def test_external_callees(self):
        module = Module("m")
        module.add_function(loop_function())
        assert module.external_callees() == ["callee"]

    def test_clone_copies_functions(self):
        module = Module("m")
        module.add_function(diamond_function())
        clone = module.clone()
        assert clone.function("diamond") is not module.function("diamond")
        assert clone.instruction_count() == module.instruction_count()


class TestBuilder:
    def test_builder_tracks_current_block(self):
        builder = FunctionBuilder("f")
        builder.block("entry")
        builder.const(1)
        builder.block("exit")
        builder.ret()
        function = builder.build()
        assert [b.label for b in function.blocks] == ["entry", "exit"]

    def test_builder_new_vregs_are_unique(self):
        builder = FunctionBuilder("f")
        assert len(set(builder.new_vregs(10))) == 10

    def test_builder_requires_a_block_before_emitting(self):
        builder = FunctionBuilder("f")
        with pytest.raises(ValueError):
            builder.const(1)

    def test_builder_switch_to_existing_block(self):
        builder = FunctionBuilder("f")
        builder.block("a")
        builder.block("b")
        builder.switch_to("a")
        builder.nop()
        assert len(builder.build().block("a")) == 1
