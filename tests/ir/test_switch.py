"""The ``switch`` multiway terminator, end to end through the IR layer."""

from __future__ import annotations

import pytest

from repro.ir import instructions as ins
from repro.ir.builder import FunctionBuilder
from repro.ir.cfg import EdgeKind
from repro.ir.fingerprint import fingerprint_function
from repro.ir.instructions import Opcode
from repro.ir.parser import IRParseError, parse_function, parse_instruction
from repro.ir.passes import split_edge
from repro.ir.printer import format_instruction, print_function
from repro.ir.values import Label, vreg
from repro.ir.verifier import collect_function_errors, verify_function
from repro.profiling.interpreter import Interpreter


def build_switch_function(cases: int = 3) -> "FunctionBuilder":
    """``entry`` switches over ``cases`` case blocks that all jump to ``exit``."""

    builder = FunctionBuilder("sw")
    builder.block("entry")
    selector = builder.const(1)
    labels = [f"case{i}" for i in range(cases)]
    builder.switch(selector, labels)
    for position, label in enumerate(labels):
        builder.block(label)
        builder.const(position * 10)
        builder.jump("exit")
    builder.block("exit")
    builder.ret([])
    return builder


class TestSwitchInstruction:
    def test_constructor_and_classification(self):
        inst = ins.switch(vreg(0), [Label("a"), Label("b")])
        assert inst.opcode is Opcode.SWITCH
        assert inst.is_terminator()
        assert inst.is_switch()
        assert not inst.is_branch()
        assert inst.registers_read() == [vreg(0)]
        assert [t.name for t in inst.targets] == ["a", "b"]

    def test_requires_at_least_one_target(self):
        with pytest.raises(ValueError):
            ins.Instruction(Opcode.SWITCH, uses=(vreg(0),))

    def test_duplicate_targets_rejected(self):
        with pytest.raises(ValueError):
            ins.switch(vreg(0), [Label("a"), Label("a")])

    def test_copy_and_replace_registers_preserve_targets(self):
        inst = ins.switch(vreg(0), [Label("a"), Label("b")])
        clone = inst.copy()
        assert clone.targets == inst.targets
        renamed = inst.replace_registers({vreg(0): vreg(9)})
        assert renamed.registers_read() == [vreg(9)]
        assert renamed.targets == inst.targets

    def test_str_mentions_every_target(self):
        text = str(ins.switch(vreg(0), [Label("a"), Label("b")]))
        assert "@a" in text and "@b" in text


class TestSwitchCfg:
    def test_every_switch_edge_is_a_jump_edge(self):
        function = build_switch_function(3).build()
        edges = function.block_out_edges("entry")
        assert [e.dst for e in edges] == ["case0", "case1", "case2"]
        assert all(e.kind is EdgeKind.JUMP for e in edges)

    def test_switch_block_does_not_fall_through(self):
        function = build_switch_function(2).build()
        assert not function.block("entry").falls_through()

    def test_verifier_accepts_well_formed_switch(self):
        verify_function(build_switch_function(4).build(), require_single_exit=True)

    def test_verifier_rejects_unknown_target(self):
        builder = FunctionBuilder("bad")
        builder.block("entry")
        selector = builder.const(0)
        builder.emit(ins.switch(selector, [Label("nowhere"), Label("exit")]))
        builder.block("exit")
        builder.ret([])
        errors = collect_function_errors(builder.build())
        assert any("nowhere" in e for e in errors)

    def test_verifier_rejects_duplicate_targets(self):
        builder = FunctionBuilder("dup")
        builder.block("entry")
        selector = builder.const(0)
        builder.emit(
            ins.Instruction(
                Opcode.SWITCH, uses=(selector,), targets=(Label("exit"), Label("exit"))
            )
        )
        builder.block("exit")
        builder.ret([])
        errors = collect_function_errors(builder.build())
        assert any("duplicate" in e for e in errors)


class TestSwitchTextualForm:
    def test_format_and_parse_round_trip(self):
        inst = ins.switch(vreg(3), [Label("a"), Label("b"), Label("c")])
        text = format_instruction(inst)
        assert text == "switch v3, @a, @b, @c"
        parsed = parse_instruction(text)
        assert parsed.opcode is Opcode.SWITCH
        assert [t.name for t in parsed.targets] == ["a", "b", "c"]

    def test_function_round_trip_preserves_fingerprint(self):
        function = build_switch_function(3).build()
        text = print_function(function)
        reparsed = parse_function(text)
        assert print_function(reparsed) == text
        assert fingerprint_function(reparsed) == fingerprint_function(function)

    def test_parse_rejects_selector_only(self):
        with pytest.raises(IRParseError):
            parse_instruction("switch v0")

    def test_parse_rejects_non_label_target(self):
        with pytest.raises(IRParseError):
            parse_instruction("switch v0, v1, @a")


class TestSwitchInterpreter:
    def _run(self, selector_value: int):
        builder = FunctionBuilder("dispatch")
        selector = builder.new_vreg()
        builder.function.params = (selector,)
        builder.block("entry")
        builder.switch(selector, ["zero", "one", "dflt"])
        for label, value in (("zero", 100), ("one", 200), ("dflt", 300)):
            builder.block(label)
            result = builder.const(value)
            builder.ret([result])
        function = builder.build()
        return Interpreter().run(function, args=[selector_value])

    def test_selector_indexes_targets(self):
        assert self._run(0).return_values == (100,)
        assert self._run(1).return_values == (200,)

    def test_out_of_range_takes_last_target(self):
        assert self._run(2).return_values == (300,)
        assert self._run(99).return_values == (300,)
        assert self._run(-1).return_values == (300,)


class TestSwitchEdgeSplitting:
    def test_split_switch_edge_inserts_jump_block(self):
        # Two switches over shared cases make every switch edge critical.
        builder = FunctionBuilder("crit")
        builder.block("entry")
        selector = builder.const(0)
        builder.switch(selector, ["a", "b"])
        builder.block("other")
        selector2 = builder.const(1)
        builder.switch(selector2, ["a", "b"])
        builder.block("a")
        builder.jump("exit")
        builder.block("b")
        builder.jump("other_or_exit")
        builder.block("other_or_exit")
        builder.jump("exit")
        builder.block("exit")
        builder.ret([])
        function = builder.build()
        # Note: `other` is unreachable here; split_edge only needs the edge.
        edge = function.edge("entry", "a")
        new_block = split_edge(function, edge)
        term = function.block("entry").terminator
        assert new_block.label in [t.name for t in term.targets]
        assert "a" not in [t.name for t in term.targets]
        assert new_block.terminator.opcode is Opcode.JMP
        assert new_block.terminator.target.name == "a"
        assert function.has_edge("entry", new_block.label)
        assert function.has_edge(new_block.label, "a")

    def test_split_edge_rejects_missing_switch_target(self):
        function = build_switch_function(2).build()
        from repro.ir.cfg import Edge

        with pytest.raises(ValueError):
            split_edge(function, Edge("entry", "exit", EdgeKind.JUMP))
