"""Tests for canonical fingerprints and compile-cache key composition.

The fingerprint is defined over the canonical printer output, so the
parser↔printer round-trip property doubles as a fingerprint-stability
property: parsing a printed function and fingerprinting the reparse must
yield the same digest, for any generated procedure.
"""

import pytest

from hypothesis import given

from repro.ir.fingerprint import (
    FINGERPRINT_SCHEMA_VERSION,
    compile_options_token,
    cost_model_identity,
    fingerprint_function,
    fingerprint_module,
    fingerprint_profile,
    machine_identity,
    procedure_cache_key,
)
from repro.ir.module import Module
from repro.ir.parser import parse_function
from repro.pipeline.compiler import TECHNIQUES
from repro.spill.cost_models import JumpEdgeCostModel, make_cost_model
from repro.target.parisc import parisc_target
from repro.target.registry import available_targets, get_target
from repro.workloads.programs import diamond_function, loop_function
from repro.workloads.spec_like import build_suite

from tests.conftest import generated_procedures


class TestFunctionFingerprint:
    @given(generated_procedures(max_segments=4))
    def test_round_trip_preserves_fingerprint(self, procedure):
        """Print→parse is the identity as far as the fingerprint can see."""

        original = fingerprint_function(procedure.function)
        from repro.ir.printer import print_function

        reparsed = parse_function(print_function(procedure.function))
        assert fingerprint_function(reparsed) == original

    def test_same_content_same_fingerprint(self):
        assert fingerprint_function(diamond_function()) == fingerprint_function(
            diamond_function()
        )

    def test_different_functions_differ(self):
        assert fingerprint_function(diamond_function()) != fingerprint_function(
            loop_function()
        )

    def test_fingerprint_is_hex_digest(self):
        digest = fingerprint_function(diamond_function())
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex

    def test_module_fingerprint_depends_on_every_function(self):
        one = Module("m")
        one.add_function(diamond_function())
        two = Module("m")
        two.add_function(diamond_function())
        two.add_function(loop_function())
        assert fingerprint_module(one) != fingerprint_module(two)


class TestProfileFingerprint:
    def test_stable_and_order_independent(self):
        procedure = build_suite(names=["mcf"], scale=0.1)[0].procedures[0]
        profile = procedure.profile
        first = fingerprint_profile(profile)
        # Same counts inserted in a different dict order → same digest.
        from repro.profiling.profile_data import EdgeProfile

        shuffled = EdgeProfile(
            profile.function_name,
            profile.invocations,
            dict(reversed(list(profile.edge_counts.items()))),
        )
        assert fingerprint_profile(shuffled) == first

    def test_sensitive_to_any_count(self):
        procedure = build_suite(names=["mcf"], scale=0.1)[0].procedures[0]
        profile = procedure.profile
        scaled = profile.scaled(1.0000001)
        assert fingerprint_profile(scaled) != fingerprint_profile(profile)


class TestIdentities:
    def test_machine_identity_covers_cost_weights(self):
        machine = parisc_target()
        assert machine_identity(machine) != machine_identity(
            machine.replace(save_cost=2.0)
        )

    def test_machine_identity_distinct_across_registered_targets(self):
        identities = {machine_identity(get_target(n)) for n in available_targets()}
        assert len(identities) == len(available_targets())

    def test_cost_model_identity_none_for_custom_models(self):
        class Custom(JumpEdgeCostModel):
            name = "custom"

            def cache_identity(self):
                return None

        assert cost_model_identity(Custom()) is None

    def test_builtin_models_have_distinct_identities(self):
        machine = parisc_target()
        jump = make_cost_model("jump_edge", machine)
        execution = make_cost_model("execution_count", machine)
        assert cost_model_identity(jump) is not None
        assert cost_model_identity(jump) != cost_model_identity(execution)

    def test_model_identity_covers_machine_weights(self):
        cheap = make_cost_model("jump_edge", parisc_target())
        pricey = make_cost_model("jump_edge", parisc_target().replace(jump_cost=9.0))
        assert cost_model_identity(cheap) != cost_model_identity(pricey)

    def test_subclass_inheriting_identity_never_aliases_its_parent(self):
        """Regression: a behaviorally different subclass with inherited
        ``cache_identity`` (same name, same weights) must not share cache
        entries with the builtin it derives from."""

        class Doubled(JumpEdgeCostModel):
            def location_cost(self, function, profile, location, jump_sharing=None):
                return 2.0 * super().location_cost(
                    function, profile, location, jump_sharing
                )

        machine = parisc_target()
        assert cost_model_identity(Doubled(machine)) != cost_model_identity(
            make_cost_model("jump_edge", machine)
        )


class TestCacheKey:
    def _token(self, **overrides):
        defaults = dict(
            machine=parisc_target(),
            cost_model=make_cost_model("jump_edge", parisc_target()),
            techniques=TECHNIQUES,
            verify=True,
            maximal_regions=True,
        )
        defaults.update(overrides)
        return compile_options_token(**defaults)

    def test_token_none_for_identity_less_model(self):
        class Custom(JumpEdgeCostModel):
            name = "custom"

            def cache_identity(self):
                return None

        assert self._token(cost_model=Custom()) is None

    @pytest.mark.parametrize(
        "override",
        [
            {"machine": get_target("micro")},
            {"cost_model": make_cost_model("execution_count", parisc_target())},
            {"techniques": ("baseline",)},
            {"verify": False},
            {"maximal_regions": False},
        ],
        ids=["target", "cost-model", "techniques", "verify", "regions"],
    )
    def test_every_option_changes_the_token(self, override):
        assert self._token(**override) != self._token()

    def test_key_separates_compile_and_measure_namespaces(self):
        procedure = build_suite(names=["mcf"], scale=0.1)[0].procedures[0]
        token = self._token()
        compile_key = procedure_cache_key(
            procedure.function, procedure.profile, token, kind="compile"
        )
        measure_key = procedure_cache_key(
            procedure.function, procedure.profile, token, kind="measure"
        )
        assert compile_key != measure_key

    def test_key_depends_on_function_and_profile(self):
        benchmark = build_suite(names=["mcf"], scale=0.2)[0]
        first, second = benchmark.procedures[:2]
        token = self._token()
        assert procedure_cache_key(
            first.function, first.profile, token
        ) != procedure_cache_key(second.function, second.profile, token)

    def test_schema_version_is_versioned(self):
        assert FINGERPRINT_SCHEMA_VERSION >= 1
