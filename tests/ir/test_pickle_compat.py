"""Pickle compatibility of the slotted IR classes.

The IR hot classes (operand values, instructions, basic blocks) are
hand-slotted for the allocator hot path, but their pickle format must stay
compatible in both directions:

* new objects round-trip through pickle unchanged (the compile cache stores
  whole :class:`CompiledProcedure` payloads), and
* payloads pickled *before* the classes were slotted — whose state is the
  historical ``__dict__`` of the frozen dataclasses they replaced — still
  load, so existing cache directories keep producing hits.
"""

import pickle

from repro.ir.basic_block import BasicBlock
from repro.ir.fingerprint import fingerprint_function
from repro.ir.instructions import Instruction, Opcode
from repro.ir.values import (
    Immediate,
    Label,
    PhysicalRegister,
    StackSlot,
    VirtualRegister,
    preg,
    vreg,
)
from repro.workloads.programs import diamond_function, loop_function, paper_example


def test_values_round_trip():
    for value in (
        vreg(3),
        preg(5),
        VirtualRegister("v99"),
        PhysicalRegister("r2", 2),
        Immediate(42),
        StackSlot(1, "callee_save"),
        Label("body"),
    ):
        clone = pickle.loads(pickle.dumps(value))
        assert clone == value
        assert type(clone) is type(value)


def test_values_accept_historical_dict_state():
    """State dicts written by the pre-slots frozen dataclasses still load."""

    register = VirtualRegister.__new__(VirtualRegister)
    register.__setstate__({"name": "v7"})
    assert register == vreg(7)

    physical = PhysicalRegister.__new__(PhysicalRegister)
    physical.__setstate__({"name": "r4", "index": 4})
    assert physical == preg(4)

    slot = StackSlot.__new__(StackSlot)
    slot.__setstate__({"index": 2, "purpose": "spill"})
    assert slot == StackSlot(2, "spill")

    immediate = Immediate.__new__(Immediate)
    immediate.__setstate__({"value": -1})
    assert immediate == Immediate(-1)

    label = Label.__new__(Label)
    label.__setstate__({"name": "exit"})
    assert label == Label("exit")


def test_values_accept_two_tuple_state():
    """The default ``(dict, slots)`` protocol-2 shape also loads."""

    register = VirtualRegister.__new__(VirtualRegister)
    register.__setstate__((None, {"name": "v11"}))
    assert register == vreg(11)

    physical = PhysicalRegister.__new__(PhysicalRegister)
    physical.__setstate__(({}, {"name": "r1", "index": 1}))
    assert physical == preg(1)


def test_instruction_round_trip_and_historical_state():
    inst = Instruction(Opcode.ADD, defs=(vreg(0),), uses=(vreg(1), vreg(2)))
    clone = pickle.loads(pickle.dumps(inst))
    assert clone.opcode is Opcode.ADD
    assert clone.defs == inst.defs
    assert clone.uses == inst.uses
    assert clone.purpose == inst.purpose

    historical = Instruction.__new__(Instruction)
    historical.__setstate__(
        {
            "opcode": Opcode.MOV,
            "defs": (vreg(0),),
            "uses": (vreg(1),),
            "target": None,
            "targets": (),
            "purpose": "program",
            "uid": 17,
        }
    )
    assert historical.opcode is Opcode.MOV
    assert historical.uid == 17


def test_basic_block_round_trip():
    block = BasicBlock("entry", [Instruction(Opcode.MOV, defs=(vreg(0),), uses=(vreg(1),))])
    clone = pickle.loads(pickle.dumps(block))
    assert clone.label == "entry"
    assert len(clone.instructions) == 1
    assert clone.instructions[0].opcode is Opcode.MOV


def test_function_round_trip_preserves_fingerprint_and_drops_cfg_cache():
    for function in (diamond_function(), loop_function(), paper_example().function):
        function.cfg()  # populate the derived snapshot
        payload = pickle.dumps(function)
        clone = pickle.loads(payload)
        # The snapshot is derived state: never pickled, rebuilt on demand.
        assert clone._cfg is None
        assert fingerprint_function(clone) == fingerprint_function(function)
        assert clone.cfg().entry_label == function.cfg().entry_label
        assert [b.label for b in clone.blocks] == [b.label for b in function.blocks]


def test_function_state_without_cfg_key_still_loads():
    """Payloads pickled before the snapshot existed carry no ``_cfg`` key."""

    function = diamond_function()
    state = function.__getstate__()
    state.pop("_cfg", None)
    revived = type(function).__new__(type(function))
    revived.__setstate__(state)
    assert revived._cfg is None
    assert fingerprint_function(revived) == fingerprint_function(function)
