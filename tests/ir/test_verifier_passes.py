"""Tests for the IR verifier and the utility transformation passes."""

import pytest

from hypothesis import given

from repro.ir import instructions as ins
from repro.ir.basic_block import BasicBlock
from repro.ir.builder import FunctionBuilder
from repro.ir.cfg import EdgeKind
from repro.ir.dot import cfg_to_dot, pst_to_dot
from repro.ir.function import Function
from repro.ir.passes import (
    count_edge_kinds,
    ensure_single_exit,
    remove_unreachable_blocks,
    split_edge,
    straighten_layout,
)
from repro.ir.values import Label, vreg
from repro.ir.verifier import IRVerificationError, collect_function_errors, verify_function
from repro.analysis.pst import build_pst
from repro.profiling.interpreter import Interpreter
from repro.workloads.programs import diamond_function, loop_function, paper_example

from tests.conftest import generated_procedures


def _multi_exit_function():
    builder = FunctionBuilder("multi")
    cond = builder.new_vreg()
    builder.block("entry")
    builder.const(1, cond)
    builder.branch(cond, "second")
    builder.block("first")
    value = builder.const(10)
    builder.ret([value])
    builder.block("second")
    value2 = builder.const(20)
    builder.ret([value2])
    return builder.build()


class TestVerifier:
    def test_valid_functions_pass(self):
        verify_function(diamond_function())
        verify_function(loop_function())
        verify_function(paper_example().function, require_single_exit=True)

    def test_missing_exit_detected(self):
        function = Function("f")
        function.add_block(BasicBlock("a", [ins.jump(Label("a"))]))
        errors = collect_function_errors(function)
        assert any("exit" in e for e in errors)

    def test_fallthrough_past_last_block_detected(self):
        function = Function("f")
        function.add_block(BasicBlock("a", [ins.nop()]))
        errors = collect_function_errors(function)
        assert any("falls through" in e for e in errors)

    def test_unknown_branch_target_detected(self):
        function = Function("f")
        function.add_block(BasicBlock("a", [ins.jump(Label("missing"))]))
        with pytest.raises(IRVerificationError):
            verify_function(function)

    def test_unreachable_block_detected(self):
        function = Function("f")
        function.add_block(BasicBlock("a", [ins.ret()]))
        function.add_block(BasicBlock("orphan", [ins.ret()]))
        errors = collect_function_errors(function)
        assert any("unreachable" in e for e in errors)

    def test_duplicate_edge_detected(self):
        builder = FunctionBuilder("f")
        cond = builder.new_vreg()
        builder.block("a")
        builder.const(1, cond)
        builder.branch(cond, "b")
        builder.block("b")
        builder.ret()
        errors = collect_function_errors(builder.build())
        assert any("duplicate edge" in e for e in errors)

    def test_multiple_exits_flagged_only_when_required(self):
        function = _multi_exit_function()
        assert not any("exit blocks" in e for e in collect_function_errors(function))
        errors = collect_function_errors(function, require_single_exit=True)
        assert any("exit blocks" in e for e in errors)

    @given(generated_procedures(max_segments=5))
    def test_generated_procedures_always_verify(self, procedure):
        verify_function(procedure.function, require_single_exit=True)


class TestPasses:
    def test_ensure_single_exit_merges_exits(self):
        function = _multi_exit_function()
        ensure_single_exit(function)
        verify_function(function, require_single_exit=True)
        assert function.has_single_exit()

    def test_ensure_single_exit_preserves_return_values(self):
        before = Interpreter().run(_multi_exit_function())
        function = _multi_exit_function()
        ensure_single_exit(function)
        after = Interpreter().run(function)
        assert before.return_values == after.return_values

    def test_ensure_single_exit_is_idempotent(self):
        function = _multi_exit_function()
        ensure_single_exit(function)
        blocks_before = len(function)
        ensure_single_exit(function)
        assert len(function) == blocks_before

    def test_remove_unreachable_blocks(self):
        function = Function("f")
        function.add_block(BasicBlock("a", [ins.ret()]))
        function.add_block(BasicBlock("dead", [ins.jump(Label("a"))]))
        assert remove_unreachable_blocks(function) == 1
        assert "dead" not in function

    def test_split_jump_edge_inserts_jump_block(self):
        function = diamond_function()
        edge = function.edge("entry", "then")
        assert edge.kind is EdgeKind.JUMP
        new_block = split_edge(function, edge)
        verify_function(function)
        assert function.has_edge("entry", new_block.label)
        assert function.has_edge(new_block.label, "then")
        assert new_block.terminator.is_jump()

    def test_split_fallthrough_edge_requires_no_jump(self):
        function = diamond_function()
        edge = function.edge("entry", "else_")
        new_block = split_edge(function, edge)
        verify_function(function)
        assert new_block.terminator is None
        assert function.has_edge("entry", new_block.label)
        assert function.has_edge(new_block.label, "else_")

    def test_split_edge_preserves_execution_result(self):
        reference = Interpreter().run(loop_function())
        function = loop_function()
        split_edge(function, function.edge("body", "header"))
        rerun = Interpreter().run(function)
        assert rerun.return_values == reference.return_values

    def test_straighten_layout_removes_redundant_jumps(self):
        builder = FunctionBuilder("f")
        builder.block("a")
        builder.jump("b")
        builder.block("b")
        builder.ret()
        function = builder.build()
        straighten_layout(function)
        assert function.block("a").terminator is None
        verify_function(function)

    def test_count_edge_kinds(self):
        counts = count_edge_kinds(diamond_function())
        assert counts[EdgeKind.JUMP] == 2
        assert counts[EdgeKind.FALLTHROUGH] == 2


class TestDotExport:
    def test_cfg_dot_mentions_every_block_and_edge(self):
        example = paper_example()
        text = cfg_to_dot(
            example.function,
            edge_counts={k: int(v) for k, v in example.profile.edge_counts.items()},
            highlight_blocks=example.occupied_blocks,
        )
        for label in example.function.block_labels:
            assert f'"{label}"' in text
        assert "gray80" in text  # occupied blocks are shaded
        assert 'label="70"' in text  # edge counts appear

    def test_pst_dot_contains_regions(self):
        example = paper_example()
        text = pst_to_dot(build_pst(example.function))
        assert "procedure 0" in text
        assert text.count("->") >= 4
