"""Tests for IR instructions and their convenience constructors."""

import pytest

from repro.ir import instructions as ins
from repro.ir.instructions import Instruction, Opcode, OPCODE_INFO
from repro.ir.values import Immediate, Label, StackSlot, vreg


class TestConstructors:
    def test_binary_records_defs_and_uses(self):
        inst = ins.binary(Opcode.ADD, vreg(2), vreg(0), vreg(1))
        assert inst.registers_written() == [vreg(2)]
        assert inst.registers_read() == [vreg(0), vreg(1)]

    def test_binary_with_immediate_operand(self):
        inst = ins.binary(Opcode.MUL, vreg(1), vreg(0), Immediate(3))
        assert inst.registers_read() == [vreg(0)]
        assert Immediate(3) in inst.uses

    def test_move_and_load_immediate(self):
        assert ins.move(vreg(1), vreg(0)).opcode is Opcode.MOV
        li = ins.load_immediate(vreg(1), 42)
        assert li.uses == (Immediate(42),)

    def test_branch_carries_taken_target(self):
        inst = ins.branch(vreg(0), Label("then"))
        assert inst.is_branch()
        assert inst.target == Label("then")

    def test_jump_is_terminator(self):
        assert ins.jump(Label("x")).is_terminator()

    def test_return_with_and_without_values(self):
        assert ins.ret().uses == ()
        assert ins.ret([vreg(3)]).uses == (vreg(3),)

    def test_call_defs_and_uses(self):
        inst = ins.call("helper", args=[vreg(0)], returns=[vreg(1)])
        assert inst.is_call()
        assert inst.registers_written() == [vreg(1)]
        assert inst.registers_read() == [vreg(0)]
        assert inst.target == Label("helper")

    def test_spill_and_callee_save_purposes(self):
        slot = StackSlot(0)
        assert ins.save_spill(vreg(0), slot).purpose == "spill"
        assert ins.restore_spill(vreg(0), slot).purpose == "spill"
        assert ins.callee_save(vreg(0), slot).purpose == "callee_save"
        assert ins.callee_restore(vreg(0), slot).purpose == "callee_restore"

    def test_invalid_memory_purpose_rejected(self):
        with pytest.raises(ValueError):
            ins.load(vreg(0), StackSlot(0), purpose="bogus")


class TestClassification:
    def test_terminators(self):
        assert ins.ret().is_terminator()
        assert ins.jump(Label("a")).is_terminator()
        assert ins.branch(vreg(0), Label("a")).is_terminator()
        assert not ins.nop().is_terminator()
        assert not ins.call("f").is_terminator()

    def test_overhead_classification(self):
        slot = StackSlot(1)
        assert ins.callee_save(vreg(0), slot).is_overhead()
        assert ins.callee_save(vreg(0), slot).is_spill_code()
        assert not ins.store(vreg(0), slot).is_overhead()

    def test_opcode_info_table_is_complete(self):
        for opcode in Opcode:
            assert opcode in OPCODE_INFO

    def test_every_instruction_has_unique_uid(self):
        a, b = ins.nop(), ins.nop()
        assert a.uid != b.uid


class TestRegisterRewriting:
    def test_replace_registers_substitutes_defs_and_uses(self):
        inst = ins.binary(Opcode.SUB, vreg(2), vreg(0), vreg(1))
        rewritten = inst.replace_registers({vreg(0): vreg(9), vreg(2): vreg(8)})
        assert rewritten.registers_written() == [vreg(8)]
        assert rewritten.registers_read() == [vreg(9), vreg(1)]
        # The original instruction is untouched.
        assert inst.registers_written() == [vreg(2)]

    def test_replace_registers_keeps_non_register_operands(self):
        inst = ins.store(vreg(0), StackSlot(4))
        rewritten = inst.replace_registers({vreg(0): vreg(5)})
        assert rewritten.stack_slots() == [StackSlot(4)]

    def test_copy_is_independent(self):
        inst = ins.move(vreg(1), vreg(0))
        clone = inst.copy()
        assert clone.opcode is inst.opcode
        assert clone.uid != inst.uid


class TestRendering:
    def test_str_contains_mnemonic_and_operands(self):
        text = str(ins.binary(Opcode.ADD, vreg(2), vreg(0), vreg(1)))
        assert text.startswith("add")
        assert "v2" in text and "v0" in text and "v1" in text

    def test_str_marks_overhead_purpose(self):
        assert "callee_save" in str(ins.callee_save(vreg(0), StackSlot(0)))
