"""Tests for IR operand values."""

import pytest

from repro.ir.values import (
    Immediate,
    Label,
    PhysicalRegister,
    Register,
    StackSlot,
    VirtualRegister,
    preg,
    vreg,
)


class TestRegisters:
    def test_vreg_helper_creates_canonical_names(self):
        assert vreg(3).name == "v3"
        assert vreg(0) == VirtualRegister("v0")

    def test_preg_helper_records_index(self):
        register = preg(5, prefix="gr")
        assert register.name == "gr5"
        assert register.index == 5

    def test_registers_compare_by_name(self):
        assert VirtualRegister("v1") == VirtualRegister("v1")
        assert VirtualRegister("v1") != VirtualRegister("v2")

    def test_virtual_and_physical_with_same_name_are_distinct_types(self):
        assert VirtualRegister("r1") != PhysicalRegister("r1", 1)

    def test_registers_are_hashable_and_usable_in_sets(self):
        registers = {vreg(0), vreg(0), vreg(1)}
        assert len(registers) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            VirtualRegister("")

    def test_is_register_classification(self):
        assert vreg(0).is_register()
        assert not Immediate(3).is_register()
        assert not StackSlot(0).is_register()

    def test_str_forms(self):
        assert str(vreg(7)) == "v7"
        assert str(Immediate(-4)) == "#-4"
        assert str(StackSlot(2)) == "[sp+2]"
        assert str(Label("loop")) == "@loop"


class TestOtherOperands:
    def test_immediates_compare_by_value(self):
        assert Immediate(5) == Immediate(5)
        assert Immediate(5) != Immediate(6)

    def test_stack_slot_purpose_defaults_to_spill(self):
        assert StackSlot(0).purpose == "spill"
        assert StackSlot(0, "callee_save").purpose == "callee_save"

    def test_labels_compare_by_name(self):
        assert Label("a") == Label("a")
        assert Label("a") != Label("b")
