"""Tests for the machine-description subsystem and the target registry."""

import pytest

from repro.ir.values import PhysicalRegister, preg
from repro.pipeline.compiler import TECHNIQUES, compile_many, compile_procedure
from repro.spill.cost_models import make_cost_model
from repro.spill.model import SpillKind, SpillLocation
from repro.spill.overhead import placement_dynamic_overhead
from repro.spill.entry_exit import place_entry_exit
from repro.target.generic import micro_target, riscish_target, tiny_target, wide_target
from repro.target.machine import MachineDescription, TargetError, register_range
from repro.target.parisc import parisc_target
from repro.target.registry import (
    DEFAULT_TARGET,
    available_targets,
    get_target,
    register_target,
    resolve_target,
)
from repro.workloads.generator import GeneratorConfig, config_for_target, generate_procedure
from repro.workloads.programs import paper_example
from repro.workloads.spec_like import SPEC_BENCHMARKS, scale_spec_for_target


class TestMachineDescription:
    def test_partition_is_disjoint_and_sets_match(self, registered_machine):
        machine = registered_machine
        assert machine.caller_saved_set.isdisjoint(machine.callee_saved_set)
        assert machine.caller_saved_set == frozenset(machine.caller_saved)
        assert machine.callee_saved_set == frozenset(machine.callee_saved)
        assert machine.allocation_order == machine.caller_saved + machine.callee_saved
        assert machine.num_registers == machine.num_caller_saved + machine.num_callee_saved

    def test_membership_queries(self, registered_machine):
        machine = registered_machine
        for register in machine.caller_saved:
            assert machine.is_caller_saved(register)
            assert not machine.is_callee_saved(register)
        for register in machine.callee_saved:
            assert machine.is_callee_saved(register)
            assert not machine.is_caller_saved(register)

    def test_register_lookup_by_name(self, registered_machine):
        machine = registered_machine
        first = machine.callee_saved[0]
        assert machine.register(first.name) == first
        with pytest.raises(TargetError):
            machine.register("no_such_register")

    def test_overlapping_partition_rejected(self):
        shared = register_range("r", 0, 4)
        with pytest.raises(TargetError):
            MachineDescription(name="bad", caller_saved=shared, callee_saved=shared)

    def test_empty_class_rejected(self):
        with pytest.raises(TargetError):
            MachineDescription(
                name="bad", caller_saved=(), callee_saved=register_range("r", 0, 2)
            )
        with pytest.raises(TargetError):
            MachineDescription(
                name="bad", caller_saved=register_range("r", 0, 2), callee_saved=()
            )

    def test_negative_cost_rejected(self):
        with pytest.raises(TargetError):
            MachineDescription(
                name="bad",
                caller_saved=register_range("r", 0, 2),
                callee_saved=register_range("s", 0, 2),
                save_cost=-1.0,
            )

    def test_replace_recomputes_derived_sets(self):
        machine = riscish_target()
        wider = machine.replace(callee_saved=register_range("r", 8, 20))
        assert wider.num_callee_saved == 12
        assert preg(19, "r") in wider.callee_saved_set
        # The original is untouched (frozen value semantics).
        assert riscish_target().num_callee_saved == 8

    def test_cost_helpers(self):
        micro = micro_target()
        assert micro.save_restore_cost == 4.0
        assert micro.frame_bytes(3) == 3 * micro.spill_slot_bytes

    def test_describe_mentions_the_partition(self, registered_machine):
        text = registered_machine.describe()
        assert str(registered_machine.num_caller_saved) in text
        assert str(registered_machine.num_callee_saved) in text


class TestFactories:
    def test_parisc_matches_the_papers_machine(self):
        machine = parisc_target()
        assert machine.num_callee_saved == 16
        assert machine.register("gr3") in machine.callee_saved_set
        assert machine.register("gr19") in machine.caller_saved_set
        assert machine.save_cost == machine.restore_cost == 1.0

    def test_riscish_is_an_even_sixteen(self):
        machine = riscish_target()
        assert machine.num_caller_saved == 8 and machine.num_callee_saved == 8

    def test_tiny_takes_custom_counts(self):
        machine = tiny_target(3, 1)
        assert machine.num_caller_saved == 3 and machine.num_callee_saved == 1

    def test_micro_is_an_expensive_eight_register_machine(self):
        machine = micro_target()
        assert machine.num_registers == 8
        assert machine.save_cost == 2.0 and machine.jump_cost == 2.0

    def test_wide_is_sixty_four_registers(self):
        machine = wide_target()
        assert machine.num_registers == 64
        assert machine.num_callee_saved == 32

    def test_factories_are_cached(self):
        assert parisc_target() is parisc_target()
        assert tiny_target(2, 2) is tiny_target(2, 2)


class TestRegistry:
    def test_at_least_four_targets_registered(self):
        assert len(available_targets()) >= 4

    def test_every_name_resolves(self):
        for name in available_targets():
            machine = get_target(name)
            assert isinstance(machine, MachineDescription)

    def test_default_target_is_the_papers_machine(self):
        assert resolve_target(None) == get_target(DEFAULT_TARGET) == parisc_target()

    def test_resolve_passes_instances_through(self):
        machine = micro_target()
        assert resolve_target(machine) is machine

    def test_unknown_name_is_an_error(self):
        with pytest.raises(TargetError):
            get_target("vax")
        with pytest.raises(TargetError):
            resolve_target(42)

    def test_registered_machine_names_round_trip(self, registered_machine):
        # machine.name must itself resolve, so logs/serialized measurements
        # that record it can re-resolve the same machine later.
        assert resolve_target(registered_machine.name) == registered_machine

    def test_register_custom_target_and_overwrite_guard(self):
        name = "__test_custom__"
        try:
            register_target(name, riscish_target)
            assert name in available_targets()
            with pytest.raises(TargetError):
                register_target(name, riscish_target)
            register_target(name, micro_target, overwrite=True)
            assert get_target(name) == micro_target()
        finally:
            from repro.target import registry

            registry._REGISTRY.pop(name, None)


class TestCostThreading:
    def test_cost_model_weights_come_from_the_target(self):
        example = paper_example()
        location = SpillLocation(
            example.register, SpillKind.SAVE, ("__entry__", example.function.entry.label)
        )
        unit = make_cost_model("execution_count")
        weighted = make_cost_model("execution_count", micro_target())
        base = unit.location_cost(example.function, example.profile, location)
        assert weighted.location_cost(example.function, example.profile, location) == (
            base * micro_target().save_cost
        )

    def test_overhead_weights_come_from_the_target(self):
        example = paper_example()
        placement = place_entry_exit(example.function, example.usage)
        unit = placement_dynamic_overhead(example.function, example.profile, placement)
        weighted = placement_dynamic_overhead(
            example.function, example.profile, placement, micro_target()
        )
        assert weighted.save_count == unit.save_count * micro_target().save_cost
        assert weighted.restore_count == unit.restore_count * micro_target().restore_cost

    def test_compile_procedure_accepts_target_names(self):
        procedure = generate_procedure(GeneratorConfig(name="byname", seed=7, num_segments=3))
        compiled = compile_procedure(procedure, machine="micro")
        assert compiled.allocation.machine == micro_target()

    def test_compile_many_amortizes_and_validates(self):
        procedures = [
            generate_procedure(GeneratorConfig(name=f"batch{i}", seed=i, num_segments=3))
            for i in range(3)
        ]
        compiled = compile_many(procedures, machine="riscish")
        assert len(compiled) == 3
        assert all(c.allocation.machine == riscish_target() for c in compiled)
        with pytest.raises(ValueError):
            compile_many(procedures, techniques=("baseline", "mystery"))


class TestTargetParameterizedWorkloads:
    def test_config_for_target_scales_pressure(self):
        wide = config_for_target(wide_target())
        micro = config_for_target(micro_target())
        assert wide.num_accumulators > micro.num_accumulators
        assert wide.locals_per_call_region >= micro.locals_per_call_region

    def test_spec_scaling_keeps_the_reference_machine_unchanged(self):
        spec = SPEC_BENCHMARKS[0]
        assert scale_spec_for_target(spec, parisc_target()) == spec
        assert scale_spec_for_target(spec, None) == spec
        wide = scale_spec_for_target(spec, wide_target())
        assert wide.num_accumulators >= spec.num_accumulators


class TestAllTechniquesOnAllTargets:
    """Acceptance: all three techniques are verifier-clean on every target."""

    def test_compile_procedure_verifies_all_techniques(self, registered_machine):
        procedure = generate_procedure(
            config_for_target(
                registered_machine,
                GeneratorConfig(name="accept", seed=11, num_segments=5),
            )
        )
        # verify=True runs verify_placement on every produced placement.
        compiled = compile_procedure(procedure, machine=registered_machine, verify=True)
        assert set(compiled.outcomes) == set(TECHNIQUES)
        for technique in TECHNIQUES:
            assert compiled.callee_saved_overhead(technique) >= 0.0
