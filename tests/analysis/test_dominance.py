"""Tests for dominators, post-dominators and edge dominance."""

from hypothesis import given

from repro.analysis.dominance import (
    EdgeDominance,
    compute_dominators,
    compute_dominators_of_graph,
    compute_postdominators,
)
from repro.analysis.graph import DiGraph, function_cfg
from repro.workloads.programs import diamond_function, loop_function, paper_example

from tests.conftest import generated_procedures


class TestDominators:
    def test_diamond_idoms(self):
        dom = compute_dominators(diamond_function())
        assert dom.idom("entry") is None
        assert dom.idom("then") == "entry"
        assert dom.idom("else_") == "entry"
        assert dom.idom("merge") == "entry"

    def test_loop_idoms(self):
        dom = compute_dominators(loop_function())
        assert dom.idom("header") == "entry"
        assert dom.idom("body") == "header"
        assert dom.idom("exit") == "after"

    def test_dominates_is_reflexive_and_transitive(self):
        dom = compute_dominators(paper_example().function)
        assert dom.dominates("A", "A")
        assert dom.dominates("A", "P")
        assert dom.dominates("B", "C") and dom.dominates("C", "D")
        assert dom.dominates("B", "D")

    def test_strict_dominance_excludes_self(self):
        dom = compute_dominators(diamond_function())
        assert not dom.strictly_dominates("entry", "entry")
        assert dom.strictly_dominates("entry", "merge")

    def test_dominators_of_lists_chain_to_root(self):
        dom = compute_dominators(paper_example().function)
        chain = dom.dominators_of("E")
        assert chain[0] == "E"
        assert chain[-1] == "A"
        assert "D" in chain and "C" in chain

    def test_children_partition_nodes(self):
        dom = compute_dominators(paper_example().function)
        seen = set()
        stack = [dom.root]
        while stack:
            node = stack.pop()
            assert node not in seen
            seen.add(node)
            stack.extend(dom.children(node))
        assert seen == set(paper_example().function.block_labels)

    def test_postdominators_of_paper_example(self):
        postdom = compute_postdominators(paper_example().function)
        assert postdom.dominates("P", "A")
        assert postdom.dominates("F", "D")
        assert postdom.dominates("F", "C")
        assert not postdom.dominates("E", "D")

    def test_graph_level_api_with_unreachable_node(self):
        graph = DiGraph()
        graph.add_edge("a", "b")
        graph.add_node("island")
        dom = compute_dominators_of_graph(graph, "a")
        assert dom.idom("b") == "a"
        assert "island" not in dom

    @given(generated_procedures(max_segments=5))
    def test_entry_dominates_everything(self, procedure):
        function = procedure.function
        dom = compute_dominators(function)
        for label in function.block_labels:
            assert dom.dominates(function.entry.label, label)

    @given(generated_procedures(max_segments=5))
    def test_exit_postdominates_everything(self, procedure):
        function = procedure.function
        postdom = compute_postdominators(function)
        for label in function.block_labels:
            assert postdom.dominates(function.exit.label, label)

    @given(generated_procedures(max_segments=4))
    def test_idom_is_a_strict_dominator(self, procedure):
        function = procedure.function
        dom = compute_dominators(function)
        for label in function.block_labels:
            parent = dom.idom(label)
            if parent is not None:
                assert dom.strictly_dominates(parent, label)


class TestEdgeDominance:
    def test_paper_example_region_boundaries(self):
        example = paper_example()
        edges = EdgeDominance(example.function)
        assert edges.edge_dominates_edge(("B", "C"), ("F", "H"))
        assert edges.edge_postdominates_edge(("F", "H"), ("B", "C"))
        assert edges.edge_dominates_edge(("A", "I"), ("O", "P"))
        assert not edges.edge_dominates_edge(("C", "D"), ("F", "H"))

    def test_edge_vs_block_dominance(self):
        example = paper_example()
        edges = EdgeDominance(example.function)
        assert edges.edge_dominates_block(("B", "C"), "E")
        assert edges.edge_postdominates_block(("F", "H"), "E")
        assert not edges.edge_dominates_block(("C", "D"), "F")

    def test_virtual_entry_edge_dominates_all_blocks(self):
        example = paper_example()
        edges = EdgeDominance(example.function)
        for label in example.function.block_labels:
            assert edges.edge_dominates_block(("__entry__", "A"), label)
