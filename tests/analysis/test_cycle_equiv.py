"""Tests for cycle equivalence: bracket algorithm vs. brute-force oracle."""

from hypothesis import given

from repro.analysis.cycle_equiv import (
    UndirectedMultigraph,
    brute_force_cycle_equivalence,
    brute_force_cycle_equivalent,
    cycle_equivalence_classes,
)
from repro.analysis.sese import build_augmented_graph, compute_edge_classes
from repro.workloads.programs import diamond_function, loop_function, paper_example

from tests.conftest import generated_procedures, random_multigraphs


def _as_partition(classes):
    """Normalize a class assignment into a comparable set of frozensets."""

    groups = {}
    for edge, class_id in classes.items():
        groups.setdefault(class_id, set()).add(edge)
    return {frozenset(group) for group in groups.values()}


def _ring(n):
    graph = UndirectedMultigraph()
    for i in range(n):
        graph.add_edge(i, (i + 1) % n, f"e{i}")
    return graph


class TestBruteForceOracle:
    def test_ring_edges_are_all_equivalent(self):
        graph = _ring(4)
        classes = brute_force_cycle_equivalence(graph)
        assert len(set(classes.values())) == 1

    def test_two_rings_joined_at_a_node_are_separate_classes(self):
        graph = UndirectedMultigraph()
        graph.add_edge(0, 1, "a0")
        graph.add_edge(1, 2, "a1")
        graph.add_edge(2, 0, "a2")
        graph.add_edge(0, 3, "b0")
        graph.add_edge(3, 4, "b1")
        graph.add_edge(4, 0, "b2")
        classes = brute_force_cycle_equivalence(graph)
        partition = _as_partition(classes)
        assert frozenset({"a0", "a1", "a2"}) in partition
        assert frozenset({"b0", "b1", "b2"}) in partition

    def test_parallel_edges_are_equivalent(self):
        graph = UndirectedMultigraph()
        graph.add_edge(0, 1, "p1")
        graph.add_edge(0, 1, "p2")
        assert brute_force_cycle_equivalent(graph, "p1", "p2")

    def test_bridge_is_singleton(self):
        graph = _ring(3)
        graph.add_edge(0, 99, "bridge")
        classes = brute_force_cycle_equivalence(graph)
        ring_class = classes["e0"]
        assert classes["bridge"] != ring_class

    def test_self_loop_is_singleton(self):
        graph = _ring(3)
        graph.add_edge(1, 1, "self")
        classes = brute_force_cycle_equivalence(graph)
        assert sum(1 for e, c in classes.items() if c == classes["self"]) == 1

    def test_chord_splits_a_ring(self):
        graph = _ring(4)
        graph.add_edge(0, 2, "chord")
        classes = brute_force_cycle_equivalence(graph)
        # With the chord, opposite ring edges are no longer forced together.
        assert classes["e0"] != classes["e2"] or classes["e1"] != classes["e3"]
        # But edges on the same side of the chord remain equivalent.
        assert classes["e0"] == classes["e1"]
        assert classes["e2"] == classes["e3"]


class TestBracketAlgorithm:
    def test_matches_oracle_on_ring(self):
        graph = _ring(5)
        assert _as_partition(cycle_equivalence_classes(graph, 0)) == _as_partition(
            brute_force_cycle_equivalence(graph)
        )

    def test_matches_oracle_on_paper_example_cfg(self):
        graph = build_augmented_graph(paper_example().function)
        fast = cycle_equivalence_classes(graph, root="A")
        slow = brute_force_cycle_equivalence(graph)
        assert _as_partition(fast) == _as_partition(slow)

    def test_matches_oracle_on_loop_cfg(self):
        graph = build_augmented_graph(loop_function())
        assert _as_partition(cycle_equivalence_classes(graph)) == _as_partition(
            brute_force_cycle_equivalence(graph)
        )

    @given(random_multigraphs())
    def test_matches_oracle_on_random_multigraphs(self, graph):
        fast = cycle_equivalence_classes(graph, root=graph.nodes[0])
        slow = brute_force_cycle_equivalence(graph)
        assert _as_partition(fast) == _as_partition(slow)

    @given(generated_procedures(max_segments=4))
    def test_matches_oracle_on_generated_cfgs(self, procedure):
        graph = build_augmented_graph(procedure.function)
        fast = cycle_equivalence_classes(graph, root=procedure.function.entry.label)
        slow = brute_force_cycle_equivalence(graph)
        assert _as_partition(fast) == _as_partition(slow)


class TestCfgEdgeClasses:
    def test_paper_example_expected_classes(self):
        classes = compute_edge_classes(paper_example().function)
        assert classes[("B", "C")] == classes[("F", "H")]
        assert classes[("A", "B")] == classes[("J", "P")]
        assert classes[("A", "I")] == classes[("O", "P")]
        assert classes[("H", "G")] == classes[("G", "J")]
        assert classes[("A", "B")] != classes[("A", "I")]
        assert classes[("C", "D")] != classes[("B", "C")]

    def test_diamond_arm_edges_pair_up(self):
        classes = compute_edge_classes(diamond_function())
        assert classes[("entry", "then")] == classes[("then", "merge")]
        assert classes[("entry", "else_")] == classes[("else_", "merge")]
        assert classes[("entry", "then")] != classes[("entry", "else_")]
