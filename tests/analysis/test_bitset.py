"""Differential tests: the bitset dataflow fast path against pure-set references.

The bitset solver (:mod:`repro.analysis.bitset`) must be observationally
identical to the original set-based implementations it replaced.  These tests
keep reference implementations of liveness and interference construction
written directly over ``set`` objects (the seed's algorithms) and assert
set-equality on randomly generated CFGs.
"""

from hypothesis import given

from repro.analysis.bitset import RegisterIndex
from repro.analysis.dataflow import (
    DataflowProblem,
    Direction,
    Meet,
    solve_dataflow,
    solve_dataflow_reference,
)
from repro.analysis.liveness import (
    LivenessInfo,
    block_upward_exposed_uses,
    compute_liveness,
    live_at_each_instruction,
    liveness_dataflow_problem,
)
from repro.ir.instructions import Opcode
from repro.ir.values import VirtualRegister, vreg
from repro.regalloc.interference import InterferenceGraph, build_interference_graph
from repro.workloads.programs import diamond_function, loop_function

from tests.conftest import generated_procedures


# ---------------------------------------------------------------------------
# Reference implementations (the seed's pure-set algorithms).
# ---------------------------------------------------------------------------


def reference_liveness(function):
    """Block-level liveness computed with the original set-based solver."""

    problem = liveness_dataflow_problem(function)
    result = solve_dataflow_reference(function, problem)
    return LivenessInfo(
        live_in=result.block_in, live_out=result.block_out,
        uses=problem.gen, defs=problem.kill,
    )


def reference_live_after(function, liveness, label):
    block = function.block(label)
    live = set(liveness.live_out[label])
    after = [set() for _ in block.instructions]
    for i in range(len(block.instructions) - 1, -1, -1):
        after[i] = set(live)
        inst = block.instructions[i]
        live -= set(inst.registers_written())
        live |= set(inst.registers_read())
    return after


def reference_interference(function, liveness):
    """The seed's Chaitin construction, directly over sets."""

    graph = InterferenceGraph()
    for param in function.params:
        if isinstance(param, VirtualRegister):
            graph.add_node(param)
    for inst in function.instructions():
        for reg in inst.registers():
            if isinstance(reg, VirtualRegister):
                graph.add_node(reg)
    for block in function.blocks:
        live_after = reference_live_after(function, liveness, block.label)
        for index, inst in enumerate(block.instructions):
            written = [r for r in inst.registers_written() if isinstance(r, VirtualRegister)]
            if not written:
                continue
            live = {r for r in live_after[index] if isinstance(r, VirtualRegister)}
            move_source = None
            if inst.opcode is Opcode.MOV and inst.uses and isinstance(inst.uses[0], VirtualRegister):
                move_source = inst.uses[0]
            for dst in written:
                for other in live:
                    if other == dst:
                        continue
                    if move_source is not None and other == move_source:
                        graph.move_pairs.add((dst, move_source))
                        continue
                    graph.add_edge(dst, other)
                for sibling in written:
                    if sibling != dst:
                        graph.add_edge(dst, sibling)
    return graph


# ---------------------------------------------------------------------------
# RegisterIndex mechanics.
# ---------------------------------------------------------------------------


class TestRegisterIndex:
    def test_interning_is_stable(self):
        index = RegisterIndex()
        a, b = vreg(0), vreg(1)
        assert index.add(a) == 0
        assert index.add(b) == 1
        assert index.add(a) == 0  # repeated interning returns the same bit
        assert index.bit_of(b) == 1
        assert len(index) == 2
        assert a in index and vreg(99) not in index

    def test_mask_roundtrip(self):
        index = RegisterIndex()
        regs = {vreg(i) for i in range(40)}
        mask = index.mask_of(regs)
        assert index.set_of(mask) == regs
        assert set(index.iter_bits(mask)) == regs

    def test_mask_of_empty(self):
        index = RegisterIndex()
        assert index.mask_of([]) == 0
        assert index.set_of(0) == set()

    def test_masks_compose_like_sets(self):
        index = RegisterIndex()
        a = index.mask_of({vreg(0), vreg(1)})
        b = index.mask_of({vreg(1), vreg(2)})
        assert index.set_of(a | b) == {vreg(0), vreg(1), vreg(2)}
        assert index.set_of(a & b) == {vreg(1)}
        assert index.set_of(a & ~b) == {vreg(0)}


# ---------------------------------------------------------------------------
# Generic solver equivalence.
# ---------------------------------------------------------------------------


def _assert_same_solution(function, problem):
    fast = solve_dataflow(function, problem)
    slow = solve_dataflow_reference(function, problem)
    for label in function.block_labels:
        assert fast.block_in[label] == slow.block_in[label], label
        assert fast.block_out[label] == slow.block_out[label], label


class TestSolverEquivalence:
    def test_forward_union_diamond(self):
        function = diamond_function()
        problem = DataflowProblem(
            direction=Direction.FORWARD,
            meet=Meet.UNION,
            gen={"entry": {"x"}, "then": {"y"}},
            kill={"merge": {"x"}},
        )
        _assert_same_solution(function, problem)

    def test_forward_intersection_diamond(self):
        function = diamond_function()
        problem = DataflowProblem(
            direction=Direction.FORWARD,
            meet=Meet.INTERSECTION,
            gen={"then": {"x"}, "else_": {"x", "y"}},
            kill={},
        )
        _assert_same_solution(function, problem)

    def test_backward_union_loop(self):
        function = loop_function()
        problem = DataflowProblem(
            direction=Direction.BACKWARD,
            meet=Meet.UNION,
            gen={"body": {"inside"}, "exit": {"after"}},
            kill={"header": {"after"}},
        )
        _assert_same_solution(function, problem)

    def test_boundary_and_initial(self):
        function = diamond_function()
        problem = DataflowProblem(
            direction=Direction.FORWARD,
            meet=Meet.INTERSECTION,
            gen={},
            kill={"then": {"b"}},
            boundary={"a", "b"},
            universe={"a", "b", "c"},
            initial={"c"},
        )
        _assert_same_solution(function, problem)

    @given(generated_procedures(max_segments=5))
    def test_liveness_problem_on_random_cfgs(self, procedure):
        function = procedure.function
        uses, defs = {}, {}
        for block in function.blocks:
            exposed, defined = block_upward_exposed_uses(block.instructions)
            uses[block.label] = exposed
            defs[block.label] = defined
        problem = DataflowProblem(
            direction=Direction.BACKWARD, meet=Meet.UNION, gen=uses, kill=defs
        )
        _assert_same_solution(function, problem)

    @given(generated_procedures(max_segments=4))
    def test_forward_intersection_on_random_cfgs(self, procedure):
        """Availability-style problem: defs generate, uses kill (arbitrary)."""

        function = procedure.function
        gen, kill = {}, {}
        for block in function.blocks:
            exposed, defined = block_upward_exposed_uses(block.instructions)
            gen[block.label] = defined
            kill[block.label] = exposed - defined
        problem = DataflowProblem(
            direction=Direction.FORWARD, meet=Meet.INTERSECTION, gen=gen, kill=kill
        )
        _assert_same_solution(function, problem)


# ---------------------------------------------------------------------------
# Liveness and interference equivalence on random CFGs.
# ---------------------------------------------------------------------------


class TestLivenessEquivalence:
    @given(generated_procedures(max_segments=5))
    def test_block_liveness_matches_reference(self, procedure):
        function = procedure.function
        fast = compute_liveness(function)
        slow = reference_liveness(function)
        for label in function.block_labels:
            assert fast.live_in[label] == slow.live_in[label], label
            assert fast.live_out[label] == slow.live_out[label], label
            assert fast.uses[label] == slow.uses[label], label
            assert fast.defs[label] == slow.defs[label], label

    @given(generated_procedures(max_segments=4))
    def test_instruction_liveness_matches_reference(self, procedure):
        function = procedure.function
        fast = compute_liveness(function)
        slow = reference_liveness(function)
        for label in function.block_labels:
            assert live_at_each_instruction(function, fast, label) == reference_live_after(
                function, slow, label
            ), label

    @given(generated_procedures(max_segments=4))
    def test_interference_graph_matches_reference(self, procedure):
        function = procedure.function
        fast = build_interference_graph(function, compute_liveness(function))
        slow = reference_interference(function, reference_liveness(function))
        assert fast.nodes == slow.nodes
        assert fast.move_pairs == slow.move_pairs
        for register in fast.nodes:
            assert fast.neighbours(register) == slow.neighbours(register), register

    def test_interference_accepts_hand_built_liveness(self):
        """Consumers may pass a LivenessInfo made of plain sets (bits=None)."""

        function = loop_function()
        slow = reference_liveness(function)
        assert slow.bits is None
        graph = build_interference_graph(function, slow)
        reference = reference_interference(function, reference_liveness(function))
        assert graph.nodes == reference.nodes
        for register in graph.nodes:
            assert graph.neighbours(register) == reference.neighbours(register)
