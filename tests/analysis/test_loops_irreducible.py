"""Irreducibility detection and loop analysis on irreducible flowgraphs."""

from __future__ import annotations

from repro.analysis.loops import back_edges_of, compute_loop_forest, is_reducible
from repro.ir.builder import FunctionBuilder
from repro.ir.verifier import verify_function
from repro.workloads.programs import diamond_function, loop_function
from repro.workloads.scenarios import build_scenario


def two_entry_loop():
    """``entry`` branches into either half of an ``A <-> B`` cycle."""

    builder = FunctionBuilder("two_entry")
    builder.block("entry")
    value = builder.const(1)
    cond = builder.cmp_lt(value, 5)
    builder.branch(cond, "b_half")
    builder.block("a_half")
    builder.add(value, 1, value)
    leave = builder.cmp_ge(value, 10)
    builder.branch(leave, "exit")
    builder.block("b_half")
    builder.add(value, 2, value)
    builder.jump("a_half")
    builder.block("exit")
    builder.ret([value])
    function = builder.build()
    verify_function(function, require_single_exit=True)
    return function


class TestIsReducible:
    def test_straight_line_and_diamond_are_reducible(self):
        assert is_reducible(diamond_function())

    def test_natural_loop_is_reducible(self):
        assert is_reducible(loop_function())

    def test_two_entry_loop_is_irreducible(self):
        assert not is_reducible(two_entry_loop())

    def test_switch_dispatch_loop_is_reducible(self):
        # Multiway branches alone do not make a graph irreducible.
        for procedure in build_scenario("switch_dispatch", seed=0, count=2):
            assert is_reducible(procedure.function)

    def test_irreducible_family_is_certified(self):
        for procedure in build_scenario("irreducible_loop", seed=0, count=3):
            assert not is_reducible(procedure.function)


class TestLoopAnalysisOnIrreducibleGraphs:
    def test_no_natural_loop_covers_the_two_entry_cycle(self):
        function = two_entry_loop()
        forest = compute_loop_forest(function)
        # Neither a_half nor b_half dominates the other, so no back edge and
        # no natural loop exists even though the graph contains a cycle.
        assert forest.loops == []
        assert back_edges_of(function) == []

    def test_reducible_loop_has_back_edge(self):
        function = loop_function()
        assert back_edges_of(function)
        assert compute_loop_forest(function).loops
