"""Tests for SESE regions and the program structure tree."""

from hypothesis import given

from repro.analysis.dominance import EdgeDominance
from repro.analysis.pst import build_pst
from repro.analysis.sese import find_canonical_regions, find_maximal_regions
from repro.workloads.programs import diamond_function, loop_function, paper_example

from tests.conftest import generated_procedures


class TestSESERegions:
    def test_paper_example_maximal_regions(self):
        function = paper_example().function
        regions = {(r.entry_edge, r.exit_edge): r for r in find_maximal_regions(function)}
        # The four regions the paper names (Region 4 is the procedure itself).
        assert (("B", "C"), ("F", "H")) in regions
        assert (("A", "B"), ("J", "P")) in regions
        assert (("A", "I"), ("O", "P")) in regions
        assert regions[(("B", "C"), ("F", "H"))].blocks == frozenset("CDEF")
        assert regions[(("A", "B"), ("J", "P"))].blocks == frozenset("BCDEFGHJ")
        assert regions[(("A", "I"), ("O", "P"))].blocks == frozenset("IKLMNO")

    def test_diamond_regions_are_the_two_arms(self):
        regions = find_maximal_regions(diamond_function())
        blocks = {r.blocks for r in regions}
        assert frozenset({"then"}) in blocks
        assert frozenset({"else_"}) in blocks

    def test_loop_regions(self):
        # The loop body is its own region (delimited by the back edge), and
        # the maximal region between procedure entry and the exit jump wraps
        # the whole loop; hoisting spill code to its boundaries is what keeps
        # save/restore code out of loops.
        maximal = find_maximal_regions(loop_function())
        assert any(r.blocks == frozenset({"body"}) for r in maximal)
        assert any(r.blocks == frozenset({"header", "body", "after"}) for r in maximal)
        canonical = find_canonical_regions(loop_function())
        assert any(r.blocks == frozenset({"header", "body"}) for r in canonical)

    def test_canonical_regions_refine_maximal_regions(self):
        function = paper_example().function
        canonical = find_canonical_regions(function)
        maximal = find_maximal_regions(function)
        assert len(canonical) >= len(maximal)
        # Every maximal region's block set is a union of canonical block sets
        # from the same class; at minimum it must contain one of them.
        for region in maximal:
            assert any(c.blocks <= region.blocks for c in canonical)

    def test_single_block_function_has_no_regions(self):
        from repro.ir.builder import FunctionBuilder

        builder = FunctionBuilder("tiny")
        builder.block("entry")
        builder.ret()
        assert find_maximal_regions(builder.build()) == []

    @given(generated_procedures(max_segments=4))
    def test_region_boundaries_satisfy_dominance_conditions(self, procedure):
        function = procedure.function
        dominance = EdgeDominance(function)
        for region in find_maximal_regions(function):
            assert dominance.edge_dominates_edge(region.entry_edge, region.exit_edge)
            assert dominance.edge_postdominates_edge(region.exit_edge, region.entry_edge)
            for label in region.blocks:
                assert dominance.edge_dominates_block(region.entry_edge, label)
                assert dominance.edge_postdominates_block(region.exit_edge, label)

    @given(generated_procedures(max_segments=4))
    def test_regions_never_partially_overlap(self, procedure):
        regions = find_maximal_regions(procedure.function)
        for a in regions:
            for b in regions:
                intersection = a.blocks & b.blocks
                assert not intersection or a.blocks <= b.blocks or b.blocks <= a.blocks


class TestProgramStructureTree:
    def test_root_covers_whole_procedure(self):
        example = paper_example()
        pst = build_pst(example.function)
        assert pst.root.is_root
        assert pst.root.blocks == frozenset(example.function.block_labels)
        assert pst.root.entry_edge == ("__entry__", "A")
        assert pst.root.exit_edge == ("P", "__exit__")

    def test_nesting_of_paper_regions(self):
        pst = build_pst(paper_example().function)
        by_blocks = {r.blocks: r for r in pst.regions()}
        region1 = by_blocks[frozenset("CDEF")]
        region2 = by_blocks[frozenset("BCDEFGHJ")]
        region3 = by_blocks[frozenset("IKLMNO")]
        assert region1.parent is region2
        assert region2.parent is pst.root
        assert region3.parent is pst.root

    def test_topological_order_visits_children_first(self):
        pst = build_pst(paper_example().function)
        order = pst.topological_order()
        positions = {id(region): index for index, region in enumerate(order)}
        for region in pst.regions():
            for child in region.children:
                assert positions[id(child)] < positions[id(region)]
        assert order[-1] is pst.root

    def test_smallest_region_containing(self):
        pst = build_pst(paper_example().function)
        assert pst.smallest_region_containing("E").blocks == frozenset({"E"})
        assert pst.smallest_region_containing("C").blocks == frozenset("CDEF")
        assert pst.smallest_region_containing("A") is pst.root

    def test_canonical_pst_has_at_least_as_many_regions(self):
        function = paper_example().function
        assert build_pst(function, maximal=False).region_count() >= build_pst(function).region_count()

    @given(generated_procedures(max_segments=4))
    def test_every_region_nested_in_its_parent(self, procedure):
        pst = build_pst(procedure.function)
        for region in pst.interior_regions():
            assert region.parent is not None
            assert region.blocks <= region.parent.blocks
            assert region in region.parent.children

    @given(generated_procedures(max_segments=4))
    def test_depth_is_consistent(self, procedure):
        pst = build_pst(procedure.function)
        assert pst.root.depth == 0
        for region in pst.interior_regions():
            assert region.depth == region.parent.depth + 1
