"""Tests for the data-flow framework, liveness, reaching definitions, loops and webs."""

from hypothesis import given

from repro.analysis.dataflow import DataflowProblem, Direction, Meet, solve_dataflow
from repro.analysis.liveness import compute_liveness, live_at_each_instruction
from repro.analysis.loops import compute_loop_forest
from repro.analysis.reaching import compute_reaching_definitions
from repro.analysis.webs import compute_webs
from repro.ir.builder import FunctionBuilder
from repro.ir.values import VirtualRegister, vreg
from repro.workloads.programs import diamond_function, loop_function, paper_example

from tests.conftest import generated_procedures


def _straightline_two_defs():
    """Returns (function, shadowed_register, result_register)."""

    builder = FunctionBuilder("two_defs")
    builder.block("entry")
    a = builder.new_vreg()
    builder.const(1, a)
    builder.const(2, a)
    b = builder.add(a, 3)
    builder.block("exit")
    builder.ret([b])
    return builder.build(), a, b


class TestDataflowFramework:
    def test_forward_union_reaches_all_successors(self):
        function = diamond_function()
        problem = DataflowProblem(
            direction=Direction.FORWARD,
            meet=Meet.UNION,
            gen={"entry": {"x"}},
            kill={},
        )
        result = solve_dataflow(function, problem)
        assert "x" in result.leaving("entry")
        assert "x" in result.entering("merge")

    def test_forward_intersection_requires_all_paths(self):
        function = diamond_function()
        problem = DataflowProblem(
            direction=Direction.FORWARD,
            meet=Meet.INTERSECTION,
            gen={"then": {"x"}},
            kill={},
        )
        result = solve_dataflow(function, problem)
        # "x" holds only on the then-path, so it is not available at the merge.
        assert "x" not in result.entering("merge")

    def test_backward_union_propagates_to_predecessors(self):
        function = diamond_function()
        problem = DataflowProblem(
            direction=Direction.BACKWARD,
            meet=Meet.UNION,
            gen={"merge": {"y"}},
            kill={},
        )
        result = solve_dataflow(function, problem)
        assert "y" in result.entering("entry")

    def test_kill_removes_incoming_facts(self):
        function = diamond_function()
        problem = DataflowProblem(
            direction=Direction.FORWARD,
            meet=Meet.UNION,
            gen={"entry": {"x"}},
            kill={"then": {"x"}},
        )
        result = solve_dataflow(function, problem)
        assert "x" not in result.leaving("then")
        assert "x" in result.leaving("else_")

    def test_loop_reaches_fixed_point(self):
        function = loop_function()
        problem = DataflowProblem(
            direction=Direction.FORWARD,
            meet=Meet.UNION,
            gen={"body": {"inside"}},
            kill={},
        )
        result = solve_dataflow(function, problem)
        assert "inside" in result.entering("header")
        assert "inside" in result.entering("exit")


class TestLiveness:
    def test_loop_counter_is_live_around_the_loop(self):
        function = loop_function()
        liveness = compute_liveness(function)
        counter = vreg(0)  # first vreg created: the counter
        assert counter in liveness.live_in["header"]
        assert counter in liveness.live_out["body"]
        assert counter not in liveness.live_in["exit"]

    def test_dead_value_is_not_live_out(self):
        function, a, b = _straightline_two_defs()
        liveness = compute_liveness(function)
        assert a not in liveness.live_out["entry"]
        assert b in liveness.live_out["entry"]

    def test_live_at_each_instruction_shrinks_backwards(self):
        function, _a, _b = _straightline_two_defs()
        liveness = compute_liveness(function)
        after = live_at_each_instruction(function, liveness, "entry")
        assert len(after) == len(function.block("entry").instructions)
        # After the last instruction of entry, only the returned value is live.
        assert after[-1] == liveness.live_out["entry"]

    @given(generated_procedures(max_segments=4))
    def test_live_in_of_entry_contains_only_parameters(self, procedure):
        function = procedure.function
        liveness = compute_liveness(function)
        assert liveness.live_in[function.entry.label] <= set(function.params)


class TestReachingAndWebs:
    def test_shadowed_definition_does_not_reach_exit(self):
        function, a, _b = _straightline_two_defs()
        reaching = compute_reaching_definitions(function)
        defs_of_a = {d for d in reaching.reach_out["entry"] if d[2] == a}
        assert len(defs_of_a) == 1
        assert next(iter(defs_of_a))[1] == 1  # the second definition (index 1)

    def test_diamond_merges_definitions(self):
        builder = FunctionBuilder("merge_defs")
        cond = builder.new_vreg()
        x = builder.new_vreg()
        builder.block("entry")
        builder.const(1, cond)
        builder.branch(cond, "then")
        builder.block("else_")
        builder.const(10, x)
        builder.jump("join")
        builder.block("then")
        builder.const(20, x)
        builder.block("join")
        builder.ret([x])
        function = builder.build()

        reaching = compute_reaching_definitions(function)
        defs_reaching_join = {d for d in reaching.reach_in["join"] if d[2] == x}
        assert len(defs_reaching_join) == 2

        webs = compute_webs(function)
        x_webs = [w for w in webs if w.register == x]
        # Both definitions reach a common use, so they form a single web.
        assert len(x_webs) == 1
        assert len(x_webs[0].definitions) == 2

    def test_disjoint_uses_form_separate_webs(self):
        builder = FunctionBuilder("two_webs")
        x = builder.new_vreg()
        builder.block("entry")
        builder.const(1, x)
        builder.add(x, 1)
        builder.const(2, x)   # starts a new web
        builder.add(x, 2)
        builder.block("exit")
        builder.ret()
        webs = [w for w in compute_webs(builder.build()) if w.register == x]
        assert len(webs) == 2

    @given(generated_procedures(max_segments=4))
    def test_webs_partition_definitions(self, procedure):
        function = procedure.function
        reaching = compute_reaching_definitions(function)
        webs = compute_webs(function)
        all_defs = set()
        for defs in reaching.definitions.values():
            all_defs |= defs
        covered = set()
        for web in webs:
            assert not (covered & web.definitions)
            covered |= web.definitions
        assert covered == all_defs


class TestLoops:
    def test_single_loop_detected(self):
        forest = compute_loop_forest(loop_function())
        assert len(forest.loops) == 1
        loop = forest.loops[0]
        assert loop.header == "header"
        assert loop.body == {"header", "body"}
        assert forest.loop_depth("body") == 1
        assert forest.loop_depth("entry") == 0

    def test_paper_example_has_no_loops(self):
        forest = compute_loop_forest(paper_example().function)
        assert forest.loops == []
        assert forest.max_depth() == 0

    def test_nested_loops(self):
        builder = FunctionBuilder("nested")
        cond = builder.new_vreg()
        builder.block("entry")
        builder.const(1, cond)
        builder.block("outer")
        builder.branch(cond, "after")
        builder.block("inner")
        builder.branch(cond, "outer_latch")
        builder.block("inner_body")
        builder.nop()
        builder.jump("inner")
        builder.block("outer_latch")
        builder.jump("outer")
        builder.block("after")
        builder.ret()
        forest = compute_loop_forest(builder.build())
        assert len(forest.loops) == 2
        assert forest.max_depth() == 2
        inner = forest.loop_of_header["inner"]
        outer = forest.loop_of_header["outer"]
        assert inner.parent is outer
        assert outer.contains_loop(inner)
