"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest

from hypothesis import HealthCheck, settings, strategies as st

from repro.target.generic import riscish_target, tiny_target
from repro.target.parisc import parisc_target
from repro.target.registry import available_targets, get_target
from repro.workloads.generator import GeneratorConfig, generate_procedure
from repro.workloads.programs import (
    call_chain_function,
    diamond_function,
    figure1_function,
    loop_function,
    paper_example,
)

# Keep property-based tests fast and deterministic in CI-like environments.
settings.register_profile(
    "repro",
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")


# ---------------------------------------------------------------------------
# Plain fixtures.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def parisc():
    return parisc_target()


@pytest.fixture(scope="session")
def risc16():
    return riscish_target()


@pytest.fixture(scope="session")
def tiny_machine():
    return tiny_target()


@pytest.fixture(scope="session", params=available_targets())
def registered_machine(request):
    """Every registered machine description, one per parameterized run.

    Placement-invariant tests take this fixture so that the paper's
    guarantees are checked on all machine descriptions, not just the
    PA-RISC-like default.
    """

    return get_target(request.param)


@pytest.fixture()
def diamond():
    return diamond_function()


@pytest.fixture()
def loop_fn():
    return loop_function()


@pytest.fixture()
def call_chain():
    return call_chain_function()


@pytest.fixture(scope="session")
def paper():
    """The reconstructed Figure 2/3 worked example (function, profile, usage)."""

    return paper_example()


@pytest.fixture()
def figure1_cold():
    return figure1_function(hot_allocation=False)


@pytest.fixture()
def figure1_hot():
    return figure1_function(hot_allocation=True)


# ---------------------------------------------------------------------------
# Hypothesis strategies.
# ---------------------------------------------------------------------------


@st.composite
def generator_configs(draw, max_segments: int = 7):
    """Random :class:`GeneratorConfig` values covering all segment archetypes."""

    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_segments = draw(st.integers(min_value=1, max_value=max_segments))
    hot = draw(st.floats(min_value=0.05, max_value=0.99))
    cold_fraction = draw(st.floats(min_value=0.0, max_value=1.0))
    early_exit = draw(st.floats(min_value=0.05, max_value=0.95))
    accumulators = draw(st.integers(min_value=0, max_value=3))
    locals_per_region = draw(st.integers(min_value=1, max_value=3))
    weights = {
        "compute": draw(st.floats(min_value=0.0, max_value=2.0)),
        "diamond": draw(st.floats(min_value=0.0, max_value=2.0)),
        "guarded_call": draw(st.floats(min_value=0.0, max_value=2.0)),
        "early_exit_call": draw(st.floats(min_value=0.0, max_value=2.0)),
        "loop_call": draw(st.floats(min_value=0.0, max_value=1.0)),
    }
    if sum(weights.values()) <= 0.0:
        weights["compute"] = 1.0
    return GeneratorConfig(
        name=f"hyp{seed}",
        seed=seed,
        num_segments=num_segments,
        segment_weights=weights,
        hot_region_probability=hot,
        cold_region_fraction=cold_fraction,
        early_exit_probability=early_exit,
        num_accumulators=accumulators,
        locals_per_call_region=locals_per_region,
        invocations=draw(st.sampled_from([1.0, 10.0, 100.0, 1000.0])),
    )


@st.composite
def generated_procedures(draw, max_segments: int = 7):
    """Random generated procedures (function + flow-conserving profile)."""

    config = draw(generator_configs(max_segments=max_segments))
    return generate_procedure(config)


@st.composite
def random_multigraphs(draw, max_nodes: int = 8, max_extra_edges: int = 10):
    """Random connected undirected multigraphs for cycle-equivalence tests.

    A random spanning tree guarantees connectivity; extra random edges (which
    may be parallel or self loops) add the cycles.
    """

    from repro.analysis.cycle_equiv import UndirectedMultigraph

    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    graph = UndirectedMultigraph()
    for node in range(num_nodes):
        graph.add_node(node)
    edge_id = 0
    for node in range(1, num_nodes):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        graph.add_edge(parent, node, f"t{edge_id}")
        edge_id += 1
    extra = draw(st.integers(min_value=0, max_value=max_extra_edges))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        v = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        graph.add_edge(u, v, f"e{edge_id}")
        edge_id += 1
    return graph
