"""CLI surface of the workload catalog and the bytecode frontend.

``repro-spill scenarios --json`` (combination codes alongside legacy
names), ``repro-spill catalog list|show|lint``, ``repro-spill frontend
translate`` and ``repro-spill stress --catalog`` — each exercised through
:func:`repro.cli.main` exactly as a shell invocation would reach it.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.workloads.catalog import get_catalog
from repro.workloads.scenarios import scenario_names

GCD_SPEC = "repro.workloads.catalog.pyfuncs.textbook:gcd"


class TestScenariosCommand:
    def test_plain_listing_keeps_legacy_names(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        for family in scenario_names():
            assert family in output

    def test_listing_annotates_combination_codes(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        assert "switch1_MD_RED" in output

    def test_json_listing_shape(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list)
        by_name = {row["name"]: row for row in payload}
        assert set(by_name) == set(scenario_names())
        row = by_name["switch_dispatch"]
        assert row["description"]
        assert "switch1_MD_RED" in row["catalog_codes"]

    def test_every_family_lists_codes_in_json(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        for row in payload:
            assert row["catalog_codes"], f"{row['name']} has no catalog codes"


class TestCatalogCommand:
    def test_list_shows_codes_and_aliases(self, capsys):
        assert main(["catalog", "list"]) == 0
        output = capsys.readouterr().out
        assert "gcd1_MD_RED" in output
        assert "switch_dispatch" in output  # alias line

    def test_list_kind_filter(self, capsys):
        assert main(["catalog", "list", "--kind", "pyfunc"]) == 0
        output = capsys.readouterr().out
        assert "gcd1_MD_RED" in output
        # Entry rows stop at the blank line (alias lines follow); with the
        # filter every remaining row's kind column must be pyfunc.
        rows = output.split("\n\n")[0].splitlines()
        assert rows and all(row.split()[1] == "pyfunc" for row in rows)

    def test_list_json_round_trips_the_catalog(self, capsys):
        assert main(["catalog", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        catalog = get_catalog()
        assert payload["schema"] == "workload-catalog/v1"
        assert payload["version"] == catalog.version
        assert {row["name"] for row in payload["entries"]} == set(catalog.names())
        assert payload["aliases"] == dict(catalog.aliases)

    def test_show_resolves_aliases(self, capsys):
        assert main(["catalog", "show", "switch_dispatch"]) == 0
        output = capsys.readouterr().out
        assert "switch1_MD_RED" in output

    def test_show_json_carries_the_entry_fields(self, capsys):
        assert main(["catalog", "show", "gcd1_MD_RED", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "pyfunc"
        assert payload["module"] == "textbook"
        assert payload["func"] == "gcd"
        assert payload["inputs"]

    def test_show_unknown_name_fails(self, capsys):
        assert main(["catalog", "show", "nonesuch99_MD_RED"]) == 2
        assert "unknown catalog entry" in capsys.readouterr().err

    def test_lint_passes_on_the_checked_in_catalog(self, capsys):
        assert main(["catalog", "lint"]) == 0
        assert "catalog ok" in capsys.readouterr().out


class TestFrontendCommand:
    def test_translate_prints_ir_and_fingerprint(self, capsys):
        assert main(["frontend", "translate", GCD_SPEC]) == 0
        output = capsys.readouterr().out
        assert "func pyfunc.textbook.gcd(" in output
        assert "; fingerprint:" in output
        assert "; python    :" in output

    def test_translate_fingerprint_only_is_stable(self, capsys):
        assert main(["frontend", "translate", GCD_SPEC, "--fingerprint-only"]) == 0
        first = capsys.readouterr().out.strip()
        assert main(["frontend", "translate", GCD_SPEC, "--fingerprint-only"]) == 0
        second = capsys.readouterr().out.strip()
        assert first == second
        assert len(first.splitlines()) == 1

    def test_unsupported_function_exits_one_and_names_the_opcode(self, capsys):
        spec = "repro.service.loadgen:build_request_plan"
        assert main(["frontend", "translate", spec]) == 1
        err = capsys.readouterr().err
        assert "unsupported" in err.lower() or "_" in err  # names an opcode

    def test_bad_spec_exits_two(self, capsys):
        assert main(["frontend", "translate", "no.such.module:f"]) == 2
        assert main(["frontend", "translate", "colonless"]) == 2


class TestStressCatalogFlag:
    def test_catalog_sweep_over_one_entry(self, capsys):
        assert main(
            ["stress", "--catalog", "--scenario", "gcd1_MD_RED",
             "--target", "parisc", "--count", "1"]
        ) == 0
        output = capsys.readouterr().out
        assert "gcd1_MD_RED" in output
        assert "0 violation(s)" in output

    def test_catalog_accepts_aliases(self, capsys):
        assert main(
            ["stress", "--catalog", "--scenario", "switch_dispatch",
             "--target", "tiny", "--count", "1"]
        ) == 0
        assert "switch1_MD_RED" in capsys.readouterr().out

    def test_unknown_catalog_entry_rejected(self, capsys):
        assert main(["stress", "--catalog", "--scenario", "bogus1_MD_RED"]) == 2
        err = capsys.readouterr().err
        assert "unknown catalog entr" in err
        assert "repro-spill catalog list" in err
