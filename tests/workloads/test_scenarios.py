"""The scenario registry: determinism, family properties, pipeline coverage."""

from __future__ import annotations

import pytest

from repro.analysis.loops import compute_loop_forest, is_reducible
from repro.ir.fingerprint import fingerprint_function, fingerprint_profile
from repro.ir.instructions import Opcode
from repro.ir.parser import parse_function
from repro.ir.printer import print_function
from repro.ir.verifier import verify_function
from repro.pipeline.compiler import compile_procedure
from repro.spill.cost_models import requires_jump_block
from repro.spill.hierarchical import place_hierarchical
from repro.spill.insertion import apply_placement
from repro.target.registry import get_target
from repro.workloads.scenarios import (
    SCENARIO_FAMILIES,
    build_scenario,
    build_scenario_suite,
    get_scenario,
    scenario_names,
)


class TestRegistry:
    def test_expected_families_are_registered(self):
        names = scenario_names()
        for required in (
            "switch_dispatch",
            "irreducible_loop",
            "deep_loop_nest",
            "call_web",
            "pressure_sweep",
            "classic_mix",
            "chaos_cfg",
        ):
            assert required in names

    def test_get_scenario_rejects_unknown_name(self):
        with pytest.raises(KeyError):
            get_scenario("no_such_family")

    def test_every_family_produces_verified_single_exit_functions(self):
        for family in SCENARIO_FAMILIES:
            for procedure in family.build(seed=0, count=2):
                verify_function(procedure.function, require_single_exit=True)

    def test_build_scenario_suite_selects_subset(self):
        suite = build_scenario_suite(names=["call_web"], count=1)
        assert list(suite) == ["call_web"]
        assert len(suite["call_web"]) == 1


class TestDeterminism:
    @pytest.mark.parametrize("name", scenario_names())
    def test_same_seed_same_fingerprints(self, name):
        first = build_scenario(name, seed=11, count=2)
        second = build_scenario(name, seed=11, count=2)
        assert [fingerprint_function(p.function) for p in first] == [
            fingerprint_function(p.function) for p in second
        ]
        assert [fingerprint_profile(p.profile) for p in first] == [
            fingerprint_profile(p.profile) for p in second
        ]

    def test_different_seeds_differ_somewhere(self):
        a = build_scenario("chaos_cfg", seed=0, count=3)
        b = build_scenario("chaos_cfg", seed=1, count=3)
        assert [fingerprint_function(p.function) for p in a] != [
            fingerprint_function(p.function) for p in b
        ]

    @pytest.mark.parametrize("name", scenario_names())
    def test_round_trip_preserves_fingerprints(self, name):
        for procedure in build_scenario(name, seed=2, count=2):
            text = print_function(procedure.function)
            assert fingerprint_function(parse_function(text)) == fingerprint_function(
                procedure.function
            )


class TestFamilyShapes:
    def test_switch_dispatch_contains_critical_multiway_edges(self):
        for procedure in build_scenario("switch_dispatch", seed=0, count=3):
            function = procedure.function
            switches = [
                block
                for block in function.blocks
                if block.terminator is not None and block.terminator.is_switch()
            ]
            assert len(switches) >= 2
            critical = [
                edge
                for block in switches
                for edge in function.block_out_edges(block.label)
                if requires_jump_block(function, edge.key)
            ]
            assert critical, "every dispatch edge should be critical"

    def test_irreducible_family_is_irreducible_with_occupancy_in_cycle(self, parisc):
        from repro.regalloc import allocate_registers

        for procedure in build_scenario("irreducible_loop", seed=0, count=2, machine=parisc):
            assert not is_reducible(procedure.function)
            allocation = allocate_registers(procedure.function, parisc, procedure.profile)
            assert allocation.usage.used_registers(), "cycle must occupy callee-saved"

    def test_deep_loop_nest_reaches_depth_three(self):
        depths = [
            compute_loop_forest(p.function).max_depth()
            for p in build_scenario("deep_loop_nest", seed=0, count=4)
        ]
        assert max(depths) >= 3

    def test_call_web_occupies_several_callee_saved_registers(self, parisc):
        from repro.regalloc import allocate_registers

        widths = []
        for procedure in build_scenario("call_web", seed=0, count=3, machine=parisc):
            allocation = allocate_registers(procedure.function, parisc, procedure.profile)
            widths.append(len(allocation.usage.used_registers()))
        assert max(widths) >= 2

    def test_pressure_sweep_is_monotone_in_demand(self, parisc):
        from repro.regalloc import allocate_registers

        occupied = []
        for procedure in build_scenario("pressure_sweep", seed=0, count=6, machine=parisc):
            allocation = allocate_registers(procedure.function, parisc, procedure.profile)
            occupied.append(len(allocation.usage.used_registers()))
        assert occupied == sorted(occupied)
        assert occupied[-1] > occupied[0]

    def test_chaos_cfg_draws_switches_and_irreducible_graphs_somewhere(self):
        saw_switch = False
        saw_irreducible = False
        for seed in range(6):
            for procedure in build_scenario("chaos_cfg", seed=seed, count=4):
                instructions = list(procedure.function.instructions())
                saw_switch = saw_switch or any(
                    inst.opcode is Opcode.SWITCH for inst in instructions
                )
                saw_irreducible = saw_irreducible or not is_reducible(procedure.function)
        assert saw_switch
        assert saw_irreducible


class TestPipelineCoverage:
    """The diverse families *provably reach* hierarchical placement."""

    @pytest.mark.parametrize("name", ("switch_dispatch", "irreducible_loop", "chaos_cfg"))
    def test_family_compiles_with_verification_on_every_target(
        self, registered_machine, name
    ):
        for procedure in build_scenario(name, seed=0, count=2, machine=registered_machine):
            compiled = compile_procedure(procedure, machine=registered_machine, verify=True)
            assert "optimized" in compiled.outcomes
            for outcome in compiled.outcomes.values():
                assert outcome.callee_saved_overhead >= 0.0

    def test_switch_dispatch_hierarchical_places_on_multiway_edges(self, parisc):
        """Hierarchical placement actually sinks spill code onto critical
        switch edges and materializes jump blocks there — asserted, not just
        generated."""

        reached = False
        for procedure in build_scenario("switch_dispatch", seed=0, count=4, machine=parisc):
            compiled = compile_procedure(procedure, machine=parisc, verify=True)
            allocated = compiled.allocation.function
            placement = compiled.outcomes["optimized"].placement
            switch_blocks = {
                block.label
                for block in allocated.blocks
                if block.terminator is not None and block.terminator.is_switch()
            }
            on_switch = [
                location
                for location in placement.locations()
                if location.edge[0] in switch_blocks
                and requires_jump_block(allocated, location.edge)
            ]
            if not on_switch:
                continue
            reached = True
            final = allocated.clone()
            insertion = apply_placement(final, placement)
            assert insertion.inserted_jumps > 0
            verify_function(final, require_single_exit=True)
            assert compiled.callee_saved_overhead("optimized") < compiled.callee_saved_overhead(
                "baseline"
            )
        assert reached, "no procedure placed spill code on a critical multiway edge"

    @pytest.mark.parametrize("seed", range(4))
    def test_chaos_verifier_invariants_hold_for_many_seeds(self, parisc, seed):
        """Property: every technique's placement verifies on arbitrary CFGs."""

        for procedure in build_scenario("chaos_cfg", seed=seed, count=4, machine=parisc):
            compile_procedure(procedure, machine=parisc, verify=True)

    def test_warm_cache_runs_stay_bit_identical_on_new_families(self, tmp_path, parisc):
        from repro.cache.store import CompileCache

        procedures = []
        for name in ("switch_dispatch", "irreducible_loop", "chaos_cfg"):
            procedures.extend(build_scenario(name, seed=0, count=2, machine=parisc))
        cache = CompileCache(str(tmp_path))

        def views(results):
            return [
                (
                    compiled.name,
                    compiled.allocator_overhead,
                    tuple(
                        (technique, compiled.callee_saved_overhead(technique))
                        for technique in sorted(compiled.outcomes)
                    ),
                )
                for compiled in results
            ]

        cold = [
            compile_procedure(p, machine=parisc, cache=cache) for p in procedures
        ]
        warm = [
            compile_procedure(p, machine=parisc, cache=cache) for p in procedures
        ]
        assert views(warm) == views(cold)
        assert cache.stats.hits >= len(procedures)

    def test_irreducible_family_reaches_hierarchical_with_decisions(self, parisc):
        """The PST traversal runs (and the verifier passes) on irreducible
        control flow — the region machinery is exercised, not skipped."""

        from repro.regalloc import allocate_registers
        from repro.spill.verifier import verify_placement

        for procedure in build_scenario("irreducible_loop", seed=0, count=2, machine=parisc):
            allocation = allocate_registers(procedure.function, parisc, procedure.profile)
            result = place_hierarchical(
                allocation.function, allocation.usage, procedure.profile, machine=parisc
            )
            assert result.pst.region_count() >= 1
            assert result.decisions, "the PST traversal must compare at least one region"
            verify_placement(allocation.function, allocation.usage, result.placement)
