"""The versioned workload catalog: loading, validation, aliases, pressure."""

from __future__ import annotations

import os

import pytest

from repro.ir.fingerprint import fingerprint_function
from repro.target.registry import get_target
from repro.workloads.catalog import (
    COMBINATION_CODE,
    CatalogError,
    catalog_directory,
    get_catalog,
    load_catalog,
)
from repro.workloads.scenarios import build_scenario, scenario_names


@pytest.fixture(scope="module")
def catalog():
    return get_catalog()


class TestLoading:
    def test_loads_and_lints_clean(self, catalog):
        assert catalog.lint() == []

    def test_every_name_is_a_combination_code(self, catalog):
        for name in catalog.names():
            assert COMBINATION_CODE.match(name), name

    def test_every_scenario_family_has_codes(self, catalog):
        for family in scenario_names():
            assert catalog.codes_for_family(family), f"{family} uncatalogued"

    def test_reload_is_deterministic(self, catalog):
        again = load_catalog(catalog_directory())
        assert again.names() == catalog.names()
        assert again.aliases == catalog.aliases

    def test_kind_filter(self, catalog):
        scenario_entries = catalog.names("scenario")
        pyfunc_entries = catalog.names("pyfunc")
        assert scenario_entries and pyfunc_entries
        assert set(scenario_entries) | set(pyfunc_entries) == set(catalog.names())
        assert not set(scenario_entries) & set(pyfunc_entries)


class TestAliases:
    def test_legacy_family_names_are_aliases(self, catalog):
        for family in scenario_names():
            assert family in catalog.aliases, f"{family} has no back-compat alias"

    def test_alias_resolves_to_md_entry(self, catalog):
        entry = catalog.resolve("switch_dispatch")
        assert entry.name == "switch1_MD_RED"
        assert entry.pressure == "MD"

    def test_alias_and_code_resolve_identically(self, catalog):
        via_alias = catalog.resolve("switch_dispatch")
        via_code = catalog.resolve("switch1_MD_RED")
        assert via_alias is via_code

    def test_unknown_name_raises_with_expectations(self, catalog):
        with pytest.raises(KeyError) as excinfo:
            catalog.resolve("nonesuch99_MD_RED")
        assert "unknown catalog entry" in excinfo.value.args[0]


class TestScenarioEntries:
    def test_md_entry_is_bit_identical_to_legacy_builder(self, catalog):
        """MD (scale 1.0) must regenerate the registry's exact procedures —
        the back-compat contract that lets aliases stand in for family names."""

        machine = get_target("parisc")
        for family in scenario_names():
            entry = catalog.resolve(family)  # alias -> MD entry
            legacy = build_scenario(family, seed=5, count=2, machine=machine)
            for index, expected in enumerate(legacy):
                generated = entry.build(5, index, machine)
                assert fingerprint_function(generated.function) == (
                    fingerprint_function(expected.function)
                ), f"{family}[{index}] diverged from the registry"

    def test_pressure_variants_change_the_program(self, catalog):
        machine = get_target("parisc")
        differing = 0
        for family in scenario_names():
            codes = catalog.codes_for_family(family)
            fingerprints = {
                code: fingerprint_function(
                    catalog.resolve(code).build(5, 0, machine).function
                )
                for code in codes
            }
            if len(set(fingerprints.values())) > 1:
                differing += 1
        assert differing >= 5, "pressure scaling is inert for most families"

    def test_build_is_deterministic(self, catalog):
        entry = catalog.resolve("irloop1_HI_IRR")
        machine = get_target("riscish")
        first = entry.build(9, 1, machine)
        second = entry.build(9, 1, machine)
        assert fingerprint_function(first.function) == (
            fingerprint_function(second.function)
        )


class TestPyfuncEntries:
    def test_build_produces_translated_procedure(self, catalog):
        entry = catalog.resolve("gcd1_MD_RED")
        generated = entry.build(0, 0, get_target("parisc"))
        assert generated.function.name == "pyfunc.textbook.gcd"
        assert generated.profile.invocations > 0
        assert generated.segments[0] == "pyfunc"

    def test_profile_is_execution_derived(self, catalog):
        """The attached profile must carry real edge counts from running the
        translated function, not a uniform guess."""

        entry = catalog.resolve("gcd1_MD_RED")
        generated = entry.build(0, 0, get_target("parisc"))
        counts = set(generated.profile.edge_counts.values())
        assert len(counts) > 1, "profile looks uniform"

    def test_inputs_match_python_signature(self, catalog):
        from repro.workloads.catalog import corpus_functions

        for name in catalog.names("pyfunc"):
            entry = catalog.resolve(name)
            func = corpus_functions(entry.module)[entry.func]
            assert len(entry.inputs) == func.__code__.co_argcount, name

    def test_pressure_scales_input_spans(self, catalog):
        import random

        lo = catalog.resolve("gcd1_LO_RED")
        hi = catalog.resolve("gcd1_HI_RED")
        lo_args = lo.draw_inputs(random.Random("x"))
        hi_args = hi.draw_inputs(random.Random("x"))
        assert len(lo_args) == len(hi_args) == 2


class TestSchemaValidation:
    def write(self, tmp_path, body):
        path = tmp_path / "bad.toml"
        path.write_text(body, encoding="utf-8")
        return str(tmp_path)

    def header(self):
        return '[catalog]\nschema = "workload-catalog/v1"\nversion = 1\n\n'

    def test_missing_header_rejected(self, tmp_path):
        directory = self.write(tmp_path, '[[entry]]\nname = "x1_MD_RED"\n')
        with pytest.raises(CatalogError):
            load_catalog(directory)

    def test_bad_combination_code_rejected(self, tmp_path):
        directory = self.write(
            tmp_path,
            self.header()
            + '[[entry]]\nname = "Bad_Name"\nkind = "scenario"\n'
            + 'description = "d"\nfamily = "switch_dispatch"\n',
        )
        with pytest.raises(CatalogError) as excinfo:
            load_catalog(directory)
        assert "combination code" in str(excinfo.value)

    def test_unknown_family_rejected(self, tmp_path):
        directory = self.write(
            tmp_path,
            self.header()
            + '[[entry]]\nname = "x1_MD_RED"\nkind = "scenario"\n'
            + 'description = "d"\nfamily = "no_such_family"\n',
        )
        with pytest.raises(CatalogError):
            load_catalog(directory)

    def test_duplicate_names_rejected(self, tmp_path):
        entry = (
            '[[entry]]\nname = "x1_MD_RED"\nkind = "scenario"\n'
            'description = "d"\nfamily = "switch_dispatch"\n\n'
        )
        directory = self.write(tmp_path, self.header() + entry + entry)
        with pytest.raises(CatalogError) as excinfo:
            load_catalog(directory)
        assert "duplicate" in str(excinfo.value)

    def test_alias_must_target_existing_entry(self, tmp_path):
        directory = self.write(
            tmp_path,
            self.header()
            + '[[entry]]\nname = "x1_MD_RED"\nkind = "scenario"\n'
            + 'description = "d"\nfamily = "switch_dispatch"\n\n'
            + '[alias]\nghost = "y1_MD_RED"\n',
        )
        with pytest.raises(CatalogError):
            load_catalog(directory)

    def test_pyfunc_requires_inputs(self, tmp_path):
        directory = self.write(
            tmp_path,
            self.header()
            + '[[entry]]\nname = "x1_MD_RED"\nkind = "pyfunc"\n'
            + 'description = "d"\nmodule = "textbook"\nfunc = "gcd"\n',
        )
        with pytest.raises(CatalogError):
            load_catalog(directory)

    def test_checked_in_catalog_directory_exists(self):
        directory = catalog_directory()
        assert os.path.isdir(directory)
        assert any(name.endswith(".toml") for name in os.listdir(directory))
