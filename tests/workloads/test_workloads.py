"""Tests for the hand-written programs, the generator and the SPEC-like suite."""

import pytest

from hypothesis import given

from repro.ir.cfg import EdgeKind
from repro.ir.verifier import verify_function
from repro.workloads.generator import GeneratorConfig, generate_procedure, generate_procedures
from repro.workloads.programs import call_chain_function, diamond_function, figure1_function, loop_function, paper_example
from repro.workloads.spec_like import SPEC_BENCHMARKS, build_benchmark, build_suite, spec_by_name

from tests.conftest import generator_configs


class TestPrograms:
    def test_paper_example_profile_matches_figure2(self):
        example = paper_example()
        profile = example.profile
        assert profile.invocations == 100
        assert profile.edge_count(("A", "B")) == 70
        assert profile.edge_count(("D", "F")) == 30
        assert profile.edge_count(("I", "L")) == 5
        example.profile.validate(example.function)

    def test_paper_example_edge_kinds(self):
        example = paper_example()
        edges = {e.key: e.kind for e in example.function.edges()}
        assert edges[("D", "F")] is EdgeKind.JUMP
        assert edges[("C", "D")] is EdgeKind.FALLTHROUGH
        assert edges[("A", "I")] is EdgeKind.JUMP
        assert edges[("J", "P")] is EdgeKind.JUMP

    def test_paper_example_occupancy_blocks(self):
        example = paper_example()
        assert example.usage.blocks_for(example.register) == frozenset("DEGKN")

    def test_figure1_variants_share_structure(self):
        cold_fn, cold_profile, _ = figure1_function(False)
        hot_fn, hot_profile, _ = figure1_function(True)
        assert cold_fn.block_labels == hot_fn.block_labels
        assert cold_profile.edge_count(("entry", "use_left")) < hot_profile.edge_count(("entry", "use_left"))

    @pytest.mark.parametrize("factory", [diamond_function, loop_function, call_chain_function])
    def test_helper_programs_verify(self, factory):
        verify_function(factory(), require_single_exit=True)


class TestGenerator:
    def test_generation_is_deterministic_for_a_seed(self):
        config = GeneratorConfig(name="det", seed=42, num_segments=5)
        first = generate_procedure(config)
        second = generate_procedure(config)
        from repro.ir.printer import print_function

        assert print_function(first.function) == print_function(second.function)
        assert first.profile.edge_counts == second.profile.edge_counts

    def test_different_seeds_differ(self):
        a = generate_procedure(GeneratorConfig(name="a", seed=1, num_segments=5))
        b = generate_procedure(GeneratorConfig(name="a", seed=2, num_segments=5))
        from repro.ir.printer import print_function

        assert print_function(a.function) != print_function(b.function)

    def test_segment_archetypes_are_recorded(self):
        config = GeneratorConfig(
            name="kinds", seed=3, num_segments=6,
            segment_weights={"compute": 0, "diamond": 0, "guarded_call": 1,
                             "early_exit_call": 0, "loop_call": 0},
        )
        procedure = generate_procedure(config)
        assert procedure.segments == ["guarded_call"] * 6

    def test_loop_segments_create_back_edges(self):
        config = GeneratorConfig(
            name="loops", seed=5, num_segments=3,
            segment_weights={"compute": 0, "diamond": 0, "guarded_call": 0,
                             "early_exit_call": 0, "loop_call": 1},
        )
        procedure = generate_procedure(config)
        from repro.analysis.loops import compute_loop_forest

        assert len(compute_loop_forest(procedure.function).loops) == 3

    def test_early_exit_segments_create_critical_jump_edges(self):
        config = GeneratorConfig(
            name="ee", seed=6, num_segments=2,
            segment_weights={"compute": 0, "diamond": 0, "guarded_call": 0,
                             "early_exit_call": 1, "loop_call": 0},
        )
        procedure = generate_procedure(config)
        from repro.spill.cost_models import requires_jump_block

        critical = [e for e in procedure.function.edges()
                    if requires_jump_block(procedure.function, e.key)]
        assert critical

    def test_generate_procedures_varies_seed_and_name(self):
        base = GeneratorConfig(name="batch", seed=10, num_segments=2)
        procedures = generate_procedures(base, 3)
        assert [p.name for p in procedures] == ["batch_0", "batch_1", "batch_2"]
        assert len({p.function.instruction_count() for p in procedures}) >= 1

    @given(generator_configs(max_segments=5))
    def test_random_configs_produce_valid_functions_and_profiles(self, config):
        procedure = generate_procedure(config)
        verify_function(procedure.function, require_single_exit=True)
        assert procedure.profile.check_flow_conservation(procedure.function) == []
        assert procedure.profile.invocations == config.invocations


class TestSpecSuite:
    def test_eleven_benchmarks_in_paper_order(self):
        names = [spec.name for spec in SPEC_BENCHMARKS]
        assert names == ["gzip", "vpr", "gcc", "mcf", "crafty", "parser",
                         "perlbmk", "gap", "vortex", "bzip2", "twolf"]

    def test_every_spec_has_paper_reference_ratios(self):
        for spec in SPEC_BENCHMARKS:
            assert spec.paper_optimized_ratio is not None
            assert spec.paper_shrinkwrap_ratio is not None

    def test_gcc_is_the_largest_benchmark(self):
        sizes = {spec.name: spec.num_procedures for spec in SPEC_BENCHMARKS}
        assert sizes["gcc"] == max(sizes.values())

    def test_build_benchmark_is_deterministic(self):
        first = build_benchmark(spec_by_name("gzip"), scale=0.3)
        second = build_benchmark(spec_by_name("gzip"), scale=0.3)
        assert [p.name for p in first.procedures] == [p.name for p in second.procedures]
        assert first.num_instructions() == second.num_instructions()

    def test_scale_controls_procedure_count(self):
        small = build_benchmark(spec_by_name("parser"), scale=0.25)
        full = build_benchmark(spec_by_name("parser"), scale=1.0)
        assert len(small.procedures) < len(full.procedures)

    def test_build_suite_subset(self):
        suite = build_suite(names=["mcf", "gzip"], scale=0.25)
        assert [b.name for b in suite] == ["mcf", "gzip"]
        for benchmark in suite:
            for procedure in benchmark.procedures:
                verify_function(procedure.function, require_single_exit=True)

    def test_unknown_benchmark_name_rejected(self):
        with pytest.raises(KeyError):
            spec_by_name("eon")   # the C++ benchmark the paper excludes
