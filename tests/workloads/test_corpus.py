"""Regression corpus: stress-harness-found programs as parser round-tripped fixtures.

Every ``tests/workloads/corpus/*.ir`` file is a textual-IR program the
differential stress harness surfaced as interesting (a broken or boundary
behaviour at the time it was found).  The tests parse each fixture, check the
parser↔printer round trip preserves its fingerprint, and compile it with
verification on — so the behaviours stay fixed forever, independently of the
scenario generators that originally produced them.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.loops import is_reducible
from repro.ir.fingerprint import fingerprint_function
from repro.ir.instructions import Opcode
from repro.ir.parser import parse_function
from repro.ir.printer import print_function
from repro.ir.verifier import verify_function
from repro.pipeline.compiler import compile_procedure
from repro.profiling.synthetic import (
    profile_from_branch_probabilities,
    uniform_profile,
)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
FIXTURES = sorted(
    name for name in os.listdir(CORPUS_DIR) if name.endswith(".ir")
)


def load_fixture(name: str):
    """Parse one corpus program and its recorded profile (uniform if absent)."""

    path = os.path.join(CORPUS_DIR, name)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    function = parse_function(text)
    profile_path = path[: -len(".ir")] + ".profile.json"
    if os.path.exists(profile_path):
        with open(profile_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        probabilities = {
            tuple(key.split("->", 1)): value
            for key, value in data["probabilities"].items()
        }
        profile = profile_from_branch_probabilities(
            function, invocations=data["invocations"], probabilities=probabilities
        )
    else:
        profile = uniform_profile(function, invocations=1000.0)
    return function, profile


@pytest.mark.parametrize("name", FIXTURES)
class TestEveryFixture:
    def test_parses_verifies_and_round_trips(self, name):
        function, _ = load_fixture(name)
        verify_function(function, require_single_exit=True)
        text = print_function(function)
        assert fingerprint_function(parse_function(text)) == fingerprint_function(
            function
        )

    @pytest.mark.parametrize("target", ("parisc", "tiny"))
    def test_compiles_with_verification(self, name, target):
        function, profile = load_fixture(name)
        compiled = compile_procedure((function, profile), machine=target, verify=True)
        for technique in ("baseline", "shrinkwrap", "optimized"):
            assert compiled.callee_saved_overhead(technique) >= 0.0

    def test_profile_sidecar_conserves_flow(self, name):
        """Every recorded (or defaulted) profile satisfies Kirchhoff's law —
        the R008 lint rule must never fire on the committed corpus."""

        function, profile = load_fixture(name)
        assert profile.check_flow_conservation(function) == []

    def test_lint_profile_rules_are_clean(self, name):
        """The profile-shape rules (R008/R009) are silent on the corpus:
        names match and every counted edge exists in the CFG."""

        from repro.lint import lint_function

        function, profile = load_fixture(name)
        report = lint_function(
            function, profile=profile, select=["R008", "R009"]
        )
        assert report.diagnostics == (), report.render()


class TestFixtureSpecifics:
    def test_jump_blind_execution_count_program(self):
        """The stress find: under the execution-count model the hierarchical
        placement is save/restore-optimal yet its *materialized* total
        (jump blocks included) exceeds entry/exit — the program that
        motivates the jump-edge cost model."""

        function, profile = load_fixture("jump_blind_execution_count.ir")
        compiled = compile_procedure(
            (function, profile), machine="parisc", cost_model="execution_count"
        )
        optimized = compiled.outcomes["optimized"].overhead
        baseline = compiled.outcomes["baseline"].overhead
        assert (
            optimized.save_count + optimized.restore_count
            <= baseline.save_count + baseline.restore_count + 1e-6
        )
        assert optimized.num_jump_blocks > 0
        assert optimized.total > baseline.total
        # The jump-edge model avoids the trap on the same program.
        with_jump_model = compile_procedure(
            (function, profile), machine="parisc", cost_model="jump_edge"
        )
        assert (
            with_jump_model.outcomes["optimized"].overhead.total
            <= baseline.total + 1e-6
        )

    def test_switch_critical_multiway_program(self):
        function, profile = load_fixture("switch_critical_multiway.ir")
        switches = [
            block.terminator
            for block in function.blocks
            if block.terminator is not None and block.terminator.is_switch()
        ]
        assert len(switches) == 2
        compiled = compile_procedure((function, profile), machine="parisc")
        assert compiled.callee_saved_overhead("optimized") < compiled.callee_saved_overhead(
            "baseline"
        )

    def test_irreducible_two_entry_program(self):
        function, _ = load_fixture("irreducible_two_entry.ir")
        assert not is_reducible(function)

    def test_chaos_program_is_irreducible_and_switch_bearing(self):
        function, _ = load_fixture("chaos_irreducible_switch.ir")
        assert not is_reducible(function)
        assert any(
            inst.opcode is Opcode.SWITCH for inst in function.instructions()
        )
