"""Mutation sweep over the rule catalog: every rule fires on a crafted fixture.

Each fixture is the *smallest* program (or program+profile pair) exhibiting
one defect, so a rule that silently stops firing turns exactly one test red.
The fixtures are parsed, never verified — several defects (unreachable
blocks, duplicate switch targets, stuck regions) are ones the structural
verifier would reject, and lint must diagnose them on raw IR.
"""

from __future__ import annotations

import pytest

from repro.ir.parser import parse_function
from repro.lint import RULES, Severity, all_rules, lint_function
from repro.profiling.profile_data import EdgeProfile
from repro.profiling.synthetic import uniform_profile
from repro.target.registry import get_target

CLEAN = """
func clean(v0) {
entry:
  add v1, v0, #1
  ret v1
}
"""

R001_UNINIT = """
func r001() {
entry:
  add v1, v0, #1
  ret v1
}
"""

R002_DEAD = """
func r002() {
entry:
  li v0, #1
  li v1, #2
  ret v1
}
"""

R003_ISLAND = """
func r003() {
entry:
  li v0, #1
  jmp @out
island:
  li v1, #2
  jmp @out
out:
  ret v0
}
"""

R004_IRREDUCIBLE = """
func r004() {
entry:
  li v0, #1
  cmplt v1, v0, #5
  br v1, @b
a:
  add v0, v0, #1
  cmpge v2, v0, #10
  br v2, @done
b:
  add v0, v0, #2
  jmp @a
done:
  ret v0
}
"""

R005_CRITICAL_SWITCH = """
func r005() {
entry:
  li v0, #1
  cmplt v1, v0, #5
  br v1, @sw
pre:
  jmp @shared
sw:
  switch v0, @shared, @other
other:
  jmp @shared
shared:
  ret v0
}
"""

R006_DEGENERATE_SWITCH = """
func r006() {
entry:
  li v0, #1
  switch v0, @only
only:
  ret v0
}
"""

R007_SPIN = """
func r007() {
entry:
  li v0, #1
  cmplt v1, v0, #5
  br v1, @spin
out:
  ret v0
spin:
  add v0, v0, #1
  jmp @spin
}
"""

R010_PRESSURE = """
func r010() {
entry:
  li v0, #1
  li v1, #2
  li v2, #3
  call @ext(v0) -> (v3)
  add v4, v0, v1
  add v5, v4, v2
  add v6, v5, v3
  ret v6
}
"""


def codes(report):
    return sorted({d.code for d in report.diagnostics})


class TestEveryRuleFires:
    """One red fixture per rule; the lint must find exactly that defect."""

    def test_clean_function_produces_empty_report(self):
        report = lint_function(
            parse_function(CLEAN),
            profile=None,
            machine=get_target("parisc"),
        )
        assert report.diagnostics == ()
        assert not report.has_errors()

    def test_r001_uninitialized_read(self):
        report = lint_function(parse_function(R001_UNINIT))
        assert codes(report) == ["R001"]
        (diag,) = report.diagnostics
        assert diag.severity is Severity.ERROR
        assert diag.block == "entry" and diag.instruction == 0
        assert "v0" in diag.message

    def test_r001_exempts_parameters(self):
        report = lint_function(parse_function(CLEAN))
        assert "R001" not in codes(report)

    def test_r002_dead_definition(self):
        report = lint_function(parse_function(R002_DEAD))
        assert codes(report) == ["R002"]
        (diag,) = report.diagnostics
        assert diag.severity is Severity.WARN
        assert "v0" in diag.message

    def test_r003_unreachable_block(self):
        report = lint_function(parse_function(R003_ISLAND))
        assert "R003" in codes(report)
        diag = next(d for d in report.diagnostics if d.code == "R003")
        assert diag.block == "island"
        assert diag.severity is Severity.ERROR
        assert report.has_errors()

    def test_r004_irreducible_cfg(self):
        report = lint_function(parse_function(R004_IRREDUCIBLE))
        assert codes(report) == ["R004"]
        (diag,) = report.diagnostics
        assert diag.block is None  # function-level finding

    def test_r005_critical_switch_edge(self):
        report = lint_function(parse_function(R005_CRITICAL_SWITCH))
        assert codes(report) == ["R005"]
        (diag,) = report.diagnostics
        assert diag.block == "sw"
        assert "shared" in diag.message

    def test_r006_degenerate_switch(self):
        report = lint_function(parse_function(R006_DEGENERATE_SWITCH))
        assert "R006" in codes(report)
        diag = next(d for d in report.diagnostics if d.code == "R006")
        assert "use jmp" in diag.message

    def test_r007_side_effect_free_infinite_loop(self):
        report = lint_function(parse_function(R007_SPIN))
        assert "R007" in codes(report)
        diag = next(d for d in report.diagnostics if d.code == "R007")
        assert diag.block == "spin"

    def test_r007_spares_loops_with_side_effects(self):
        spinning_call = R007_SPIN.replace(
            "add v0, v0, #1", "call @effect(v0)"
        )
        report = lint_function(parse_function(spinning_call))
        assert "R007" not in codes(report)

    def test_r008_profile_flow_violation(self):
        function = parse_function(R004_IRREDUCIBLE)
        bad = EdgeProfile(
            function_name=function.name,
            invocations=100.0,
            edge_counts={("entry", "a"): 999.0, ("entry", "b"): 1.0},
        )
        report = lint_function(function, profile=bad)
        assert "R008" in codes(report)
        assert report.has_errors()

    def test_r008_clean_on_conserved_profile(self):
        function = parse_function(R002_DEAD)
        report = lint_function(function, profile=uniform_profile(function))
        assert "R008" not in codes(report)

    def test_r009_profile_for_wrong_function(self):
        function = parse_function(R002_DEAD)
        stale = EdgeProfile(function_name="somebody_else", invocations=10.0)
        report = lint_function(function, profile=stale, select=["R009"])
        assert codes(report) == ["R009"]
        assert "somebody_else" in report.diagnostics[0].message

    def test_r009_profile_with_phantom_edge(self):
        function = parse_function(R002_DEAD)
        stale = EdgeProfile(
            function_name=function.name,
            invocations=10.0,
            edge_counts={("entry", "nowhere"): 5.0},
        )
        report = lint_function(function, profile=stale, select=["R009"])
        assert codes(report) == ["R009"]
        assert "nowhere" in report.diagnostics[0].message

    def test_r010_callee_saved_pressure(self):
        # tiny has 2 callee-saved registers; v0, v1, v2 are live across
        # the call (v3 is its own def and does not count).
        report = lint_function(
            parse_function(R010_PRESSURE), machine=get_target("tiny")
        )
        assert codes(report) == ["R010"]
        (diag,) = report.diagnostics
        assert diag.severity is Severity.INFO
        assert "3 virtual registers" in diag.message

    def test_r010_within_budget_is_silent(self):
        # parisc has 16 callee-saved registers; the same site fits easily.
        report = lint_function(
            parse_function(R010_PRESSURE), machine=get_target("parisc")
        )
        assert "R010" not in codes(report)


class TestGating:
    """Profile/machine-gated rules drop out exactly when inputs are absent."""

    def test_profile_rules_skipped_without_profile(self):
        report = lint_function(parse_function(CLEAN))
        assert "R008" not in report.rules_run
        assert "R009" not in report.rules_run

    def test_machine_rules_skipped_without_machine(self):
        report = lint_function(parse_function(R010_PRESSURE))
        assert "R010" not in report.rules_run
        assert codes(report) == []

    def test_rules_run_records_the_full_set_when_inputs_present(self):
        function = parse_function(CLEAN)
        report = lint_function(
            function,
            profile=uniform_profile(function),
            machine=get_target("parisc"),
        )
        assert list(report.rules_run) == sorted(RULES)


class TestRegistry:
    def test_registry_is_complete_and_ordered(self):
        rules = all_rules()
        assert [r.code for r in rules] == sorted(RULES)
        assert len(rules) >= 10
        for rule in rules:
            assert rule.code.startswith("R") and len(rule.code) == 4
            assert rule.summary and rule.name

    def test_every_severity_is_represented(self):
        severities = {rule.severity for rule in all_rules()}
        assert severities == set(Severity)


@pytest.mark.parametrize(
    "source, expected",
    [
        (R001_UNINIT, "R001"),
        (R002_DEAD, "R002"),
        (R003_ISLAND, "R003"),
        (R004_IRREDUCIBLE, "R004"),
        (R005_CRITICAL_SWITCH, "R005"),
        (R006_DEGENERATE_SWITCH, "R006"),
        (R007_SPIN, "R007"),
    ],
)
def test_mutation_sweep_profileless_rules(source, expected):
    """The sweep in one table: each fixture trips its rule and only its rule
    family (R003's island fixture also legitimately reports nothing else)."""

    report = lint_function(parse_function(source))
    assert expected in codes(report)
