"""Engine semantics: selection, ordering, payload schema, baselines, gating."""

from __future__ import annotations

import json

import pytest

from repro.ir.parser import parse_function
from repro.lint import (
    LintConfigError,
    LintError,
    Severity,
    apply_baseline,
    lint_cache_key,
    lint_function,
    load_baseline,
    resolve_rule_codes,
    write_baseline,
)
from repro.lint.engine import BASELINE_SCHEMA, LINT_SCHEMA
from repro.profiling.synthetic import uniform_profile
from repro.target.registry import get_target

MESSY = """
func messy() {
entry:
  li v0, #1
  li v1, #2
  add v2, v9, #1
  ret v2
}
"""


@pytest.fixture
def messy():
    return parse_function(MESSY)


class TestSelection:
    def test_select_restricts_to_given_codes(self, messy):
        report = lint_function(messy, select=["R001"])
        assert {d.code for d in report.diagnostics} == {"R001"}
        assert list(report.rules_run) == ["R001"]

    def test_ignore_drops_codes(self, messy):
        report = lint_function(messy, ignore=["R002"])
        assert "R002" not in {d.code for d in report.diagnostics}
        assert "R002" not in report.rules_run

    def test_unknown_codes_raise_config_error(self, messy):
        with pytest.raises(LintConfigError, match="R999"):
            lint_function(messy, select=["R999"])
        with pytest.raises(LintConfigError, match="bogus"):
            resolve_rule_codes(ignore=["bogus"])

    def test_select_then_ignore_composes(self):
        rules = resolve_rule_codes(select=["R001", "R002"], ignore=["R002"])
        assert [r.code for r in rules] == ["R001"]


class TestOrdering:
    def test_diagnostics_sorted_by_location_then_code(self, messy):
        report = lint_function(messy)
        keys = [d.sort_key() for d in report.diagnostics]
        assert keys == sorted(keys)
        # The fixture has findings at entry:0 (dead v0), entry:1 (dead v1)
        # and entry:2 (uninitialized v9) — order is positional, not by code.
        assert [(d.instruction, d.code) for d in report.diagnostics] == [
            (0, "R002"),
            (1, "R002"),
            (2, "R001"),
        ]


class TestPayload:
    def test_report_payload_schema(self, messy):
        payload = lint_function(messy).payload()
        assert payload["schema"] == LINT_SCHEMA
        assert set(payload) == {
            "schema",
            "function",
            "rules_run",
            "counts",
            "diagnostics",
        }
        assert payload["function"] == "messy"
        assert payload["counts"] == {"error": 1, "warn": 2, "info": 0}
        for entry in payload["diagnostics"]:
            assert {"code", "severity", "rule", "function", "message"} <= set(entry)

    def test_canonical_bytes_round_trip_json(self, messy):
        report = lint_function(messy)
        decoded = json.loads(report.canonical_bytes())
        assert decoded == json.loads(json.dumps(report.payload()))

    def test_fingerprint_is_stable_hex(self, messy):
        fingerprint = lint_function(messy).fingerprint()
        assert len(fingerprint) == 64
        int(fingerprint, 16)  # hex-decodable

    def test_render_mentions_every_finding(self, messy):
        report = lint_function(messy)
        text = report.render()
        for diagnostic in report.diagnostics:
            assert diagnostic.code in text


class TestLintError:
    def test_error_carries_structured_reports(self, messy):
        report = lint_function(messy)
        error = LintError([report])
        assert error.reports == (report,)
        assert "messy" in str(error)
        payload = error.payload()
        assert payload["schema"] == LINT_SCHEMA
        assert payload["reports"] == [report.payload()]


class TestBaseline:
    def test_round_trip_suppresses_known_findings(self, messy, tmp_path):
        report = lint_function(messy)
        path = tmp_path / "baseline.json"
        count = write_baseline(path, [report])
        assert count == len(report.diagnostics)
        suppressed = load_baseline(path)
        filtered = apply_baseline(report, suppressed)
        assert filtered.diagnostics == ()
        assert filtered.rules_run == report.rules_run

    def test_new_findings_survive_the_baseline(self, messy, tmp_path):
        clean = lint_function(messy, select=["R002"])
        path = tmp_path / "baseline.json"
        write_baseline(path, [clean])
        # Full run: the R001 finding is new relative to the baseline.
        filtered = apply_baseline(lint_function(messy), load_baseline(path))
        assert {d.code for d in filtered.diagnostics} == {"R001"}

    def test_baseline_schema_is_checked(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "nope/v9", "entries": {}}))
        with pytest.raises(ValueError, match=BASELINE_SCHEMA):
            load_baseline(path)

    def test_baseline_file_is_deterministic(self, messy, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_baseline(a, [lint_function(messy)])
        write_baseline(b, [lint_function(messy)])
        assert a.read_bytes() == b.read_bytes()


class TestCacheKey:
    def test_lint_key_is_namespaced_apart_from_compile(self, messy):
        from repro.ir.fingerprint import compile_options_token, procedure_cache_key

        machine = get_target("parisc")
        profile = uniform_profile(messy)
        lint_key = lint_cache_key(messy, profile, machine)
        compile_key = procedure_cache_key(
            messy,
            profile,
            compile_options_token(machine, "lint:" + ",".join(sorted(
                r.code for r in resolve_rule_codes())), (), False, False),
            kind="compile",
        )
        assert lint_key != compile_key

    def test_key_depends_on_rule_selection(self, messy):
        machine = get_target("parisc")
        profile = uniform_profile(messy)
        assert lint_cache_key(messy, profile, machine) != lint_cache_key(
            messy, profile, machine, select=["R001"]
        )

    def test_key_is_deterministic(self, messy):
        machine = get_target("tiny")
        profile = uniform_profile(messy)
        assert lint_cache_key(messy, profile, machine) == lint_cache_key(
            messy, profile, machine
        )


class TestSeverity:
    def test_weights_rank_error_first(self):
        # weight is a sort rank: 0 = most severe.
        assert Severity.ERROR.weight < Severity.WARN.weight < Severity.INFO.weight

    def test_str_is_the_wire_value(self):
        assert str(Severity.ERROR) == "error"
        assert str(Severity.WARN) == "warn"
        assert str(Severity.INFO) == "info"
