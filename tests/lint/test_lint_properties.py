"""Lint invariants, property-tested: purity, determinism, zero-cost-off.

Three promises the rest of the system builds on:

* **purity** — linting never mutates the function or profile it reads
  (fingerprints unchanged), so it can run before a compile without
  perturbing it;
* **determinism** — the same inputs produce byte-identical reports, in
  this process, across repeated runs, and across processes with different
  ``PYTHONHASHSEED`` values (which is what makes reports cacheable,
  coalescable and fleet-routable);
* **zero-cost-off** — ``compile_procedure(lint=None)`` is byte-for-byte
  the compile that existed before the lint subsystem: same results, same
  cache keys, and the lint package is not even imported.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.ir.fingerprint import fingerprint_function, procedure_cache_key
from repro.lint import lint_function
from repro.target.registry import available_targets, get_target
from repro.workloads.scenarios import build_scenario, scenario_names

#: Every family × a fast/slow target pair — the sweep the issue asks for.
FAMILIES = scenario_names()
TARGETS = ("parisc", "tiny")


def _procedures(family, target, count=2):
    return build_scenario(family, seed=0, count=count, machine=get_target(target))


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("target", TARGETS)
class TestPurityAndDeterminism:
    def test_lint_is_pure(self, family, target):
        machine = get_target(target)
        for procedure in _procedures(family, target):
            before = fingerprint_function(procedure.function)
            profile_before = (
                procedure.profile.invocations,
                dict(procedure.profile.edge_counts),
            )
            lint_function(procedure.function, profile=procedure.profile, machine=machine)
            assert fingerprint_function(procedure.function) == before
            assert (
                procedure.profile.invocations,
                dict(procedure.profile.edge_counts),
            ) == profile_before

    def test_lint_is_deterministic_in_process(self, family, target):
        machine = get_target(target)
        for procedure in _procedures(family, target):
            first = lint_function(
                procedure.function, profile=procedure.profile, machine=machine
            )
            second = lint_function(
                procedure.function, profile=procedure.profile, machine=machine
            )
            assert first.canonical_bytes() == second.canonical_bytes()
            assert first.fingerprint() == second.fingerprint()


_SUBPROCESS_SCRIPT = """
import json, sys
from repro.lint import lint_function
from repro.target.registry import get_target
from repro.workloads.scenarios import build_scenario

family, target = sys.argv[1], sys.argv[2]
machine = get_target(target)
fingerprints = [
    lint_function(p.function, profile=p.profile, machine=machine).fingerprint()
    for p in build_scenario(family, seed=0, count=2, machine=machine)
]
print(json.dumps(fingerprints))
"""


@pytest.mark.parametrize("family", ("classic_mix", "chaos_cfg"))
def test_fingerprints_identical_across_hash_seeds(family):
    """Reports are byte-identical across processes with different hash seeds."""

    results = []
    for hash_seed in ("0", "42"):
        completed = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SCRIPT, family, "parisc"],
            capture_output=True,
            text=True,
            env={"PYTHONHASHSEED": hash_seed, "PYTHONPATH": "src"},
            check=True,
        )
        results.append(json.loads(completed.stdout))
    assert results[0] == results[1]
    # And the in-process run agrees with both.
    machine = get_target("parisc")
    local = [
        lint_function(p.function, profile=p.profile, machine=machine).fingerprint()
        for p in build_scenario(family, seed=0, count=2, machine=machine)
    ]
    assert local == results[0]


class TestZeroCostOff:
    def test_compile_results_identical_with_lint_off(self):
        from repro.pipeline.compiler import compile_procedure

        procedure = _procedures("classic_mix", "parisc", count=1)[0]
        plain = compile_procedure(procedure, machine="parisc")
        unlinted = compile_procedure(procedure, machine="parisc", lint=None)
        assert plain.name == unlinted.name
        assert plain.allocator_overhead == unlinted.allocator_overhead
        for technique in plain.outcomes:
            assert plain.callee_saved_overhead(
                technique
            ) == unlinted.callee_saved_overhead(technique)

    def test_cache_keys_unchanged_by_lint_gate(self, tmp_path):
        """lint="strict" on a passing compile fills the same cache entry."""

        from repro.cache.store import CompileCache
        from repro.pipeline.compiler import compile_procedure

        procedure = _procedures("classic_mix", "parisc", count=1)[0]
        cache_a = CompileCache(tmp_path / "a")
        cache_b = CompileCache(tmp_path / "b")
        compile_procedure(procedure, machine="parisc", cache=cache_a)
        compile_procedure(
            procedure,
            machine="parisc",
            cache=cache_b,
            lint="strict",
            # classic_mix warns (dead ballast) but has no errors — strict
            # passes and must not alter the cache key.
        )
        assert cache_a.entry_count() == cache_b.entry_count() == 1
        # Warm hit across caches proves the key bytes match.
        compile_procedure(procedure, machine="parisc", cache=cache_b)
        assert cache_b.stats.hits == 1

    def test_lint_off_does_not_import_the_lint_package(self):
        """A lint=None compile never imports repro.lint (the zero-cost proof)."""

        script = (
            "import sys\n"
            "from repro.pipeline.compiler import compile_procedure\n"
            "from repro.workloads.scenarios import build_scenario\n"
            "from repro.target.registry import get_target\n"
            "p = build_scenario('classic_mix', seed=0, count=1,"
            " machine=get_target('tiny'))[0]\n"
            "compile_procedure(p, machine='tiny')\n"
            "assert not any(m.startswith('repro.lint') for m in sys.modules),"
            " sorted(m for m in sys.modules if m.startswith('repro.lint'))\n"
            "print('lint not imported')\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src"},
            check=True,
        )
        assert "lint not imported" in completed.stdout

    def test_lint_cache_keys_never_alias_compile_keys(self):
        from repro.ir.fingerprint import compile_options_token
        from repro.lint import lint_cache_key

        procedure = _procedures("classic_mix", "tiny", count=1)[0]
        machine = get_target("tiny")
        lint_key = lint_cache_key(procedure.function, procedure.profile, machine)
        token = compile_options_token(
            machine, "jump_edge", ("baseline",), True, True
        )
        compile_key = procedure_cache_key(
            procedure.function, procedure.profile, token, kind="compile"
        )
        assert lint_key != compile_key


def test_every_registered_target_lints_cleanly_or_deterministically():
    """One broad sweep: all targets × one family, twice, byte-identical."""

    for target in available_targets():
        machine = get_target(target)
        for procedure in build_scenario(
            "call_web", seed=1, count=1, machine=machine
        ):
            runs = [
                lint_function(
                    procedure.function, profile=procedure.profile, machine=machine
                ).canonical_bytes()
                for _ in range(2)
            ]
            assert runs[0] == runs[1]
