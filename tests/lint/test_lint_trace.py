"""Pinned diagnostic fingerprints per scenario family × target.

``traces/lint_fingerprints.json`` records, for every scenario family on
two targets, the SHA-256 fingerprint of each generated procedure's full
lint report at the time the lint subsystem was built (seed 0, two
procedures per family).  Mirroring the corpus and loadgen trace patterns,
the fingerprints are pinned as a *file*: any change to a rule's output —
message text, ordering, severity, a rule firing more or less — shows up
as a fingerprint diff and must be an intentional, reviewed regeneration
(rerun the module docstring's snippet in ``traces/``) rather than drift.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.lint import lint_function
from repro.target.registry import get_target
from repro.workloads.scenarios import build_scenario, scenario_names

TRACE_PATH = os.path.join(
    os.path.dirname(__file__), "traces", "lint_fingerprints.json"
)


def load_trace():
    """The pinned fingerprint table."""

    with open(TRACE_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def test_trace_schema():
    trace = load_trace()
    assert trace["schema"] == "lint-trace/v1"
    assert trace["entries"], "empty trace"


def test_trace_covers_every_family_on_both_targets():
    trace = load_trace()
    covered = {tuple(key.split("/")[:2]) for key in trace["entries"]}
    for family in scenario_names():
        for target in ("parisc", "tiny"):
            assert (family, target) in covered, f"{family}/{target} unpinned"


@pytest.mark.parametrize("family", scenario_names())
@pytest.mark.parametrize("target", ("parisc", "tiny"))
def test_fingerprints_still_reproduce(family, target):
    """Regenerate every pinned entry and compare byte-identically."""

    trace = load_trace()
    machine = get_target(target)
    procedures = build_scenario(
        family, seed=trace["seed"], count=trace["count"], machine=machine
    )
    for procedure in procedures:
        key = f"{family}/{target}/{procedure.name}"
        assert key in trace["entries"], f"procedure {key} not pinned"
        report = lint_function(
            procedure.function, profile=procedure.profile, machine=machine
        )
        pinned = trace["entries"][key]
        assert report.counts() == pinned["counts"], key
        assert report.fingerprint() == pinned["fingerprint"], (
            f"{key}: lint output changed; if intentional, regenerate "
            "tests/lint/traces/lint_fingerprints.json"
        )


def test_chaos_family_actually_pins_findings():
    """The chaos draws must carry real diagnostics, or the pin is vacuous."""

    trace = load_trace()
    chaos_counts = [
        entry["counts"]
        for key, entry in trace["entries"].items()
        if key.startswith("chaos_cfg/")
    ]
    assert chaos_counts
    assert any(sum(c.values()) > 0 for c in chaos_counts)
