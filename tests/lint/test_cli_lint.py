"""The ``repro-spill lint`` subcommand: sources, gating, baselines, JSON."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.lint import lint_function
from repro.target.registry import get_target
from repro.workloads.scenarios import build_scenario

BAD_IR = """
func bad() {
entry:
  add v1, v0, #1
  ret v1
}
"""

WARN_IR = """
func warns() {
entry:
  li v0, #1
  li v1, #2
  ret v1
}
"""

CLEAN_IR = """
func clean(v0) {
entry:
  add v1, v0, #1
  ret v1
}
"""


@pytest.fixture
def ir_file(tmp_path):
    def write(source, name="prog.ir"):
        path = tmp_path / name
        path.write_text(source)
        return str(path)

    return write


class TestArgumentValidation:
    def test_no_sources_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_unknown_scenario_is_usage_error(self, capsys):
        assert main(["lint", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_unknown_rule_code_is_usage_error(self, ir_file, capsys):
        assert main(["lint", ir_file(CLEAN_IR), "--select", "R999"]) == 2
        assert "R999" in capsys.readouterr().err

    def test_unparsable_file_is_usage_error(self, ir_file, capsys):
        assert main(["lint", ir_file("func broken {")]) == 2
        assert "error:" in capsys.readouterr().err


class TestExitCodes:
    def test_clean_file_exits_zero(self, ir_file, capsys):
        assert main(["lint", ir_file(CLEAN_IR)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_error_finding_exits_one(self, ir_file, capsys):
        assert main(["lint", ir_file(BAD_IR)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out and "error" in out

    def test_warnings_exit_zero_by_default(self, ir_file):
        assert main(["lint", ir_file(WARN_IR)]) == 0

    def test_strict_turns_warnings_into_failure(self, ir_file):
        assert main(["lint", ir_file(WARN_IR), "--strict"]) == 1

    def test_select_can_silence_the_failure(self, ir_file):
        assert main(["lint", ir_file(BAD_IR), "--select", "R003"]) == 0
        assert main(["lint", ir_file(BAD_IR), "--ignore", "R001"]) == 0


class TestBaseline:
    def test_write_then_apply_round_trip(self, ir_file, tmp_path, capsys):
        path = ir_file(WARN_IR)
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", path, "--write-baseline", baseline]) == 0
        err = capsys.readouterr().err
        assert "1 finding(s)" in err
        # Strict + baseline: the known warning is suppressed.
        assert main(["lint", path, "--strict", "--baseline", baseline]) == 0
        # A new defect still fails through the baseline.
        assert (
            main(["lint", path, ir_file(BAD_IR, "bad.ir"), "--strict",
                  "--baseline", baseline])
            == 1
        )

    def test_bad_baseline_schema_is_usage_error(self, ir_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"schema": "wrong/v0", "entries": {}}))
        assert main(["lint", ir_file(WARN_IR), "--baseline", str(baseline)]) == 2
        assert "schema" in capsys.readouterr().err


class TestJsonOutput:
    def test_payload_matches_the_library_byte_for_byte(self, capsys):
        """CLI --json over a scenario equals lint_function on the same
        procedures — the one-payload-everywhere contract."""

        assert (
            main(["lint", "--scenario", "classic_mix", "--count", "2",
                  "--target", "tiny", "--json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "lint-report/v1"
        machine = get_target("tiny")
        expected = [
            lint_function(p.function, profile=p.profile, machine=machine).payload()
            for p in build_scenario("classic_mix", seed=0, count=2, machine=machine)
        ]
        assert payload["reports"] == expected

    def test_json_is_deterministic(self, ir_file, capsys):
        path = ir_file(WARN_IR)
        main(["lint", path, "--json"])
        first = capsys.readouterr().out
        main(["lint", path, "--json"])
        assert capsys.readouterr().out == first


class TestCorpusSource:
    def test_corpus_directory_with_sidecar(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "fix.ir").write_text(CLEAN_IR)
        (corpus / "fix.profile.json").write_text(
            json.dumps({"invocations": 10.0, "probabilities": {}})
        )
        (corpus / "notes.txt").write_text("ignored")
        assert main(["lint", "--corpus", str(corpus)]) == 0
        assert "1 function(s)" in capsys.readouterr().out

    def test_repo_corpus_is_lintable(self):
        # The real corpus has known (baselined-in-CI) findings; without a
        # baseline the chaos fixture's R001 findings exit 1.
        assert main(["lint", "--corpus", "tests/workloads/corpus"]) == 1


def test_all_scenarios_smoke(capsys):
    assert main(["lint", "--all-scenarios", "--count", "1", "--target",
                 "micro"]) in (0, 1)
    out = capsys.readouterr().out
    assert "function(s):" in out
