"""Tests for profiles, synthetic profile derivation, the interpreter and overhead accounting."""

import pytest

from hypothesis import given, settings

from repro.ir.builder import FunctionBuilder
from repro.profiling.interpreter import Interpreter, InterpreterError, run_with_convention_check
from repro.profiling.overhead import measure_dynamic_overhead, measure_dynamic_overhead_by_execution
from repro.profiling.profile_data import EdgeProfile, ProfileError
from repro.profiling.synthetic import (
    profile_from_block_frequencies,
    profile_from_branch_probabilities,
    uniform_profile,
)
from repro.spill.entry_exit import place_entry_exit
from repro.spill.insertion import apply_placement
from repro.spill.overhead import allocator_spill_overhead, placement_dynamic_overhead
from repro.target.parisc import parisc_target
from repro.workloads.programs import call_chain_function, diamond_function, loop_function, paper_example

from tests.conftest import generated_procedures


class TestEdgeProfile:
    def test_paper_profile_is_flow_conserving(self):
        example = paper_example()
        assert example.profile.check_flow_conservation(example.function) == []

    def test_block_counts_of_paper_example(self):
        example = paper_example()
        counts = example.profile.block_counts(example.function)
        assert counts["A"] == 100 and counts["P"] == 100
        assert counts["D"] == 40 and counts["E"] == 10 and counts["F"] == 50
        assert counts["G"] == 25 and counts["K"] == 25 and counts["N"] == 25

    def test_virtual_edges_carry_the_invocation_count(self):
        example = paper_example()
        assert example.profile.edge_count(("__entry__", "A")) == 100
        assert example.profile.edge_count(("P", "__exit__")) == 100

    def test_imbalanced_profile_is_rejected(self):
        example = paper_example()
        broken = EdgeProfile(example.function.name, 100, dict(example.profile.edge_counts))
        broken.edge_counts[("A", "B")] = 5.0
        with pytest.raises(ProfileError):
            broken.validate(example.function)

    def test_invocations_inferred_from_counts(self):
        example = paper_example()
        inferred = EdgeProfile.from_counts(example.function, example.profile.edge_counts)
        assert inferred.invocations == pytest.approx(100)

    def test_scaled_profile(self):
        example = paper_example()
        double = example.profile.scaled(2.0)
        assert double.invocations == 200
        assert double.edge_count(("A", "B")) == 140


class TestSyntheticProfiles:
    def test_branch_probabilities_respected(self):
        function = diamond_function()
        profile = profile_from_branch_probabilities(
            function, invocations=100, probabilities={("entry", "then"): 0.25}
        )
        assert profile.edge_count(("entry", "then")) == pytest.approx(25)
        assert profile.edge_count(("entry", "else_")) == pytest.approx(75)
        profile.validate(function)

    def test_uniform_profile_splits_evenly(self):
        profile = uniform_profile(diamond_function(), invocations=10)
        assert profile.edge_count(("entry", "then")) == pytest.approx(5)

    def test_loop_trip_counts_from_exit_probability(self):
        function = loop_function()
        profile = profile_from_branch_probabilities(
            function, invocations=1, probabilities={("header", "after"): 0.1}
        )
        # Expected header executions: 1 / 0.1 = 10.
        assert profile.block_count(function, "header") == pytest.approx(10)
        profile.validate(function)

    def test_probabilities_exceeding_one_rejected(self):
        with pytest.raises(ProfileError):
            profile_from_branch_probabilities(
                diamond_function(),
                probabilities={("entry", "then"): 0.8, ("entry", "else_"): 0.8},
            )

    def test_profile_from_block_frequencies(self):
        function = diamond_function()
        frequencies = {"entry": 100.0, "then": 25.0, "else_": 75.0, "merge": 100.0}
        rebuilt = profile_from_block_frequencies(function, frequencies, invocations=100)
        assert rebuilt.edge_count(("entry", "then")) == pytest.approx(25)
        assert rebuilt.edge_count(("entry", "else_")) == pytest.approx(75)
        assert rebuilt.check_flow_conservation(function) == []

    @given(generated_procedures(max_segments=5))
    def test_generated_profiles_are_flow_conserving(self, procedure):
        assert procedure.profile.check_flow_conservation(procedure.function) == []


class TestInterpreter:
    def test_loop_function_executes_and_counts(self):
        result = Interpreter().run(loop_function())
        assert result.block_counts["body"] == 10
        assert result.edge_counts[("body", "header")] == 10
        assert result.steps > 20

    def test_return_values(self):
        builder = FunctionBuilder("answer")
        builder.block("entry")
        value = builder.const(21)
        doubled = builder.mul(value, 2)
        builder.block("exit")
        builder.ret([doubled])
        result = Interpreter().run(builder.build())
        assert result.return_values == (42,)

    def test_arguments_bound_to_parameters(self):
        builder = FunctionBuilder("addone")
        param = builder.new_vreg()
        builder.function.params = (param,)
        builder.block("entry")
        result_reg = builder.add(param, 1)
        builder.block("exit")
        builder.ret([result_reg])
        result = Interpreter().run(builder.build(), args=[41])
        assert result.return_values == (42,)

    def test_module_calls_are_resolved(self):
        from repro.ir.module import Module
        from repro.ir.parser import parse_module

        module = parse_module(
            "func main() {\nentry:\n  li v0, #4\n  call @double(v0) -> (v1)\n  ret v1\n}\n\n"
            "func double(v0) {\nentry:\n  mul v1, v0, #2\n  ret v1\n}\n"
        )
        result = Interpreter(module=module).run(module.function("main"))
        assert result.return_values == (8,)
        assert result.calls_made == 1

    def test_external_calls_clobber_caller_saved_registers(self):
        machine = parisc_target()
        builder = FunctionBuilder("ext")
        builder.block("entry")
        builder.call("external")
        builder.block("exit")
        builder.ret()
        interp = Interpreter(machine=machine)
        run = interp.run(builder.build(), initial_registers={machine.caller_saved[0]: 7})
        assert run.calls_made == 1

    def test_step_limit_guards_against_infinite_loops(self):
        builder = FunctionBuilder("spin")
        builder.block("entry")
        builder.jump("entry")
        builder.block("unreachable_exit")
        builder.ret()
        with pytest.raises(InterpreterError):
            Interpreter(max_steps=100).run(builder.build())

    def test_purpose_counts_track_overhead(self):
        example = paper_example()
        function = example.function.clone()
        apply_placement(function, place_entry_exit(function, example.usage))
        run = Interpreter().run(function)
        assert run.purpose_counts["callee_save"] == 1
        assert run.executed_overhead() == 2

    def test_convention_check_passes_for_safe_function(self):
        machine = parisc_target()
        result = run_with_convention_check(loop_function(), machine)
        assert result.steps > 0


class TestOverheadAccounting:
    def test_analytic_overhead_of_rewritten_function(self):
        example = paper_example()
        function = example.function.clone()
        placement = place_entry_exit(function, example.usage)
        apply_placement(function, placement)
        breakdown = measure_dynamic_overhead(function, example.profile)
        assert breakdown.callee_saves == 100
        assert breakdown.callee_restores == 100
        assert breakdown.total == 200

    def test_allocator_spill_overhead_counts_only_spill_purpose(self):
        example = paper_example()
        assert allocator_spill_overhead(example.function, example.profile) == 0

    def test_execution_based_measurement_matches_structure(self):
        example = paper_example()
        function = example.function.clone()
        apply_placement(function, place_entry_exit(function, example.usage))
        breakdown = measure_dynamic_overhead_by_execution(function, Interpreter())
        assert breakdown.callee_saves == 1
        assert breakdown.callee_restores == 1

    def test_placement_overhead_breakdown_fields(self):
        example = paper_example()
        placement = place_entry_exit(example.function, example.usage)
        overhead = placement_dynamic_overhead(example.function, example.profile, placement)
        assert overhead.save_count == 100
        assert overhead.restore_count == 100
        assert overhead.jump_count == 0
        assert "saves=" in str(overhead)
