"""A synthetic stand-in for the SPEC CPU2000 integer benchmark suite.

The paper evaluates on eleven SPEC CPU2000 integer programs (the C++ one,
eon, is excluded).  Those programs and their training inputs are not
available here, so each benchmark is replaced by a *workload profile*: a set
of generator parameters chosen to reflect the qualitative properties that
drive the paper's results —

* how many procedures the program has and how large they are,
* how often callee-saved registers are occupied in several *disjoint, hot*
  regions (which makes shrink-wrapping more expensive than entry/exit
  placement: gzip, bzip2, twolf),
* how much unconditional-jump-heavy control flow there is whose jump edges
  the hierarchical algorithm can exploit but shrink-wrapping cannot
  (gcc, crafty),
* how small and register-light the procedures are (mcf, whose callee-saved
  overhead is negligible).

The absolute dynamic counts are not expected to match the paper (our
"programs" are synthetic); the *shape* of Figure 5 and Table 1 — who wins,
roughly by how much, and on which benchmarks shrink-wrapping loses to the
baseline — is what the suite reproduces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.target.machine import MachineDescription
from repro.target.parisc import parisc_target
from repro.workloads.generator import (
    GeneratedProcedure,
    GeneratorConfig,
    generate_procedure,
)


@dataclass(frozen=True)
class BenchmarkSpec:
    """Generator parameters for one synthetic SPEC-like benchmark."""

    name: str
    #: Number of procedures to generate.
    num_procedures: int
    #: Mean number of segments per procedure (varied +/- 50% per procedure).
    segments: int
    #: Archetype mix (missing kinds default to zero weight).
    segment_weights: Dict[str, float]
    hot_region_probability: float = 0.9
    cold_region_probability: float = 0.05
    cold_region_fraction: float = 0.3
    early_exit_probability: float = 0.4
    loop_trip_count: float = 8.0
    num_accumulators: int = 1
    locals_per_call_region: int = 1
    block_ballast: int = 3
    temporaries_per_segment: int = 2
    #: Fraction of procedures whose guarded regions are *all* cold (procedures
    #: that only touch callee-saved registers on error/slow paths — the cases
    #: where profile-guided placement wins big).
    cold_procedure_fraction: float = 0.0
    #: Fraction of those cold procedures that contain no early-exit jumps, so
    #: that plain shrink-wrapping can exploit them as well (this is what makes
    #: the Shrinkwrap/Baseline ratio dip below 1.0 on gcc-like programs).
    pure_guarded_cold_fraction: float = 0.0
    #: Procedure invocation counts are drawn log-uniformly from this range.
    invocation_range: Tuple[float, float] = (100.0, 10_000.0)
    seed: int = 1

    #: Paper reference ratios (Table 1), used for reporting side by side.
    paper_optimized_ratio: Optional[float] = None
    paper_shrinkwrap_ratio: Optional[float] = None


@dataclass
class SyntheticBenchmark:
    """A generated benchmark: a bag of procedures with profiles."""

    spec: BenchmarkSpec
    procedures: List[GeneratedProcedure] = field(default_factory=list)

    @property
    def name(self) -> str:
        """The benchmark's name (from its spec)."""

        return self.spec.name

    def num_blocks(self) -> int:
        """Total basic blocks across the benchmark's procedures."""

        return sum(len(p.function) for p in self.procedures)

    def num_instructions(self) -> int:
        """Total instructions across the benchmark's procedures."""

        return sum(p.function.instruction_count() for p in self.procedures)


def _weights(**kinds: float) -> Dict[str, float]:
    base = {
        "compute": 0.0,
        "diamond": 0.0,
        "guarded_call": 0.0,
        "early_exit_call": 0.0,
        "loop_call": 0.0,
    }
    base.update(kinds)
    return base


#: The eleven benchmarks of the paper's Table 1, in the paper's order, with
#: workload profiles tuned to their qualitative characteristics.
SPEC_BENCHMARKS: Tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec(
        name="gzip",
        num_procedures=10,
        segments=7,
        segment_weights=_weights(compute=1.5, diamond=1.0, guarded_call=3.5,
                                 early_exit_call=0.4, loop_call=0.6),
        hot_region_probability=0.96,
        cold_region_fraction=0.1,
        cold_procedure_fraction=0.35,
        num_accumulators=1,
        locals_per_call_region=2,
        seed=101,
        paper_optimized_ratio=0.830,
        paper_shrinkwrap_ratio=1.026,
    ),
    BenchmarkSpec(
        name="vpr",
        num_procedures=12,
        segments=6,
        segment_weights=_weights(compute=2.5, diamond=1.5, guarded_call=1.0,
                                 early_exit_call=0.1, loop_call=1.0),
        hot_region_probability=0.995,
        cold_region_fraction=0.02,
        cold_procedure_fraction=0.05,
        num_accumulators=3,
        seed=102,
        paper_optimized_ratio=0.995,
        paper_shrinkwrap_ratio=1.000,
    ),
    BenchmarkSpec(
        name="gcc",
        num_procedures=36,
        segments=9,
        segment_weights=_weights(compute=1.0, diamond=1.2, guarded_call=2.0,
                                 early_exit_call=2.6, loop_call=0.3),
        hot_region_probability=0.65,
        cold_region_probability=0.03,
        cold_region_fraction=0.35,
        cold_procedure_fraction=0.55,
        pure_guarded_cold_fraction=0.45,
        early_exit_probability=0.5,
        num_accumulators=0,
        locals_per_call_region=3,
        seed=103,
        paper_optimized_ratio=0.596,
        paper_shrinkwrap_ratio=0.939,
    ),
    BenchmarkSpec(
        name="mcf",
        num_procedures=8,
        segments=3,
        segment_weights=_weights(compute=3.0, diamond=1.5, guarded_call=0.15,
                                 early_exit_call=0.0, loop_call=0.5),
        hot_region_probability=0.9,
        num_accumulators=0,
        block_ballast=2,
        temporaries_per_segment=1,
        invocation_range=(50.0, 500.0),
        seed=104,
        paper_optimized_ratio=1.000,
        paper_shrinkwrap_ratio=1.000,
    ),
    BenchmarkSpec(
        name="crafty",
        num_procedures=14,
        segments=10,
        segment_weights=_weights(compute=0.8, diamond=1.0, guarded_call=1.2,
                                 early_exit_call=2.3, loop_call=0.2),
        hot_region_probability=0.45,
        cold_region_probability=0.02,
        cold_region_fraction=0.45,
        cold_procedure_fraction=0.7,
        pure_guarded_cold_fraction=0.45,
        early_exit_probability=0.55,
        num_accumulators=0,
        locals_per_call_region=3,
        seed=105,
        paper_optimized_ratio=0.440,
        paper_shrinkwrap_ratio=0.933,
    ),
    BenchmarkSpec(
        name="parser",
        num_procedures=16,
        segments=7,
        segment_weights=_weights(compute=1.5, diamond=1.5, guarded_call=2.0,
                                 early_exit_call=1.2, loop_call=0.6),
        hot_region_probability=0.85,
        cold_region_fraction=0.2,
        cold_procedure_fraction=0.3,
        num_accumulators=1,
        locals_per_call_region=2,
        seed=106,
        paper_optimized_ratio=0.858,
        paper_shrinkwrap_ratio=0.990,
    ),
    BenchmarkSpec(
        name="perlbmk",
        num_procedures=18,
        segments=8,
        segment_weights=_weights(compute=1.5, diamond=1.5, guarded_call=2.0,
                                 early_exit_call=1.0, loop_call=0.5),
        hot_region_probability=0.9,
        cold_region_fraction=0.15,
        cold_procedure_fraction=0.3,
        num_accumulators=2,
        locals_per_call_region=2,
        seed=107,
        paper_optimized_ratio=0.897,
        paper_shrinkwrap_ratio=0.996,
    ),
    BenchmarkSpec(
        name="gap",
        num_procedures=16,
        segments=8,
        segment_weights=_weights(compute=1.5, diamond=1.2, guarded_call=1.6,
                                 early_exit_call=1.2, loop_call=0.6),
        hot_region_probability=0.88,
        cold_region_fraction=0.25,
        cold_procedure_fraction=0.3,
        pure_guarded_cold_fraction=0.85,
        num_accumulators=1,
        locals_per_call_region=2,
        seed=108,
        paper_optimized_ratio=0.885,
        paper_shrinkwrap_ratio=0.954,
    ),
    BenchmarkSpec(
        name="vortex",
        num_procedures=20,
        segments=7,
        segment_weights=_weights(compute=2.0, diamond=1.5, guarded_call=0.6,
                                 early_exit_call=0.2, loop_call=0.8),
        hot_region_probability=0.99,
        cold_region_fraction=0.02,
        cold_procedure_fraction=0.08,
        num_accumulators=4,
        seed=109,
        paper_optimized_ratio=0.988,
        paper_shrinkwrap_ratio=1.000,
    ),
    BenchmarkSpec(
        name="bzip2",
        num_procedures=10,
        segments=7,
        segment_weights=_weights(compute=2.2, diamond=1.2, guarded_call=1.0,
                                 early_exit_call=0.25, loop_call=0.8),
        hot_region_probability=0.95,
        cold_region_fraction=0.1,
        cold_procedure_fraction=0.28,
        num_accumulators=2,
        locals_per_call_region=2,
        seed=110,
        paper_optimized_ratio=0.902,
        paper_shrinkwrap_ratio=1.005,
    ),
    BenchmarkSpec(
        name="twolf",
        num_procedures=12,
        segments=8,
        segment_weights=_weights(compute=1.8, diamond=1.2, guarded_call=1.0,
                                 early_exit_call=0.15, loop_call=0.6),
        hot_region_probability=0.97,
        cold_region_fraction=0.08,
        cold_procedure_fraction=0.15,
        num_accumulators=2,
        locals_per_call_region=2,
        seed=111,
        paper_optimized_ratio=0.939,
        paper_shrinkwrap_ratio=1.080,
    ),
)


def spec_by_name(name: str) -> BenchmarkSpec:
    """Look up one of the predefined benchmark specs by name."""

    for spec in SPEC_BENCHMARKS:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown benchmark {name!r}; expected one of "
                   + ", ".join(s.name for s in SPEC_BENCHMARKS))


def scale_spec_for_target(
    spec: BenchmarkSpec, machine: Optional[MachineDescription]
) -> BenchmarkSpec:
    """Scale the spec's register-pressure knobs to ``machine``'s register file.

    The predefined specs are calibrated against the paper's machine; on a
    target with fewer callee-saved registers the same knobs would spill
    everything, and on a wider target they would never touch a callee-saved
    register.  The call-crossing value counts are scaled by the ratio of the
    target's callee-saved file to the reference (the paper's machine, taken
    from the target package rather than hard-coded here).
    """

    if machine is None:
        return spec
    reference = parisc_target()
    ratio = machine.num_callee_saved / reference.num_callee_saved
    if ratio == 1.0:
        return spec
    return replace(
        spec,
        num_accumulators=max(1, round(spec.num_accumulators * ratio)),
        locals_per_call_region=max(1, round(spec.locals_per_call_region * ratio)),
    )


def build_benchmark(
    spec: BenchmarkSpec,
    scale: float = 1.0,
    machine: Optional[MachineDescription] = None,
) -> SyntheticBenchmark:
    """Generate the procedures of one benchmark.

    ``scale`` multiplies the procedure count (useful to shrink the suite for
    quick test runs or grow it for longer benchmarking sessions).
    ``machine`` scales the register-pressure knobs to the target's register
    file (see :func:`scale_spec_for_target`).
    """

    spec = scale_spec_for_target(spec, machine)
    rng = random.Random(spec.seed)
    count = max(1, int(round(spec.num_procedures * scale)))
    procedures: List[GeneratedProcedure] = []
    for index in range(count):
        segments = max(1, int(round(spec.segments * rng.uniform(0.5, 1.5))))
        low, high = spec.invocation_range
        invocations = float(low * (high / low) ** rng.random())
        # Spread the cold procedures evenly over the benchmark (deterministic
        # Bresenham-style selection) so that small suites still contain the
        # intended fraction regardless of the invocation-count draw.
        fraction = spec.cold_procedure_fraction
        cold_procedure = int((index + 1) * fraction) - int(index * fraction) >= 1
        cold_fraction = 1.0 if cold_procedure else spec.cold_region_fraction
        weights = dict(spec.segment_weights)
        if cold_procedure:
            # Alternate cold procedures between "pure guarded" shapes (which
            # both shrink-wrapping and the hierarchical algorithm exploit) and
            # jump-edge-heavy shapes (which only the hierarchical algorithm
            # exploits), in the spec's requested proportion.
            cold_index = int(index * fraction)
            pure = spec.pure_guarded_cold_fraction
            if int((cold_index + 1) * pure) - int(cold_index * pure) >= 1:
                weights["guarded_call"] = weights.get("guarded_call", 0.0) + weights.get(
                    "early_exit_call", 0.0
                )
                weights["early_exit_call"] = 0.0
        config = GeneratorConfig(
            name=f"{spec.name}_p{index}",
            seed=spec.seed * 1000 + index,
            num_segments=segments,
            segment_weights=weights,
            hot_region_probability=spec.hot_region_probability,
            cold_region_probability=spec.cold_region_probability,
            cold_region_fraction=cold_fraction,
            early_exit_probability=spec.early_exit_probability,
            loop_trip_count=spec.loop_trip_count,
            block_ballast=spec.block_ballast,
            num_accumulators=spec.num_accumulators,
            locals_per_call_region=spec.locals_per_call_region,
            temporaries_per_segment=spec.temporaries_per_segment,
            invocations=invocations,
        )
        procedures.append(generate_procedure(config))
    return SyntheticBenchmark(spec=spec, procedures=procedures)


def build_suite(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    machine: Optional[MachineDescription] = None,
) -> List[SyntheticBenchmark]:
    """Generate the whole suite (or the named subset)."""

    specs = SPEC_BENCHMARKS if names is None else [spec_by_name(n) for n in names]
    return [build_benchmark(spec, scale=scale, machine=machine) for spec in specs]
