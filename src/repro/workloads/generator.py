"""Parameterized generation of synthetic procedures.

The SPEC CPU2000 integer benchmarks cannot be shipped or executed here, so
the evaluation runs on synthetic procedures whose *shape* is controlled by a
:class:`GeneratorConfig`: how many of which kinds of code segments a
procedure contains, how hot each segment is, how much straight-line ballast
surrounds the interesting parts, and how many long-lived values cross calls.

A procedure is a sequence of segments drawn (with a seeded RNG) from a small
set of archetypes that map directly onto the control-flow situations the
paper discusses:

``compute``
    straight-line arithmetic, no control flow;
``diamond``
    an if/then/else over ordinary computation;
``guarded_call``
    ``if (p) { v = call(); ... use v ... }`` — a single-entry single-exit
    region that occupies a callee-saved register; its execution probability
    decides whether shrink-wrapping beats entry/exit placement for it;
``early_exit_call``
    a guarded region with a conditional jump out of its middle — the
    jump-edge situation (paper, Figure 2, blocks D/E/F) that Chow's technique
    cannot exploit but the hierarchical algorithm can;
``loop_call``
    a counted loop whose body calls a helper — save/restore code must stay
    out of the loop.

Every branch emitted records its taken-probability, so a flow-conserving
profile can be derived analytically with
:func:`repro.profiling.synthetic.profile_from_branch_probabilities`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instructions import Opcode
from repro.ir.values import Register
from repro.ir.verifier import verify_function
from repro.profiling.profile_data import EdgeProfile
from repro.profiling.synthetic import profile_from_branch_probabilities
from repro.target.machine import MachineDescription

EdgeKey = Tuple[str, str]

#: Segment archetypes understood by the generator.
SEGMENT_KINDS = (
    "compute",
    "diamond",
    "guarded_call",
    "early_exit_call",
    "loop_call",
)


@dataclass
class GeneratorConfig:
    """Knobs controlling the shape of one generated procedure.

    The ``segment_weights`` decide the mix of archetypes; the probability
    knobs decide how hot the guarded regions are, which in turn decides which
    placement technique wins on the procedure.
    """

    name: str = "generated"
    seed: int = 0
    #: How many segments the procedure body contains.
    num_segments: int = 6
    #: Relative weights of the archetypes, keyed by :data:`SEGMENT_KINDS`.
    segment_weights: Dict[str, float] = field(
        default_factory=lambda: {
            "compute": 2.0,
            "diamond": 1.5,
            "guarded_call": 2.0,
            "early_exit_call": 1.0,
            "loop_call": 0.5,
        }
    )
    #: Probability that a guarded call region executes on a given invocation.
    hot_region_probability: float = 0.9
    #: Probability used for *cold* guarded regions (error paths and the like).
    cold_region_probability: float = 0.05
    #: Fraction of guarded regions that are cold.
    cold_region_fraction: float = 0.3
    #: Probability of leaving an early-exit region through the early exit.
    early_exit_probability: float = 0.4
    #: Expected trip count of generated loops.
    loop_trip_count: float = 8.0
    #: Straight-line instructions added per generated block.
    block_ballast: int = 3
    #: Long-lived values defined at entry and used at exit (they cross every
    #: call and therefore demand callee-saved registers or spills).
    num_accumulators: int = 2
    #: Call-crossing locals created inside each guarded/early-exit call region.
    #: They are simultaneously live across the region's second call, so each
    #: one demands its own callee-saved register — the knob that controls how
    #: many callee-saved registers a procedure's cold or hot paths occupy.
    locals_per_call_region: int = 1
    #: Extra short-lived temporaries per segment (register pressure).
    temporaries_per_segment: int = 2
    #: Procedure invocation count used for the profile.
    invocations: float = 1000.0


@dataclass
class GeneratedProcedure:
    """A generated function plus its analytically derived profile."""

    function: Function
    profile: EdgeProfile
    config: GeneratorConfig
    branch_probabilities: Dict[EdgeKey, float]
    segments: List[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        """The generated function's name (from the config)."""

        return self.function.name


class _ProcedureEmitter:
    """Stateful helper emitting one procedure segment by segment."""

    def __init__(self, config: GeneratorConfig, rng: random.Random):
        self.config = config
        self.rng = rng
        self.builder = FunctionBuilder(config.name)
        self.probabilities: Dict[EdgeKey, float] = {}
        self.segments: List[str] = []
        self._label_index = 0
        self.accumulators: List[Register] = []
        self._call_index = 0

    # -- small helpers ------------------------------------------------------------

    def _label(self, stem: str) -> str:
        self._label_index += 1
        return f"{stem}{self._label_index}"

    def _callee(self) -> str:
        self._call_index += 1
        return f"helper{self._call_index}"

    def _ballast(self, extra_temporaries: int = 0) -> None:
        builder = self.builder
        temps = [builder.const(self.rng.randrange(1, 100)) for _ in range(extra_temporaries)]
        sources: List[Register] = list(self.accumulators) + temps
        for _ in range(self.config.block_ballast):
            if len(sources) >= 2 and self.rng.random() < 0.8:
                lhs, rhs = self.rng.sample(sources, 2)
                opcode = self.rng.choice((Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.XOR))
                builder.binary(opcode, lhs, rhs)
            else:
                builder.nop()

    def _condition(self) -> Register:
        builder = self.builder
        if self.accumulators and self.rng.random() < 0.7:
            source = self.rng.choice(self.accumulators)
        else:
            source = builder.const(self.rng.randrange(0, 50))
        return builder.cmp_lt(source, self.rng.randrange(1, 100))

    def _record(self, src_label: str, dst_label: str, probability: float) -> None:
        self.probabilities[(src_label, dst_label)] = probability

    def _bump_accumulator(self) -> None:
        if self.accumulators:
            accumulator = self.rng.choice(self.accumulators)
            self.builder.add(accumulator, 1, accumulator)

    # -- segments -----------------------------------------------------------------

    def emit_prologue(self) -> None:
        builder = self.builder
        builder.block("entry")
        for index in range(self.config.num_accumulators):
            self.accumulators.append(builder.const(index + 1))
        self._ballast()

    def emit_epilogue(self) -> None:
        builder = self.builder
        # Use the accumulators so their live ranges span the whole body.
        result: Optional[Register] = None
        for accumulator in self.accumulators:
            result = builder.add(accumulator, result if result is not None else 0)
        builder.block(self._label("exit"))
        builder.ret([result] if result is not None else [])

    def emit_compute(self) -> None:
        self._ballast(self.config.temporaries_per_segment)

    def emit_diamond(self) -> None:
        builder = self.builder
        probability = self.rng.uniform(0.2, 0.8)
        condition = self._condition()
        then_label = self._label("then")
        merge_label = self._label("merge")
        current = builder.current.label
        builder.branch(condition, then_label)
        self._record(current, then_label, probability)

        builder.block(self._label("else"))
        self._ballast(1)
        builder.jump(merge_label)

        builder.block(then_label)
        self._ballast(1)
        self._bump_accumulator()

        builder.block(merge_label)
        self._ballast()

    def _guard_probability(self) -> float:
        if self.rng.random() < self.config.cold_region_fraction:
            return self.config.cold_region_probability
        return self.config.hot_region_probability

    def _region_locals(self) -> List[Register]:
        """Create the region's call-crossing locals (seeded from one call)."""

        builder = self.builder
        first = builder.call(self._callee(), returns_value=True)
        locals_ = [first]
        for offset in range(1, max(1, self.config.locals_per_call_region)):
            locals_.append(builder.add(first, offset))
        return locals_

    def _use_region_locals(self, locals_: List[Register]) -> None:
        builder = self.builder
        for register in locals_:
            builder.add(register, 1)

    def emit_guarded_call(self) -> None:
        """``if (p) { v = call(); ...; call(); use v }`` — one occupied region."""

        builder = self.builder
        execute_probability = self._guard_probability()
        condition = self._condition()
        merge_label = self._label("merge")
        current = builder.current.label
        # Taken branch skips the region, so taken probability = 1 - p(execute).
        builder.branch(condition, merge_label)
        self._record(current, merge_label, 1.0 - execute_probability)

        builder.block(self._label("call_body"))
        locals_ = self._region_locals()
        self._ballast(1)
        builder.call(self._callee(), args=[locals_[0]])
        self._use_region_locals(locals_)
        self._bump_accumulator()

        builder.block(merge_label)
        self._ballast()

    def emit_early_exit_call(self) -> None:
        """A guarded call region with a jump out of its middle (Figure 2's D/E/F)."""

        builder = self.builder
        execute_probability = self._guard_probability()
        early_probability = self.config.early_exit_probability
        condition = self._condition()
        merge_label = self._label("merge")
        current = builder.current.label
        builder.branch(condition, merge_label)
        self._record(current, merge_label, 1.0 - execute_probability)

        builder.block(self._label("body_head"))
        locals_ = self._region_locals()
        self._ballast(1)
        early_condition = builder.cmp_eq(locals_[0], 0)
        head_label = builder.current.label
        builder.branch(early_condition, merge_label)
        self._record(head_label, merge_label, early_probability)

        builder.block(self._label("body_tail"))
        builder.call(self._callee(), args=[locals_[0]])
        self._use_region_locals(locals_)
        self._ballast(1)
        self._bump_accumulator()

        builder.block(merge_label)
        self._ballast()

    def emit_loop_call(self) -> None:
        builder = self.builder
        trips = max(self.config.loop_trip_count, 0.5)
        exit_probability = 1.0 / (trips + 1.0)

        header_label = self._label("header")
        after_label = self._label("after")
        counter = builder.const(0)
        builder.block(header_label)
        condition = builder.cmp_ge(counter, int(trips))
        builder.branch(condition, after_label)
        self._record(header_label, after_label, exit_probability)

        builder.block(self._label("loop_body"))
        value = builder.call(self._callee(), returns_value=True)
        builder.add(counter, 1, counter)
        builder.add(value, 1)
        self._ballast(1)
        builder.jump(header_label)

        builder.block(after_label)
        self._ballast()

    # -- driver -------------------------------------------------------------------

    def emit(self) -> GeneratedProcedure:
        config = self.config
        self.emit_prologue()
        kinds = list(config.segment_weights.keys())
        weights = [max(config.segment_weights[k], 0.0) for k in kinds]
        emitters = {
            "compute": self.emit_compute,
            "diamond": self.emit_diamond,
            "guarded_call": self.emit_guarded_call,
            "early_exit_call": self.emit_early_exit_call,
            "loop_call": self.emit_loop_call,
        }
        for _ in range(config.num_segments):
            kind = self.rng.choices(kinds, weights=weights, k=1)[0]
            self.segments.append(kind)
            emitters[kind]()
        self.emit_epilogue()

        function = self.builder.build()
        verify_function(function, require_single_exit=True)
        profile = profile_from_branch_probabilities(
            function, invocations=config.invocations, probabilities=self.probabilities
        )
        return GeneratedProcedure(
            function=function,
            profile=profile,
            config=config,
            branch_probabilities=dict(self.probabilities),
            segments=list(self.segments),
        )


def config_for_target(
    machine: MachineDescription, base: Optional[GeneratorConfig] = None
) -> GeneratorConfig:
    """A :class:`GeneratorConfig` whose pressure knobs fit ``machine``.

    The number of call-crossing values (accumulators and per-region locals)
    scales with the target's callee-saved file and the short-lived temporary
    count with its caller-saved file, so generated procedures exercise — but
    do not hopelessly overload — whatever register file they are compiled
    for.  Starting from ``base`` (default :class:`GeneratorConfig`) only the
    pressure knobs are replaced.
    """

    base = base if base is not None else GeneratorConfig()
    return replace(
        base,
        num_accumulators=max(1, machine.num_callee_saved // 4),
        locals_per_call_region=max(1, machine.num_callee_saved // 8),
        temporaries_per_segment=max(2, machine.num_caller_saved // 4),
    )


def generate_procedure(config: GeneratorConfig) -> GeneratedProcedure:
    """Generate one procedure (deterministic for a given config and seed)."""

    rng = random.Random(config.seed)
    return _ProcedureEmitter(config, rng).emit()


def generate_procedures(
    base: GeneratorConfig, count: int, name_prefix: Optional[str] = None
) -> List[GeneratedProcedure]:
    """Generate ``count`` procedures varying only the seed (and name)."""

    prefix = name_prefix or base.name
    procedures = []
    for index in range(count):
        config = GeneratorConfig(**{**base.__dict__, "name": f"{prefix}_{index}", "seed": base.seed + index})
        procedures.append(generate_procedure(config))
    return procedures
