"""The declarative scenario registry: named workload families.

The SPEC-like suite (:mod:`repro.workloads.spec_like`) reproduces the paper's
evaluation, but its procedures are all built from the same five reducible
archetypes.  The ROADMAP's north star — "as many scenarios as you can
imagine" — needs control-flow *diversity*: multiway branches whose edges are
critical, loops with several entry blocks, deeply nested natural loops,
webs of calls, register-pressure sweeps, and arbitrary seeded chaos.

Each :class:`ScenarioFamily` is a named, deterministic generator: the same
``(family, seed, index, machine)`` always produces the bit-identical
procedure (fingerprints are stable across processes), so stress runs are
reproducible and the compile cache works across sessions.  Families are
registered in :data:`SCENARIO_FAMILIES` and consumed by the differential
stress harness (:mod:`repro.evaluation.differential`), the documentation
examples and the benchmark suite.

Families and the control-flow situation each one pins down:

``switch_dispatch``
    two dispatcher blocks multiway-branching over a *shared* set of case
    blocks — every switch edge is a critical jump edge, so case-local
    callee-saved occupancy forces spill code onto critical multiway edges
    (jump blocks, the jump-edge cost model's subject);
``irreducible_loop``
    a cycle entered through two different blocks; no natural loop covers it
    and region-based placement must stay sound without loop information;
``deep_loop_nest``
    counted loops nested several levels deep with a call in the innermost
    body — save/restore code must stay out of all of them;
``call_web``
    a dense web of call sites with overlapping call-crossing values, the
    maximum-callee-saved-pressure shape of recursive interpreters;
``pressure_sweep``
    index-parameterized register pressure from "fits in caller-saved" to
    "spills", calibrated against the target's register file;
``classic_mix``
    the original generator archetypes, bridged into the registry so every
    consumer of the registry also covers the paper's shapes;
``chaos_cfg``
    seeded arbitrary flowgraphs mixing branches, switches, jumps and
    fall-throughs — reducible or not — as a differential-testing net.

See ``docs/workloads.md`` for the full catalogue with CFG sketches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instructions import Opcode
from repro.ir.passes import remove_unreachable_blocks
from repro.ir.verifier import collect_function_errors, verify_function
from repro.profiling.profile_data import ProfileError
from repro.profiling.synthetic import profile_from_branch_probabilities
from repro.target.machine import MachineDescription
from repro.workloads.generator import (
    GeneratedProcedure,
    GeneratorConfig,
    config_for_target,
    generate_procedure,
)

EdgeKey = Tuple[str, str]

#: Builder signature: ``(seed, index, machine)`` -> one procedure.
ScenarioBuilder = Callable[[int, int, Optional[MachineDescription]], GeneratedProcedure]


@dataclass(frozen=True)
class ScenarioFamily:
    """One named workload family of the registry.

    ``builder`` is deterministic: identical ``(seed, index, machine)``
    arguments must produce a procedure with an identical fingerprint.
    ``tags`` classify the control flow the family exercises (used by tests
    and the stress harness to select subsets).
    """

    name: str
    description: str
    tags: Tuple[str, ...]
    builder: ScenarioBuilder
    #: How many procedures a default stress run draws from this family.
    default_count: int = 4

    def build(
        self,
        seed: int = 0,
        count: Optional[int] = None,
        machine: Optional[MachineDescription] = None,
    ) -> List[GeneratedProcedure]:
        """Build ``count`` procedures (default :attr:`default_count`)."""

        if count is not None and count < 1:
            raise ValueError(f"count must be >= 1, got {count!r}")
        total = self.default_count if count is None else count
        return [self.builder(seed, index, machine) for index in range(total)]


def _metadata_config(name: str, seed: int) -> GeneratorConfig:
    """Name/seed metadata for hand-built procedures.

    The registry's scenario builders are not parameterized by the generator's
    knobs, but downstream consumers expect every :class:`GeneratedProcedure`
    to carry its identity in ``config``.
    """

    return GeneratorConfig(name=name, seed=seed)


def _finish(
    function: Function,
    probabilities: Dict[EdgeKey, float],
    family: str,
    seed: int,
    invocations: float = 1000.0,
) -> GeneratedProcedure:
    """Verify, profile and wrap a hand-built scenario procedure."""

    verify_function(function, require_single_exit=True)
    profile = profile_from_branch_probabilities(
        function, invocations=invocations, probabilities=probabilities
    )
    return GeneratedProcedure(
        function=function,
        profile=profile,
        config=_metadata_config(function.name, seed),
        branch_probabilities=dict(probabilities),
        segments=[family],
    )


def _callee_saved_pressure(
    machine: Optional[MachineDescription], scale: float = 1.0
) -> int:
    """How many call-crossing locals saturate (but don't overload) ``machine``.

    ``scale`` is the catalog's pressure knob (LO/MD/HI map to 0.5/1.0/2.0);
    at the default 1.0 the result is bit-identical to the pre-catalog
    builders, which the trace-pinned fingerprints rely on.
    """

    base = 2 if machine is None else max(1, machine.num_callee_saved // 4)
    return max(1, int(round(base * scale)))


def _occupy_block(builder: FunctionBuilder, rng: random.Random, locals_count: int = 1) -> None:
    """Emit a call-crossing region inside the current block.

    ``v = call(); ...; call(v); use v`` — the locals are live across the
    second call, so the block ends up occupying callee-saved registers
    (the shaded blocks of the paper's figures).  The locals are never
    returned directly, which would force them into caller-saved registers.
    """

    first = builder.call(f"occ{rng.randrange(1_000_000)}", returns_value=True)
    locals_ = [first]
    for offset in range(1, max(1, locals_count)):
        locals_.append(builder.add(first, offset))
    builder.call(f"occ{rng.randrange(1_000_000)}", args=[first])
    for register in locals_:
        builder.add(register, 1)


# ---------------------------------------------------------------------------
# switch_dispatch — critical multiway jump edges.
# ---------------------------------------------------------------------------


def build_switch_dispatch(
    seed: int, index: int, machine: Optional[MachineDescription] = None,
    *, pressure_scale: float = 1.0
) -> GeneratedProcedure:
    """A dispatch loop whose two switches share one set of case blocks.

    Every case block has two predecessors (both dispatchers) and every
    dispatcher has K successors, so each of the ``2*K`` switch edges is a
    *critical multiway jump edge*: spill code placed there must materialize
    a jump block.  One cold case carries callee-saved occupancy, which is
    exactly what pulls save/restore code towards those edges.
    """

    rng = random.Random(f"switch_dispatch/{seed}/{index}")
    cases = rng.randrange(3, 6)
    trips = float(rng.randrange(6, 14))
    locals_count = _callee_saved_pressure(machine, pressure_scale)
    probabilities: Dict[EdgeKey, float] = {}

    builder = FunctionBuilder(f"switch_dispatch_s{seed}_{index}")
    builder.block("entry")
    acc = builder.const(1)
    counter = builder.const(0)

    builder.block("head")
    done = builder.cmp_ge(counter, int(trips))
    builder.branch(done, "done")
    probabilities[("head", "done")] = 1.0 / (trips + 1.0)

    case_labels = [f"case{i}" for i in range(cases)]

    builder.block("pick")
    pick = builder.cmp_lt(acc, 50)
    builder.branch(pick, "disp_b")
    probabilities[("pick", "disp_b")] = 0.5

    # One case is *cold* in both dispatchers (an error/slow path of the
    # dispatch table).  Its callee-saved occupancy is what hierarchical
    # placement can sink onto the critical multiway dispatch edges: the
    # dispatchers run several times per invocation, but the cold case runs
    # far less than once, so saving on its two in-edges beats entry/exit.
    cold_case = rng.randrange(cases)
    hot = (cold_case + 1) % cases
    cold_probability = 0.02

    builder.block("disp_a")
    selector_a = builder.binary(Opcode.REM, acc, cases)
    builder.switch(selector_a, case_labels)
    for position, label in enumerate(case_labels):
        probabilities[("disp_a", label)] = (
            cold_probability
            if position == cold_case
            else (1.0 - cold_probability) / (cases - 1)
        )

    builder.block("disp_b")
    selector_b = builder.binary(Opcode.REM, counter, cases)
    builder.switch(selector_b, case_labels)
    for position, label in enumerate(case_labels):
        if position == cold_case:
            probabilities[("disp_b", label)] = cold_probability
        elif position == hot:
            probabilities[("disp_b", label)] = 0.6
        else:
            probabilities[("disp_b", label)] = (
                (1.0 - 0.6 - cold_probability) / (cases - 2)
                if cases > 2
                else 1.0 - 0.6 - cold_probability
            )
    for position, label in enumerate(case_labels):
        builder.block(label)
        if position == cold_case:
            # The cold case occupies callee-saved registers: hierarchical
            # placement should sink its save/restore towards the (critical,
            # multiway) dispatch edges rather than pay on every invocation.
            _occupy_block(builder, rng, locals_count)
        else:
            builder.add(acc, position + 1, acc)
        builder.add(counter, 1, counter)
        builder.jump("head")

    builder.block("done")
    result = builder.add(acc, counter)
    builder.ret([result])
    return _finish(builder.function, probabilities, "switch_dispatch", seed)


# ---------------------------------------------------------------------------
# irreducible_loop — a cycle with two entry blocks.
# ---------------------------------------------------------------------------


def build_irreducible_loop(
    seed: int, index: int, machine: Optional[MachineDescription] = None,
    *, pressure_scale: float = 1.0
) -> GeneratedProcedure:
    """The classic two-entry loop plus a callee-saved-occupied cycle body.

    ``entry`` branches into either half of an ``A <-> B`` cycle, so neither
    ``A`` nor ``B`` dominates the other — there is no natural-loop back edge
    and :func:`repro.analysis.loops.is_reducible` reports ``False``.  A call
    with a crossing local sits inside the cycle, so callee-saved occupancy
    lives on blocks that no :class:`~repro.analysis.loops.Loop` covers.
    """

    rng = random.Random(f"irreducible_loop/{seed}/{index}")
    locals_count = _callee_saved_pressure(machine, pressure_scale)
    exit_probability = rng.uniform(0.2, 0.4)
    enter_b = rng.uniform(0.3, 0.7)
    probabilities: Dict[EdgeKey, float] = {}

    builder = FunctionBuilder(f"irreducible_loop_s{seed}_{index}")
    builder.block("entry")
    acc = builder.const(rng.randrange(1, 9))
    which = builder.cmp_lt(acc, 5)
    builder.branch(which, "b_half")
    probabilities[("entry", "b_half")] = enter_b

    builder.block("a_half")
    _occupy_block(builder, rng, locals_count)
    builder.add(acc, 3, acc)
    leave = builder.cmp_ge(acc, 40)
    builder.branch(leave, "done")
    probabilities[("a_half", "done")] = exit_probability

    builder.block("b_half")
    builder.add(acc, 1, acc)
    builder.jump("a_half")

    builder.block("done")
    result = builder.add(acc, 1)
    builder.ret([result])
    return _finish(builder.function, probabilities, "irreducible_loop", seed)


# ---------------------------------------------------------------------------
# deep_loop_nest — natural loops nested several levels deep.
# ---------------------------------------------------------------------------


def build_deep_loop_nest(
    seed: int, index: int, machine: Optional[MachineDescription] = None,
    *, pressure_scale: float = 1.0
) -> GeneratedProcedure:
    """Counted loops nested 3–4 deep with a call in the innermost body.

    Chow's loop avoidance and the hierarchical algorithm must both keep the
    save/restore code of the innermost call's crossing locals out of every
    loop level; the loop forest reports the full nesting depth.
    """

    rng = random.Random(f"deep_loop_nest/{seed}/{index}")
    depth = rng.randrange(3, 5)
    trips = [float(rng.randrange(3, 7)) for _ in range(depth)]
    locals_count = _callee_saved_pressure(machine, pressure_scale)
    probabilities: Dict[EdgeKey, float] = {}

    builder = FunctionBuilder(f"deep_loop_nest_s{seed}_{index}")
    builder.block("entry")
    acc = builder.const(0)
    counters = [builder.const(0) for _ in range(depth)]

    # head0 (outermost) .. head{depth-1} (innermost); each inner level gets
    # a preheader that resets its counter on every entry from the outer loop
    # (resetting in the header itself would clobber the count on back edges).
    for level in range(depth):
        if level > 0:
            builder.block(f"pre{level}")
            builder.const(0, counters[level])
        builder.block(f"head{level}")
        done = builder.cmp_ge(counters[level], int(trips[level]))
        after = f"after{level}"
        builder.branch(done, after)
        probabilities[(f"head{level}", after)] = 1.0 / (trips[level] + 1.0)

    builder.block("body")
    _occupy_block(builder, rng, locals_count)
    builder.add(acc, 1, acc)
    builder.add(counters[-1], 1, counters[-1])
    builder.jump(f"head{depth - 1}")

    # Close the nest inside-out: after{level} increments the next-outer
    # counter and jumps back to its header.
    for level in range(depth - 1, 0, -1):
        builder.block(f"after{level}")
        builder.add(counters[level - 1], 1, counters[level - 1])
        builder.jump(f"head{level - 1}")

    builder.block("after0")
    result = builder.add(acc, counters[0])
    builder.ret([result])
    return _finish(builder.function, probabilities, "deep_loop_nest", seed)


# ---------------------------------------------------------------------------
# call_web — overlapping call-crossing values.
# ---------------------------------------------------------------------------


def build_call_web(
    seed: int, index: int, machine: Optional[MachineDescription] = None,
    *, pressure_scale: float = 1.0
) -> GeneratedProcedure:
    """A web of call sites whose results feed later calls.

    ``v1 = f1(); v2 = f2(v1); v3 = f3(v2); ...`` with every ``v_i`` also
    used *after* the last call: at each call site several values are
    simultaneously live across it, demanding as many callee-saved registers
    as the web is wide — the recursive-interpreter shape.
    """

    rng = random.Random(f"call_web/{seed}/{index}")
    width = max(2, _callee_saved_pressure(machine, pressure_scale) * 2)
    calls = rng.randrange(3, 3 + width)
    probabilities: Dict[EdgeKey, float] = {}

    builder = FunctionBuilder(f"call_web_s{seed}_{index}")
    builder.block("entry")
    guard = builder.const(rng.randrange(0, 10))
    taken = builder.cmp_lt(guard, 5)
    builder.branch(taken, "merge")
    probabilities[("entry", "merge")] = 0.5

    builder.block("web")
    values = [builder.call("web0", returns_value=True)]
    for position in range(1, calls):
        argument = values[rng.randrange(len(values))]
        values.append(builder.call(f"web{position}", args=[argument], returns_value=True))
    # Use every web value after the last call so all of them cross it.
    mixed = values[0]
    for value in values[1:]:
        mixed = builder.add(mixed, value)
    builder.add(mixed, 1, mixed)

    builder.block("merge")
    result = builder.const(7)
    builder.ret([result])
    return _finish(builder.function, probabilities, "call_web", seed)


# ---------------------------------------------------------------------------
# pressure_sweep — index-parameterized register pressure.
# ---------------------------------------------------------------------------


def build_pressure_sweep(
    seed: int, index: int, machine: Optional[MachineDescription] = None,
    *, pressure_scale: float = 1.0
) -> GeneratedProcedure:
    """Register pressure swept by procedure index.

    Procedure ``index`` keeps ``index + 1`` values live across a guarded
    cold call region (capped at 1.5× the target's callee-saved file, so the
    top of the sweep provokes allocator spills).  The sweep ties placement
    overhead to occupancy: each step occupies one more callee-saved register.
    """

    rng = random.Random(f"pressure_sweep/{seed}/{index}")
    ceiling = machine.num_callee_saved if machine is not None else 8
    live_values = min(
        max(1, int(round((index + 1) * pressure_scale))),
        max(2, (ceiling * 3) // 2),
    )
    cold_probability = 0.05
    probabilities: Dict[EdgeKey, float] = {}

    builder = FunctionBuilder(f"pressure_sweep_s{seed}_{index}")
    builder.block("entry")
    first = builder.call("seed_value", returns_value=True)
    values = [first]
    for offset in range(1, live_values):
        values.append(builder.add(first, offset))
    guard = builder.cmp_lt(first, 3)
    builder.branch(guard, "merge")
    probabilities[("entry", "merge")] = 1.0 - cold_probability

    builder.block("cold")
    builder.call("cold_helper", args=[values[0]])
    for value in values:
        builder.add(value, 1)
    builder.block("merge")
    mixed = values[0]
    for value in values[1:]:
        mixed = builder.add(mixed, value)
    builder.add(mixed, rng.randrange(1, 5), mixed)
    builder.ret([mixed])
    return _finish(builder.function, probabilities, "pressure_sweep", seed)


# ---------------------------------------------------------------------------
# classic_mix — the original generator archetypes, bridged in.
# ---------------------------------------------------------------------------


def build_classic_mix(
    seed: int, index: int, machine: Optional[MachineDescription] = None,
    *, pressure_scale: float = 1.0
) -> GeneratedProcedure:
    """The paper-era archetype mix via the parameterized generator."""

    config = GeneratorConfig(
        name=f"classic_mix_s{seed}_{index}",
        seed=seed * 1009 + index,
        num_segments=max(1, int(round((4 + index % 4) * pressure_scale))),
    )
    if machine is not None:
        config = config_for_target(machine, config)
    return generate_procedure(config)


# ---------------------------------------------------------------------------
# chaos_cfg — seeded arbitrary flowgraphs.
# ---------------------------------------------------------------------------


def _random_function(
    rng: random.Random, name: str, locals_count: int = 1
) -> Optional[Function]:
    """One attempt at a random CFG; ``None`` when the draw is malformed.

    Terminators are drawn freely (conditional branch, unconditional jump,
    multiway switch, plain fall-through) with targets anywhere in the block
    list, so back edges, cross edges and multi-entry cycles all occur.
    Unreachable blocks are pruned; draws that leave blocks unable to reach
    the exit (or otherwise fail verification) are rejected by the caller.
    """

    body_blocks = rng.randrange(4, 9)
    labels = [f"b{i}" for i in range(body_blocks)] + ["exit"]
    builder = FunctionBuilder(name)

    values = []
    builder.block(labels[0])
    values.append(builder.const(rng.randrange(1, 50)))

    for position, label in enumerate(labels[:-1]):
        if position > 0:
            builder.block(label)
        if rng.random() < 0.35:
            _occupy_block(builder, rng, locals_count)
        else:
            values.append(builder.add(values[-1], rng.randrange(1, 9)))
        other_labels = [l for l in labels if l != label]
        kind = rng.random()
        next_label = labels[position + 1]
        if kind < 0.3:
            # Conditional branch; the taken target must differ from the
            # fall-through successor (duplicate-edge rule).
            candidates = [l for l in other_labels if l != next_label]
            target = rng.choice(candidates)
            condition = builder.cmp_lt(values[-1], rng.randrange(1, 60))
            builder.branch(condition, target)
        elif kind < 0.5:
            width = rng.randrange(2, 4)
            targets = rng.sample(other_labels, min(width, len(other_labels)))
            selector = builder.binary(Opcode.REM, values[-1], len(targets))
            builder.switch(selector, targets)
        elif kind < 0.7:
            builder.jump(rng.choice(other_labels))
        # else: plain fall-through to the next block in layout.

    builder.block("exit")
    builder.ret([values[-1]])
    function = builder.function
    remove_unreachable_blocks(function)
    if collect_function_errors(function, require_single_exit=True):
        return None
    return function


def build_chaos_cfg(
    seed: int, index: int, machine: Optional[MachineDescription] = None,
    *, pressure_scale: float = 1.0
) -> GeneratedProcedure:
    """A seeded arbitrary flowgraph (reducible or not) with a uniform profile.

    Rejected draws (blocks that cannot reach the exit, singular flow
    equations) deterministically advance to the next attempt, so the result
    is still a pure function of ``(seed, index)``.
    """

    for attempt in range(64):
        rng = random.Random(f"chaos_cfg/{seed}/{index}/{attempt}")
        function = _random_function(
            rng, f"chaos_cfg_s{seed}_{index}",
            locals_count=max(1, int(round(pressure_scale))),
        )
        if function is None:
            continue
        try:
            return _finish(function, {}, "chaos_cfg", seed)
        except ProfileError:
            continue
    raise RuntimeError(
        f"chaos_cfg could not draw a valid flowgraph for seed={seed} index={index}"
    )


# ---------------------------------------------------------------------------
# The registry.
# ---------------------------------------------------------------------------

SCENARIO_FAMILIES: Tuple[ScenarioFamily, ...] = (
    ScenarioFamily(
        name="switch_dispatch",
        description="two multiway dispatchers over shared case blocks; "
        "every switch edge is a critical jump edge",
        tags=("switch", "critical-edges", "loop"),
        builder=build_switch_dispatch,
    ),
    ScenarioFamily(
        name="irreducible_loop",
        description="a two-entry cycle (no natural loop) with callee-saved "
        "occupancy inside the cycle",
        tags=("irreducible", "loop"),
        builder=build_irreducible_loop,
    ),
    ScenarioFamily(
        name="deep_loop_nest",
        description="counted loops nested 3-4 deep with a call in the "
        "innermost body",
        tags=("loop", "nesting"),
        builder=build_deep_loop_nest,
    ),
    ScenarioFamily(
        name="call_web",
        description="a web of call sites with overlapping call-crossing "
        "values (maximum callee-saved pressure)",
        tags=("calls", "pressure"),
        builder=build_call_web,
    ),
    ScenarioFamily(
        name="pressure_sweep",
        description="register pressure swept by procedure index, calibrated "
        "to the target's callee-saved file",
        tags=("pressure",),
        builder=build_pressure_sweep,
        default_count=6,
    ),
    ScenarioFamily(
        name="classic_mix",
        description="the original generator archetypes (diamonds, guarded "
        "calls, early exits, loops) bridged into the registry",
        tags=("classic",),
        builder=build_classic_mix,
    ),
    ScenarioFamily(
        name="chaos_cfg",
        description="seeded arbitrary flowgraphs mixing br/jmp/switch/"
        "fall-through, reducible or not",
        tags=("chaos", "switch", "irreducible-sometimes"),
        builder=build_chaos_cfg,
        default_count=6,
    ),
)

_BY_NAME: Dict[str, ScenarioFamily] = {family.name: family for family in SCENARIO_FAMILIES}


def scenario_names() -> Tuple[str, ...]:
    """The registered family names, in registry order."""

    return tuple(family.name for family in SCENARIO_FAMILIES)


def get_scenario(name: str) -> ScenarioFamily:
    """Look up one family by name."""

    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario family {name!r}; expected one of "
            + ", ".join(scenario_names())
        ) from None


def build_scenario(
    name: str,
    seed: int = 0,
    count: Optional[int] = None,
    machine: Optional[MachineDescription] = None,
) -> List[GeneratedProcedure]:
    """Build ``count`` procedures of family ``name`` (deterministic by seed)."""

    return get_scenario(name).build(seed=seed, count=count, machine=machine)


def build_scenario_suite(
    names: Optional[Sequence[str]] = None,
    seed: int = 0,
    count: Optional[int] = None,
    machine: Optional[MachineDescription] = None,
) -> Dict[str, List[GeneratedProcedure]]:
    """Build every family (or the named subset), keyed by family name."""

    selected = scenario_names() if names is None else tuple(names)
    return {
        name: build_scenario(name, seed=seed, count=count, machine=machine)
        for name in selected
    }
