"""Hand-written example programs.

The most important function here is :func:`paper_example`, a reconstruction
of the worked example of the paper's Figures 2-4: sixteen basic blocks
``A`` … ``P``, profile counts on every edge, and a single callee-saved
register occupied in blocks ``D``, ``E``, ``G``, ``K`` and ``N``.  The
numbers were chosen so that every cost quoted in the paper's walk-through is
reproduced exactly:

* entry/exit placement overhead: 200
* Chow's shrink-wrapping overhead: 250
* modified shrink-wrapping sets: Set 1 = 80, Set 2 = Set 3 = Set 4 = 50
* maximal-SESE-region boundaries: Region 1 = 100, Region 2 = 140,
  Region 3 = 60, Region 4 (procedure) = 200
* hierarchical placement: 190 under the execution-count model,
  200 (= entry/exit) under the jump-edge model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.ir import instructions as ins
from repro.ir.basic_block import BasicBlock
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.values import Label, PhysicalRegister
from repro.profiling.profile_data import EdgeProfile
from repro.spill.model import CalleeSavedUsage
from repro.target.parisc import parisc_target

EdgeKey = Tuple[str, str]


@dataclass(frozen=True)
class PaperExample:
    """The Figure 2/3 worked example: function, profile and callee-saved usage."""

    function: Function
    profile: EdgeProfile
    usage: CalleeSavedUsage
    register: PhysicalRegister

    #: Blocks shaded in the paper's figure (callee-saved register occupied).
    occupied_blocks: Tuple[str, ...] = ("D", "E", "G", "K", "N")


def _ballast(builder: FunctionBuilder, count: int = 1) -> None:
    """Emit a few ordinary instructions so blocks look like real code."""

    builder.nop(count)


def paper_example() -> PaperExample:
    """Build the reconstruction of the paper's motivating example."""

    target = parisc_target()
    callee = target.callee_saved[0]

    builder = FunctionBuilder("paper_example")
    v_cond = builder.new_vreg()

    # Layout order matters: fall-through edges go to the next block in layout.
    builder.block("A")
    builder.const(1, v_cond)
    builder.branch(v_cond, "I")           # A -> I (jump, 30); falls through to B (70)

    builder.block("B")
    _ballast(builder)
    builder.branch(v_cond, "H")           # B -> H (jump, 20); falls through to C (50)

    builder.block("C")
    _ballast(builder)
    builder.branch(v_cond, "F")           # C -> F (jump, 10); falls through to D (40)

    builder.block("D")                     # occupied
    builder.call("helper_d")
    builder.branch(v_cond, "F")           # D -> F (jump, 30); falls through to E (10)

    builder.block("E")                     # occupied
    builder.call("helper_e")

    builder.block("F")                     # E falls through to F; C and D jump here
    _ballast(builder)

    builder.block("H")                     # F falls through to H; B jumps here
    _ballast(builder)
    builder.branch(v_cond, "J")           # H -> J (jump, 45); falls through to G (25)

    builder.block("G")                     # occupied
    builder.call("helper_g")

    builder.block("J")                     # G falls through to J; H jumps here
    _ballast(builder)
    builder.jump("P")                     # J -> P (jump, 70)

    builder.block("I")                     # A jumps here (30)
    _ballast(builder)
    builder.branch(v_cond, "L")           # I -> L (jump, 5); falls through to K (25)

    builder.block("K")                     # occupied
    builder.call("helper_k")

    builder.block("M")                     # K falls through to M; L jumps here
    _ballast(builder)
    builder.branch(v_cond, "O")           # M -> O (jump, 5); falls through to N (25)

    builder.block("N")                     # occupied
    builder.call("helper_n")

    builder.block("O")                     # N falls through to O; M jumps here
    _ballast(builder)

    builder.block("P")                     # O falls through to P; J jumps here
    builder.ret()

    builder.block("L")                     # placed last; reached only by jump from I
    _ballast(builder)
    builder.jump("M")                     # L -> M (jump, 5)

    function = builder.build()

    edge_counts: Dict[EdgeKey, float] = {
        ("A", "B"): 70, ("A", "I"): 30,
        ("B", "C"): 50, ("B", "H"): 20,
        ("C", "D"): 40, ("C", "F"): 10,
        ("D", "E"): 10, ("D", "F"): 30,
        ("E", "F"): 10,
        ("F", "H"): 50,
        ("H", "G"): 25, ("H", "J"): 45,
        ("G", "J"): 25,
        ("J", "P"): 70,
        ("I", "K"): 25, ("I", "L"): 5,
        ("K", "M"): 25,
        ("L", "M"): 5,
        ("M", "N"): 25, ("M", "O"): 5,
        ("N", "O"): 25,
        ("O", "P"): 30,
    }
    profile = EdgeProfile.from_counts(function, edge_counts, invocations=100)
    usage = CalleeSavedUsage.from_blocks({callee: ["D", "E", "G", "K", "N"]})
    return PaperExample(function=function, profile=profile, usage=usage, register=callee)


def figure1_function(hot_allocation: bool = False) -> Tuple[Function, EdgeProfile, CalleeSavedUsage]:
    """The paper's Figure 1: a diamond whose arms occupy a callee-saved register.

    With ``hot_allocation=False`` the two occupied blocks are cold (average
    execution count below the entry count), so shrink-wrapping beats
    entry/exit placement; with ``hot_allocation=True`` both arms are occupied
    on almost every invocation and shrink-wrapping is *worse* than
    entry/exit, which is exactly the scenario Chow's technique cannot detect
    without profile data.
    """

    target = parisc_target()
    callee = target.callee_saved[0]

    builder = FunctionBuilder("figure1")
    cond = builder.new_vreg()
    builder.block("entry")
    builder.const(0, cond)
    builder.branch(cond, "use_left")

    builder.block("skip_right")
    builder.nop(2)
    builder.jump("merge")

    builder.block("use_left")
    builder.call("left_helper")

    builder.block("merge")
    cond2 = builder.new_vreg()
    builder.const(1, cond2)
    builder.branch(cond2, "use_right")

    builder.block("skip_exit")
    builder.nop(2)
    builder.jump("exit")

    builder.block("use_right")
    builder.call("right_helper")

    builder.block("exit")
    builder.ret()

    function = builder.build()

    taken = 90.0 if hot_allocation else 10.0
    invocations = 100.0
    edge_counts: Dict[EdgeKey, float] = {
        ("entry", "use_left"): taken,
        ("entry", "skip_right"): invocations - taken,
        ("use_left", "merge"): taken,
        ("skip_right", "merge"): invocations - taken,
        ("merge", "use_right"): taken,
        ("merge", "skip_exit"): invocations - taken,
        ("use_right", "exit"): taken,
        ("skip_exit", "exit"): invocations - taken,
    }
    profile = EdgeProfile.from_counts(function, edge_counts, invocations=invocations)
    usage = CalleeSavedUsage.from_blocks({callee: ["use_left", "use_right"]})
    return function, profile, usage


def diamond_function() -> Function:
    """A minimal if/else diamond used throughout the unit tests."""

    builder = FunctionBuilder("diamond")
    cond = builder.new_vreg()
    builder.block("entry")
    builder.const(5, cond)
    builder.branch(cond, "then")
    builder.block("else_")
    builder.nop(2)
    builder.jump("merge")
    builder.block("then")
    builder.nop(1)
    builder.block("merge")
    builder.ret()
    return builder.build()


def loop_function(trip_count_register: bool = True) -> Function:
    """A counted loop with a call in the body (forces callee-saved pressure)."""

    builder = FunctionBuilder("loop")
    counter = builder.new_vreg()
    limit = builder.new_vreg()
    cond = builder.new_vreg()

    builder.block("entry")
    builder.const(0, counter)
    builder.const(10, limit)

    builder.block("header")
    builder.binary(ins.Opcode.CMP_LT, counter, limit, cond)
    builder.branch(cond, "body")

    builder.block("after")
    builder.jump("exit")

    builder.block("body")
    builder.call("callee")
    builder.add(counter, 1, counter)
    builder.jump("header")

    builder.block("exit")
    builder.ret()
    return builder.build()


def call_chain_function(num_calls: int = 3) -> Function:
    """Straight-line code with several calls, separated by arithmetic."""

    builder = FunctionBuilder("call_chain")
    value = builder.new_vreg()
    builder.block("entry")
    builder.const(1, value)
    for index in range(num_calls):
        builder.add(value, index, value)
        builder.call(f"callee{index}")
    builder.block("exit")
    builder.ret([value])
    return builder.build()
