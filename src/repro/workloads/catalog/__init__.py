"""The versioned workload catalog: data-driven scenario specs.

Scenario definitions live in TOML files next to this module
(``scenarios.toml`` for the synthetic families, ``pyfuncs.toml`` for
frontend-translated real functions) and are loaded through a schema-checked
catalog keyed by *combination codes*::

    <stem><version>_<pressure>_<cfgclass>      e.g.  switch1_HI_RED

``stem`` names the workload family (lowercase letters), ``version`` is the
spec revision, ``pressure`` ∈ LO/MD/HI scales register pressure (synthetic
entries) or input magnitude (pyfunc entries), and ``cfgclass`` ∈ RED/IRR/MIX
records the control-flow class.  Legacy family names (``switch_dispatch``…)
remain available as aliases of the MD entries, which build bit-identical
procedures to the pre-catalog registry.

Entry kinds:

``scenario``
    binds a family from :data:`repro.workloads.scenarios.SCENARIO_FAMILIES`
    with the pressure scale threaded into the builder;
``pyfunc``
    binds a function from the curated corpus under ``pyfuncs/`` — the
    frontend translates its bytecode to IR, and the entry's seeded input
    ranges drive an interpreter run (externals stubbed) that yields a *real*
    execution profile for the translated code.

Consumers: ``catalog:<name>[:seed[:index]]`` references in the service
protocol, the differential stress harness (``repro-spill stress
--catalog``), the loadgen ``catalog`` mix, and the ``repro-spill catalog``
CLI.  See ``docs/workloads.md`` for the grammar and ``docs/frontend.md``
for the translation contract.
"""

from __future__ import annotations

import inspect
import importlib
import os
import random
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.profiling.interpreter import Interpreter
from repro.profiling.profile_data import EdgeProfile
from repro.target.machine import MachineDescription
from repro.workloads.generator import GeneratedProcedure, GeneratorConfig
from repro.workloads.scenarios import SCENARIO_FAMILIES, get_scenario

#: Schema tag every catalog file must declare.
CATALOG_SCHEMA = "workload-catalog/v1"

#: What the LO/MD/HI pressure levels mean as a scale factor.  MD is exactly
#: 1.0 so MD scenario entries are bit-identical to the legacy registry.
PRESSURE_SCALES = {"LO": 0.5, "MD": 1.0, "HI": 2.0}

#: Recognised control-flow classes: reducible, irreducible, mixed draws.
CFG_CLASSES = ("RED", "IRR", "MIX")

#: Combination-code grammar (see the module docstring).
COMBINATION_CODE = re.compile(
    r"^(?P<stem>[a-z]+)(?P<version>[1-9][0-9]*)"
    r"_(?P<pressure>LO|MD|HI)_(?P<cfg>RED|IRR|MIX)$"
)

_ENTRY_KINDS = ("scenario", "pyfunc")
_COMMON_KEYS = {"name", "kind", "description"}
_SCENARIO_KEYS = _COMMON_KEYS | {"family"}
_PYFUNC_KEYS = _COMMON_KEYS | {"module", "func", "inputs"}

#: How many seeded interpreter runs derive a pyfunc entry's profile.
PYFUNC_PROFILE_RUNS = 8


class CatalogError(ValueError):
    """A catalog file failed schema validation."""


# --------------------------------------------------------------------------
# Minimal TOML reading.  Python >= 3.11 ships tomllib; older interpreters
# fall back to a tiny parser covering exactly the subset these files use
# (tables, arrays of tables, strings, ints, bools, nested int arrays).
# --------------------------------------------------------------------------

try:  # pragma: no cover - exercised implicitly on every load
    import tomllib as _toml
except ImportError:  # pragma: no cover - py<3.11 fallback
    _toml = None


def _parse_toml_value(text: str):
    text = text.strip()
    if text.startswith('"') and text.endswith('"'):
        return text[1:-1]
    if text in ("true", "false"):
        return text == "true"
    if text.startswith("["):
        inner, depth, items, start = text[1:-1], 0, [], 0
        for position, char in enumerate(inner):
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
            elif char == "," and depth == 0:
                if inner[start:position].strip():
                    items.append(_parse_toml_value(inner[start:position]))
                start = position + 1
        if inner[start:].strip():
            items.append(_parse_toml_value(inner[start:]))
        return items
    return int(text)


def _parse_toml(text: str) -> dict:
    """Parse the catalog TOML subset (fallback when tomllib is missing)."""

    root: dict = {}
    current = root
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[[") and line.endswith("]]"):
            key = line[2:-2].strip()
            current = {}
            root.setdefault(key, []).append(current)
        elif line.startswith("[") and line.endswith("]"):
            key = line[1:-1].strip()
            current = root.setdefault(key, {})
        else:
            key, _, value = line.partition("=")
            current[key.strip()] = _parse_toml_value(value)
    return root


def _read_toml(path: str) -> dict:
    with open(path, "rb") as handle:
        data = handle.read()
    if _toml is not None:
        return _toml.loads(data.decode("utf-8"))
    return _parse_toml(data.decode("utf-8"))


# --------------------------------------------------------------------------
# The pyfunc corpus: lazily translated, cached per corpus module.
# --------------------------------------------------------------------------

_CORPUS_PACKAGE = "repro.workloads.catalog.pyfuncs"
_corpus_cache: Dict[str, object] = {}


def corpus_functions(module_name: str) -> Dict[str, Callable]:
    """The public functions of one corpus module, in definition order."""

    module = importlib.import_module(f"{_CORPUS_PACKAGE}.{module_name}")
    return {
        name: func
        for name, func in vars(module).items()
        if inspect.isfunction(func)
        and func.__module__ == module.__name__
        and not name.startswith("_")
    }


def corpus_module(module_name: str):
    """The translated IR module for one corpus module (cached).

    Returns a :class:`repro.frontend.TranslatedModule`; translation happens
    once per process and is deterministic, so the cache cannot observe
    different results.
    """

    cached = _corpus_cache.get(module_name)
    if cached is None:
        from repro.frontend import translate_callables

        cached = translate_callables(
            corpus_functions(module_name), module_name=module_name
        )
        _corpus_cache[module_name] = cached
    return cached


# --------------------------------------------------------------------------
# Entries.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CatalogEntry:
    """One catalog workload, addressable by its combination code."""

    name: str
    kind: str
    description: str
    stem: str
    version: int
    pressure: str
    cfg: str
    family: Optional[str] = None
    module: Optional[str] = None
    func: Optional[str] = None
    inputs: Tuple[Tuple[int, int], ...] = ()
    #: How many procedures a default catalog stress run draws.
    default_count: int = 1

    @property
    def pressure_scale(self) -> float:
        """The numeric scale the entry's pressure level maps to."""

        return PRESSURE_SCALES[self.pressure]

    def build(
        self,
        seed: int = 0,
        index: int = 0,
        machine: Optional[MachineDescription] = None,
    ) -> GeneratedProcedure:
        """Build one procedure; deterministic in ``(name, seed, index, machine)``."""

        if self.kind == "scenario":
            assert self.family is not None
            return get_scenario(self.family).builder(
                seed, index, machine, pressure_scale=self.pressure_scale
            )
        return self._build_pyfunc(seed, index)

    def draw_inputs(self, rng: random.Random) -> List[int]:
        """One seeded argument list from the entry's pressure-scaled ranges."""

        return [self._draw(rng, low, high) for low, high in self.inputs]

    def _build_pyfunc(self, seed: int, index: int) -> GeneratedProcedure:
        translated = corpus_module(self.module)
        try:
            function = translated.functions[self.func]
        except KeyError:
            raise CatalogError(
                f"catalog entry {self.name!r} binds unknown corpus function "
                f"{self.module}:{self.func}"
            ) from None
        rng = random.Random(f"catalog/{self.name}/{seed}/{index}")
        # Externals stubbed (module=None): the edge counts belong purely to
        # the root function, which is what the profile describes.
        interpreter = Interpreter()
        edge_counts: Dict[Tuple[str, str], float] = {}
        for _ in range(PYFUNC_PROFILE_RUNS):
            args = [self._draw(rng, low, high) for low, high in self.inputs]
            result = interpreter.run(function.function, args)
            for edge, count in result.edge_counts.items():
                edge_counts[edge] = edge_counts.get(edge, 0.0) + float(count)
        profile = EdgeProfile(
            function_name=function.ir_name,
            invocations=float(PYFUNC_PROFILE_RUNS),
            edge_counts=edge_counts,
        )
        return GeneratedProcedure(
            function=function.function.clone(),
            profile=profile,
            config=GeneratorConfig(name=self.name, seed=seed),
            branch_probabilities={},
            segments=["pyfunc", f"{self.module}:{self.func}"],
        )

    def _draw(self, rng: random.Random, low: int, high: int) -> int:
        """One seeded input from ``[low, high]`` scaled by the pressure level."""

        span = max(1, int(round((high - low) * self.pressure_scale)))
        return low + rng.randrange(span + 1)


# --------------------------------------------------------------------------
# The catalog.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadCatalog:
    """Every loaded entry plus the legacy-name alias table."""

    version: int
    entries: Tuple[CatalogEntry, ...]
    aliases: Dict[str, str] = field(default_factory=dict)

    def names(self, kind: Optional[str] = None) -> Tuple[str, ...]:
        """All combination codes, optionally filtered by entry kind."""

        return tuple(
            entry.name for entry in self.entries if kind is None or entry.kind == kind
        )

    def resolve(self, name: str) -> CatalogEntry:
        """Look up an entry by combination code or legacy alias."""

        target = self.aliases.get(name, name)
        for entry in self.entries:
            if entry.name == target:
                return entry
        raise KeyError(
            f"unknown catalog entry {name!r}; expected a combination code "
            f"(e.g. {self.entries[0].name}) or an alias "
            f"({', '.join(sorted(self.aliases))})"
        )

    def codes_for_family(self, family: str) -> Tuple[str, ...]:
        """The combination codes of the scenario entries binding ``family``."""

        return tuple(
            entry.name for entry in self.entries if entry.family == family
        )

    def lint(self) -> List[str]:
        """Re-validate the loaded catalog deeply; returns problem strings.

        Beyond load-time schema checks, this translates every pyfunc entry's
        corpus function (so an out-of-subset corpus edit is caught) and
        checks input arity against the python signature.
        """

        from repro.frontend import UnsupportedOpcodeError

        problems: List[str] = []
        for entry in self.entries:
            if entry.kind == "scenario":
                try:
                    get_scenario(entry.family)
                except KeyError as exc:
                    problems.append(f"{entry.name}: {exc}")
                continue
            try:
                functions = corpus_functions(entry.module)
            except ImportError as exc:
                problems.append(f"{entry.name}: corpus module {entry.module!r}: {exc}")
                continue
            if entry.func not in functions:
                problems.append(
                    f"{entry.name}: no function {entry.func!r} in corpus module "
                    f"{entry.module!r}"
                )
                continue
            argcount = functions[entry.func].__code__.co_argcount
            if len(entry.inputs) != argcount:
                problems.append(
                    f"{entry.name}: {len(entry.inputs)} input ranges for "
                    f"{argcount} parameters"
                )
            for low, high in entry.inputs:
                if low > high:
                    problems.append(f"{entry.name}: empty input range [{low}, {high}]")
            try:
                corpus_module(entry.module)
            except UnsupportedOpcodeError as exc:
                problems.append(f"{entry.name}: corpus does not translate: {exc}")
        return problems


def _require_keys(table: dict, allowed: set, context: str) -> None:
    unknown = sorted(set(table) - allowed)
    if unknown:
        raise CatalogError(f"{context}: unknown keys {unknown}")
    missing = sorted(allowed - set(table))
    if missing:
        raise CatalogError(f"{context}: missing keys {missing}")


def _validate_entry(table: dict, position: int) -> CatalogEntry:
    if not isinstance(table.get("name"), str):
        raise CatalogError(f"entry #{position}: missing or non-string name")
    name = table["name"]
    match = COMBINATION_CODE.match(name)
    if match is None:
        raise CatalogError(
            f"entry {name!r}: not a combination code "
            "(<stem><version>_<LO|MD|HI>_<RED|IRR|MIX>)"
        )
    kind = table.get("kind")
    if kind not in _ENTRY_KINDS:
        raise CatalogError(f"entry {name!r}: kind must be one of {_ENTRY_KINDS}")
    if kind == "scenario":
        _require_keys(table, _SCENARIO_KEYS, f"entry {name!r}")
        return CatalogEntry(
            name=name,
            kind=kind,
            description=str(table["description"]),
            stem=match.group("stem"),
            version=int(match.group("version")),
            pressure=match.group("pressure"),
            cfg=match.group("cfg"),
            family=str(table["family"]),
            default_count=2,
        )
    _require_keys(table, _PYFUNC_KEYS, f"entry {name!r}")
    inputs = table["inputs"]
    if not isinstance(inputs, list) or not all(
        isinstance(pair, list) and len(pair) == 2
        and all(isinstance(bound, int) for bound in pair)
        for pair in inputs
    ):
        raise CatalogError(f"entry {name!r}: inputs must be a list of [low, high] pairs")
    return CatalogEntry(
        name=name,
        kind=kind,
        description=str(table["description"]),
        stem=match.group("stem"),
        version=int(match.group("version")),
        pressure=match.group("pressure"),
        cfg=match.group("cfg"),
        module=str(table["module"]),
        func=str(table["func"]),
        inputs=tuple((pair[0], pair[1]) for pair in inputs),
        default_count=1,
    )


def catalog_directory() -> str:
    """The directory the catalog TOML files live in."""

    return os.path.dirname(os.path.abspath(__file__))


def load_catalog(directory: Optional[str] = None) -> WorkloadCatalog:
    """Load and schema-validate every ``*.toml`` catalog file in ``directory``.

    Files are read in sorted name order so the entry order — and everything
    derived from it (CLI listings, loadgen plans) — is deterministic.
    Raises :class:`CatalogError` on any schema violation: bad combination
    code, unknown/missing keys, duplicate names, dangling aliases or
    scenario families, malformed input ranges.
    """

    directory = directory or catalog_directory()
    paths = sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".toml")
    )
    if not paths:
        raise CatalogError(f"no catalog files in {directory!r}")
    entries: List[CatalogEntry] = []
    aliases: Dict[str, str] = {}
    version: Optional[int] = None
    for path in paths:
        data = _read_toml(path)
        header = data.get("catalog")
        if not isinstance(header, dict) or header.get("schema") != CATALOG_SCHEMA:
            raise CatalogError(
                f"{os.path.basename(path)}: missing [catalog] header with "
                f"schema = {CATALOG_SCHEMA!r}"
            )
        file_version = header.get("version")
        if not isinstance(file_version, int):
            raise CatalogError(f"{os.path.basename(path)}: catalog.version must be an int")
        version = file_version if version is None else max(version, file_version)
        for position, table in enumerate(data.get("entry", [])):
            entries.append(_validate_entry(dict(table), position))
        for alias, target in data.get("alias", {}).items():
            aliases[str(alias)] = str(target)

    names = [entry.name for entry in entries]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise CatalogError(f"duplicate catalog entries: {duplicates}")
    known = set(names)
    for alias, target in aliases.items():
        if target not in known:
            raise CatalogError(f"alias {alias!r} points at unknown entry {target!r}")
        if alias in known:
            raise CatalogError(f"alias {alias!r} shadows a catalog entry")
    registered = {family.name for family in SCENARIO_FAMILIES}
    for entry in entries:
        if entry.kind == "scenario" and entry.family not in registered:
            raise CatalogError(
                f"entry {entry.name!r} binds unknown scenario family {entry.family!r}"
            )
    assert version is not None
    return WorkloadCatalog(version=version, entries=tuple(entries), aliases=aliases)


_catalog: Optional[WorkloadCatalog] = None


def get_catalog() -> WorkloadCatalog:
    """The process-wide catalog, loaded once from the packaged TOML files."""

    global _catalog
    if _catalog is None:
        _catalog = load_catalog()
    return _catalog


__all__ = [
    "CATALOG_SCHEMA",
    "CFG_CLASSES",
    "COMBINATION_CODE",
    "CatalogEntry",
    "CatalogError",
    "PRESSURE_SCALES",
    "PYFUNC_PROFILE_RUNS",
    "WorkloadCatalog",
    "catalog_directory",
    "corpus_functions",
    "corpus_module",
    "get_catalog",
    "load_catalog",
]
