"""Stdlib-derived routines for the pyfunc corpus.

Faithful ports of CPython standard-library functions (semantics preserved,
sources noted per function), restated where necessary without builtins the
frontend does not translate (``min``, ``divmod``, table lookups).  Like the
textbook module, the set is closed: the only calls are to siblings, so the
translated IR module is differentially comparable against CPython.
"""


def isleap(year):
    """``calendar.isleap``: 1 for leap years, 0 otherwise."""

    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def leapdays(y1, y2):
    """``calendar.leapdays``: leap years in range(y1, y2) exclusive of y2."""

    y1 -= 1
    y2 -= 1
    return y2 // 4 - y1 // 4 - (y2 // 100 - y1 // 100) + (y2 // 400 - y1 // 400)


def days_before_year(year):
    """``datetime._days_before_year``: days before January 1st of ``year``."""

    y = year - 1
    return y * 365 + y // 4 - y // 100 + y // 400


def euclid_gcd(a, b):
    """``math.gcd`` for non-negative ints: the classic Euclid loop
    (the pure-python ``fractions.gcd`` of CPython 2 era, sign handling
    restricted to ``a, b >= 0``)."""

    while b:
        a, b = b, a % b
    return a


def bit_count(n):
    """``int.bit_count`` for ``n >= 0``: population count via Kernighan's
    trick (each step clears the lowest set bit)."""

    count = 0
    while n:
        n &= n - 1
        count += 1
    return count


def bit_length(n):
    """``int.bit_length`` for ``n >= 0``: position of the highest set bit."""

    length = 0
    while n > 0:
        n >>= 1
        length += 1
    return length


def comb_small(n, k):
    """``math.comb`` for small non-negative ints: multiplicative formula
    with the ``k = min(k, n - k)`` symmetry reduction written out."""

    if k < 0 or k > n:
        return 0
    if n - k < k:
        k = n - k
    result = 1
    for i in range(k):
        result = result * (n - i) // (i + 1)
    return result
