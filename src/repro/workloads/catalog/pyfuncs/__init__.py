"""The curated pyfunc corpus: real Python functions the frontend translates.

Two closed modules — :mod:`repro.workloads.catalog.pyfuncs.textbook`
(classic integer algorithms) and
:mod:`repro.workloads.catalog.pyfuncs.stdlib_derived` (faithful ports of
stdlib routines) — whose functions stay inside the frontend's supported
subset: integer arithmetic, comparisons, ``if``/``while``, ``for`` over
``range``, and calls to siblings in the same module.  Every function here is
translated, compiled on every registered target and differentially checked
against CPython by the test battery and ``repro-spill stress --catalog``.
"""

from repro.workloads.catalog.pyfuncs import stdlib_derived, textbook

#: The corpus modules, in catalog order.
CORPUS_MODULES = (textbook, stdlib_derived)

__all__ = ["CORPUS_MODULES", "stdlib_derived", "textbook"]
