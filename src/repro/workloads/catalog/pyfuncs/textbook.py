"""Textbook integer algorithms for the pyfunc corpus.

Every function is a pure function of its int arguments, uses only the
frontend's supported subset, and calls nothing outside this module — so the
module translates as a closed IR module whose interpreter results must match
CPython exactly on the catalog's seeded inputs.
"""


def gcd(a, b):
    """Euclid's greatest common divisor."""

    while b:
        a, b = b, a % b
    return a


def lcm(a, b):
    """Least common multiple via :func:`gcd` (an intra-module call)."""

    if a == 0 or b == 0:
        return 0
    product = a * b
    if product < 0:
        product = -product
    return product // gcd(a, b)


def fib_iter(n):
    """The n-th Fibonacci number, iteratively."""

    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


def collatz_steps(n):
    """Number of Collatz steps from ``n`` (>= 1) down to 1."""

    steps = 0
    while n != 1:
        if n % 2 == 0:
            n //= 2
        else:
            n = 3 * n + 1
        steps += 1
    return steps


def ipow(base, exponent):
    """``base ** exponent`` for ``exponent >= 0`` by binary exponentiation."""

    result = 1
    while exponent > 0:
        if exponent & 1:
            result *= base
        base *= base
        exponent >>= 1
    return result


def isqrt_newton(n):
    """Integer square root of ``n >= 0`` by Newton's method."""

    if n < 2:
        return n
    x = n
    y = (x + 1) // 2
    while y < x:
        x = y
        y = (x + n // x) // 2
    return x


def digit_sum(n):
    """Sum of the decimal digits of ``n >= 0``."""

    total = 0
    while n > 0:
        total += n % 10
        n //= 10
    return total


def count_divisors(n):
    """Number of divisors of ``n >= 1`` (trial division up to sqrt)."""

    count = 0
    i = 1
    while i * i <= n:
        if n % i == 0:
            count += 2
            if i * i == n:
                count -= 1
        i += 1
    return count


def is_prime(n):
    """1 when ``n`` is prime, else 0 (trial division)."""

    if n < 2:
        return 0
    if n < 4:
        return 1
    if n % 2 == 0:
        return 0
    i = 3
    while i * i <= n:
        if n % i == 0:
            return 0
        i += 2
    return 1


def sum_of_squares(n):
    """``1^2 + 2^2 + ... + n^2`` by an explicit loop."""

    total = 0
    for i in range(1, n + 1):
        total += i * i
    return total


def triangular(n):
    """The n-th triangular number by an explicit loop."""

    total = 0
    for i in range(n + 1):
        total += i
    return total


def factorial_iter(n):
    """``n!`` for ``n >= 0``, iteratively."""

    result = 1
    for i in range(2, n + 1):
        result *= i
    return result


def clamp(x, lo, hi):
    """``x`` clamped into ``[lo, hi]``."""

    if x < lo:
        return lo
    if x > hi:
        return hi
    return x


def sign(x):
    """-1, 0 or 1 according to the sign of ``x``."""

    if x > 0:
        return 1
    if x < 0:
        return -1
    return 0


def maxof(a, b, c):
    """The largest of three ints (without the ``max`` builtin)."""

    best = a
    if b > best:
        best = b
    if c > best:
        best = c
    return best
