"""Workloads: hand-written example programs, a random procedure generator and
the synthetic SPEC CPU2000-integer-like benchmark suite.

* :mod:`repro.workloads.programs` — small hand-built functions, including the
  paper's Figure 1 example and a faithful reconstruction of the Figure 2/3
  worked example (blocks ``A`` … ``P`` with the paper's edge counts).
* :mod:`repro.workloads.generator` — a parameterized generator of structured
  procedures (sequences, diamonds, loops, guarded calls, early exits) with
  branch probabilities, used to build arbitrarily large workloads.
* :mod:`repro.workloads.spec_like` — one workload profile per SPEC CPU2000
  integer benchmark, with generator parameters chosen to mirror each
  program's qualitative characteristics (procedure sizes, loop depth, call
  density, goto frequency, callee-saved pressure).
* :mod:`repro.workloads.scenarios` — the declarative scenario registry:
  named, seed-deterministic families covering the control flow the suite
  does not (switch dispatch tables with critical multiway edges,
  irreducible two-entry loops, deep loop nests, call webs, pressure sweeps,
  seeded chaos CFGs).  See ``docs/workloads.md`` for the catalogue.
* :mod:`repro.workloads.catalog` — the versioned workload catalog: TOML
  specs naming every scenario variant with a combination code
  (``switch1_HI_RED``) plus ``pyfunc`` entries that bind real CPython
  functions translated by :mod:`repro.frontend`, with back-compat aliases
  for the legacy family names.
"""

from repro.workloads.catalog import (
    CatalogEntry,
    CatalogError,
    WorkloadCatalog,
    get_catalog,
    load_catalog,
)
from repro.workloads.generator import (
    GeneratedProcedure,
    GeneratorConfig,
    SEGMENT_KINDS,
    config_for_target,
    generate_procedure,
    generate_procedures,
)
from repro.workloads.programs import (
    PaperExample,
    call_chain_function,
    diamond_function,
    figure1_function,
    loop_function,
    paper_example,
)
from repro.workloads.scenarios import (
    SCENARIO_FAMILIES,
    ScenarioFamily,
    build_scenario,
    build_scenario_suite,
    get_scenario,
    scenario_names,
)
from repro.workloads.spec_like import (
    BenchmarkSpec,
    SPEC_BENCHMARKS,
    SyntheticBenchmark,
    build_benchmark,
    build_suite,
    scale_spec_for_target,
    spec_by_name,
)

__all__ = [
    "BenchmarkSpec",
    "CatalogEntry",
    "CatalogError",
    "SCENARIO_FAMILIES",
    "ScenarioFamily",
    "WorkloadCatalog",
    "GeneratedProcedure",
    "GeneratorConfig",
    "PaperExample",
    "SEGMENT_KINDS",
    "SPEC_BENCHMARKS",
    "SyntheticBenchmark",
    "build_benchmark",
    "build_scenario",
    "build_scenario_suite",
    "build_suite",
    "call_chain_function",
    "get_scenario",
    "config_for_target",
    "diamond_function",
    "figure1_function",
    "get_catalog",
    "load_catalog",
    "generate_procedure",
    "generate_procedures",
    "loop_function",
    "paper_example",
    "scale_spec_for_target",
    "scenario_names",
    "spec_by_name",
]
