"""The lint engine: run rules, order findings, serialize, gate, baseline.

:func:`lint_function` is the one entry point everything else goes
through — the CLI, ``compile_procedure(lint="strict")``, the service's
``lint`` request type and the stress harness all produce a
:class:`LintReport` here, so their payloads are byte-identical for the
same inputs (the service tests compare them as bytes).

Reports are deterministic by construction: rules run in code order, each
rule's findings are sorted by :meth:`Diagnostic.sort_key`, and the JSON
payload is encoded with sorted keys.  :meth:`LintReport.fingerprint`
digests that canonical encoding, which is what the stress harness records
per chaos draw.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.ir.fingerprint import compile_options_token, procedure_cache_key
from repro.ir.function import Function
from repro.lint.context import AnalysisContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.rules import RULES, Rule, all_rules
from repro.profiling.profile_data import EdgeProfile

#: Schema tag carried by every serialized lint report.
LINT_SCHEMA = "lint-report/v1"

#: Schema tag carried by baseline files.
BASELINE_SCHEMA = "lint-baseline/v1"


class LintConfigError(ValueError):
    """Raised for invalid ``--select``/``--ignore`` rule codes."""


@dataclass(frozen=True)
class LintReport:
    """All findings of one lint pass over one function, in canonical order."""

    function: str
    diagnostics: Tuple[Diagnostic, ...]
    #: Codes of the rules that actually ran (profile/machine gated rules
    #: drop out when their inputs are absent).
    rules_run: Tuple[str, ...] = ()

    @property
    def error_count(self) -> int:
        """Number of error-severity findings."""

        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    def has_errors(self) -> bool:
        """True when any finding is an error."""

        return self.error_count > 0

    def counts(self) -> Dict[str, int]:
        """Finding counts per severity value (always all three keys)."""

        counts = {s.value: 0 for s in Severity}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity.value] += 1
        return counts

    def payload(self) -> Dict[str, object]:
        """The canonical JSON-object form of this report."""

        return {
            "schema": LINT_SCHEMA,
            "function": self.function,
            "rules_run": list(self.rules_run),
            "counts": self.counts(),
            "diagnostics": [d.payload() for d in self.diagnostics],
        }

    def canonical_bytes(self) -> bytes:
        """Sorted-key, compact JSON encoding — the fingerprinted form."""

        return json.dumps(self.payload(), sort_keys=True, separators=(",", ":")).encode("utf-8")

    def fingerprint(self) -> str:
        """SHA-256 digest of :meth:`canonical_bytes`."""

        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    def render(self) -> str:
        """Human-readable multi-line text form (the CLI's default output)."""

        if not self.diagnostics:
            return f"{self.function}: clean"
        return "\n".join(d.render() for d in self.diagnostics)


class LintError(Exception):
    """Strict-mode rejection: carries the offending reports, structured.

    Raised by ``compile_procedure(lint="strict")`` (and surfaced by the
    service as a ``lint_rejected`` error) when linting finds any
    error-severity diagnostic.  The reports travel with the exception so
    every layer can forward the same structured payload instead of a
    traceback string.
    """

    def __init__(self, reports: Sequence[LintReport]):
        self.reports = tuple(reports)
        total = sum(r.error_count for r in self.reports)
        names = ", ".join(r.function for r in self.reports)
        super().__init__(f"lint rejected {names}: {total} error(s)")

    def payload(self) -> Dict[str, object]:
        """The structured rejection payload: one report payload per function."""

        return {
            "schema": LINT_SCHEMA,
            "reports": [report.payload() for report in self.reports],
        }


def resolve_rule_codes(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """The rules enabled by a ``--select``/``--ignore`` pair, in code order.

    ``select`` restricts to the given codes (default: all), ``ignore``
    drops codes from the selection; unknown codes raise
    :class:`LintConfigError`.
    """

    known = set(RULES)
    selected = set(known) if select is None else set(select)
    ignored = set(ignore) if ignore is not None else set()
    unknown = sorted((selected | ignored) - known)
    if unknown:
        raise LintConfigError(
            f"unknown rule code(s): {', '.join(unknown)}; known: {', '.join(sorted(known))}"
        )
    return [rule for rule in all_rules() if rule.code in selected - ignored]


def lint_function(
    function: Function,
    profile: Optional[EdgeProfile] = None,
    machine=None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint one function and return the ordered, deterministic report.

    Profile- and machine-dependent rules run only when the corresponding
    input is supplied; ``rules_run`` on the report records which did.
    The function is never mutated (property-tested).

    Like the analyses it drives, linting expects single-exit IR (what
    ``repro.ir.passes.ensure_single_exit`` produces and every pipeline,
    CLI and service path feeds it); multi-exit functions may fail inside
    the dominator construction.
    """

    rules = resolve_rule_codes(select, ignore)
    ctx = AnalysisContext(function, profile=profile, machine=machine)
    diagnostics: List[Diagnostic] = []
    rules_run: List[str] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        rules_run.append(rule.code)
        diagnostics.extend(sorted(rule.run(ctx), key=Diagnostic.sort_key))
    diagnostics.sort(key=Diagnostic.sort_key)
    return LintReport(
        function=function.name,
        diagnostics=tuple(diagnostics),
        rules_run=tuple(rules_run),
    )


def lint_cache_key(
    function: Function,
    profile: Optional[EdgeProfile],
    machine,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> str:
    """Content-addressed key of one lint result, namespaced apart from compiles.

    Linting is pure and deterministic in (IR, profile, machine, enabled
    rules), so its reports are cacheable and fleet-routable exactly like
    compiles; ``kind="lint"`` keeps the two value types from aliasing.
    """

    enabled = ",".join(rule.code for rule in resolve_rule_codes(select, ignore))
    token = compile_options_token(machine, "lint:" + enabled, (), False, False)
    return procedure_cache_key(function, profile, token, kind="lint")


# ---------------------------------------------------------------------------
# Baselines: suppress known findings, fail on new ones.
# ---------------------------------------------------------------------------


def baseline_payload(reports: Sequence[LintReport]) -> Dict[str, object]:
    """The baseline-file JSON object recording every current finding."""

    entries: Dict[str, Dict[str, str]] = {}
    for report in reports:
        for diagnostic in report.diagnostics:
            entries[diagnostic.baseline_key()] = {
                "code": diagnostic.code,
                "location": diagnostic.location(),
                "message": diagnostic.message,
            }
    return {"schema": BASELINE_SCHEMA, "entries": entries}


def write_baseline(path, reports: Sequence[LintReport]) -> int:
    """Write a baseline file covering ``reports``; returns the entry count."""

    payload = baseline_payload(reports)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(payload["entries"])


def load_baseline(path) -> Set[str]:
    """Load the set of suppressed baseline keys from ``path``."""

    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline file {path} has schema {payload.get('schema')!r}, "
            f"expected {BASELINE_SCHEMA!r}"
        )
    return set(payload.get("entries", {}))


def apply_baseline(report: LintReport, baseline: Set[str]) -> LintReport:
    """A copy of ``report`` with baselined findings removed."""

    kept = tuple(d for d in report.diagnostics if d.baseline_key() not in baseline)
    if len(kept) == len(report.diagnostics):
        return report
    return LintReport(function=report.function, diagnostics=kept, rules_run=report.rules_run)
