"""The built-in lint rules and the rule registry.

Each rule is a named check with a stable code (``R001``..), a fixed
severity, and a checker that walks one function through the shared
:class:`~repro.lint.context.AnalysisContext` and yields
:class:`~repro.lint.diagnostics.Diagnostic` records.  Rules never mutate
the IR and never depend on iteration order of hash-based containers —
every yielded sequence is derived from layout order or explicitly sorted,
so a report is byte-identical across runs and ``PYTHONHASHSEED`` values.

Rules that need optional inputs declare it: ``needs_profile`` rules are
skipped silently when no profile is supplied, ``needs_machine`` rules
when no target machine is supplied.  The full catalog with examples
lives in ``docs/lint.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Set

from repro.ir.instructions import Opcode
from repro.ir.values import Register, VirtualRegister
from repro.lint.context import AnalysisContext
from repro.lint.diagnostics import Diagnostic, Severity

Checker = Callable[[AnalysisContext], Iterator[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule: code, name, severity, checker."""

    code: str
    name: str
    severity: Severity
    summary: str
    checker: Checker = field(repr=False)
    needs_profile: bool = False
    needs_machine: bool = False

    def applies(self, ctx: AnalysisContext) -> bool:
        """Whether this rule's optional inputs are present on ``ctx``."""

        if self.needs_profile and ctx.profile is None:
            return False
        if self.needs_machine and ctx.machine is None:
            return False
        return True

    def run(self, ctx: AnalysisContext) -> List[Diagnostic]:
        """Run the checker and return its findings as a list."""

        return list(self.checker(ctx))


#: Registry of all rules, keyed by code, in registration (= code) order.
RULES: Dict[str, Rule] = {}


def register_rule(
    code: str,
    name: str,
    severity: Severity,
    summary: str,
    needs_profile: bool = False,
    needs_machine: bool = False,
):
    """Class-decorator-style registrar for rule checker functions."""

    def decorate(checker: Checker) -> Checker:
        if code in RULES:
            raise ValueError(f"duplicate rule code {code!r}")
        RULES[code] = Rule(
            code=code,
            name=name,
            severity=severity,
            summary=summary,
            checker=checker,
            needs_profile=needs_profile,
            needs_machine=needs_machine,
        )
        return checker

    return decorate


def all_rules() -> List[Rule]:
    """Every registered rule, in stable code order."""

    return [RULES[code] for code in sorted(RULES)]


def _diag(rule_code: str, ctx: AnalysisContext, message: str, block=None, instruction=None, note=None) -> Diagnostic:
    rule = RULES[rule_code]
    return Diagnostic(
        code=rule.code,
        severity=rule.severity,
        rule=rule.name,
        function=ctx.function.name,
        message=message,
        block=block,
        instruction=instruction,
        note=note,
        block_order=-1 if block is None else ctx.block_order.get(block, -1),
    )


def _sorted_registers(registers: Iterable[Register]) -> List[Register]:
    return sorted(registers, key=str)


# ---------------------------------------------------------------------------
# R001 — uninitialized register reads (reaching definitions).
# ---------------------------------------------------------------------------


@register_rule(
    "R001",
    "uninitialized-read",
    Severity.ERROR,
    "a register is read with no reaching definition on any path",
)
def check_uninitialized_read(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Flag reads of registers that no definition (or parameter) reaches."""

    params = set(ctx.function.params)
    reaching = ctx.reaching
    for block in ctx.function.blocks:
        if block.label not in ctx.reachable:
            continue
        reached: Set[Register] = {d[2] for d in reaching.reach_in[block.label]}
        for index, inst in enumerate(block.instructions):
            for reg in inst.registers_read():
                if reg in params or reg in reached:
                    continue
                yield _diag(
                    "R001",
                    ctx,
                    f"read of register {reg} with no reaching definition",
                    block=block.label,
                    instruction=index,
                    note="the register is never written on any path from entry "
                    "and is not a parameter",
                )
            reached.update(inst.registers_written())


# ---------------------------------------------------------------------------
# R002 — dead stores / unused definitions (liveness).
# ---------------------------------------------------------------------------


@register_rule(
    "R002",
    "dead-definition",
    Severity.WARN,
    "a register definition is never used before being overwritten or dropped",
)
def check_dead_definition(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Flag definitions whose value is dead immediately after the write.

    Calls are exempt: their defs model return values and the call runs for
    its side effects regardless.  Compiler-inserted overhead (spill reloads,
    callee-saved restores) is exempt too — whether overhead is profitable
    is the optimizer's question, not a source-hygiene one.
    """

    from repro.analysis.liveness import live_at_each_instruction

    liveness = ctx.liveness
    for block in ctx.function.blocks:
        if block.label not in ctx.reachable:
            continue
        live_after = live_at_each_instruction(ctx.function, liveness, block.label)
        for index, inst in enumerate(block.instructions):
            if inst.is_call() or inst.is_overhead():
                continue
            for reg in inst.registers_written():
                if reg not in live_after[index]:
                    yield _diag(
                        "R002",
                        ctx,
                        f"definition of register {reg} is never used",
                        block=block.label,
                        instruction=index,
                        note="the value is dead immediately after the write",
                    )


# ---------------------------------------------------------------------------
# R003 — unreachable blocks.
# ---------------------------------------------------------------------------


@register_rule(
    "R003",
    "unreachable-block",
    Severity.ERROR,
    "a block is unreachable from the entry block",
)
def check_unreachable_block(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Flag blocks no path from the entry reaches."""

    for block in ctx.function.blocks:
        if block.label not in ctx.reachable:
            yield _diag(
                "R003",
                ctx,
                f"block {block.label!r} is unreachable from the entry block",
                block=block.label,
            )


# ---------------------------------------------------------------------------
# R004 — irreducible control flow.
# ---------------------------------------------------------------------------


@register_rule(
    "R004",
    "irreducible-cfg",
    Severity.WARN,
    "the CFG is irreducible (a back edge targets a non-dominating header)",
)
def check_irreducible_cfg(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Warn when the CFG is irreducible.

    Irreducible flow is legal IR — the pipeline has a verified fallback —
    but it defeats natural-loop-based placement and usually indicates a
    generator bug when it appears outside the chaos scenario families.
    """

    if not ctx.reducible:
        yield _diag(
            "R004",
            ctx,
            "control flow is irreducible: a loop has multiple entry points",
            note="region-based spill placement falls back to single-block "
            "regions on irreducible flow",
        )


# ---------------------------------------------------------------------------
# R005 — critical multiway switch edges.
# ---------------------------------------------------------------------------


@register_rule(
    "R005",
    "critical-switch-edge",
    Severity.INFO,
    "a switch edge targets a block with other predecessors (critical edge)",
)
def check_critical_switch_edge(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Point out switch edges whose target has more than one predecessor.

    These are exactly the critical multiway jump edges where region-based
    spill placement must materialize a jump block to hold edge code.
    """

    preds = ctx.cfg.preds
    for block in ctx.function.blocks:
        if block.label not in ctx.reachable:
            continue
        term = block.instructions[-1] if block.instructions else None
        if term is None or not term.is_switch():
            continue
        seen: Set[str] = set()
        for target in term.targets:
            if target.name in seen:
                continue
            seen.add(target.name)
            pred_count = len(preds.get(target.name, ()))
            if pred_count > 1:
                yield _diag(
                    "R005",
                    ctx,
                    f"switch edge {block.label} -> {target.name} is critical "
                    f"(target has {pred_count} predecessors)",
                    block=block.label,
                    instruction=len(block.instructions) - 1,
                    note="edge spill code here requires a materialized jump block",
                )


# ---------------------------------------------------------------------------
# R006 — degenerate switch.
# ---------------------------------------------------------------------------


@register_rule(
    "R006",
    "degenerate-switch",
    Severity.WARN,
    "a switch dispatches to a single distinct target",
)
def check_degenerate_switch(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Flag switches that always transfer to the same block (should be jmp)."""

    for block in ctx.function.blocks:
        term = block.instructions[-1] if block.instructions else None
        if term is None or not term.is_switch():
            continue
        distinct = {t.name for t in term.targets}
        if len(distinct) == 1:
            yield _diag(
                "R006",
                ctx,
                f"switch in block {block.label!r} always transfers to "
                f"{next(iter(distinct))!r}; use jmp",
                block=block.label,
                instruction=len(block.instructions) - 1,
            )


# ---------------------------------------------------------------------------
# R007 — side-effect-free infinite loops.
# ---------------------------------------------------------------------------


@register_rule(
    "R007",
    "infinite-loop",
    Severity.WARN,
    "reachable blocks cannot reach any exit and perform no side effects",
)
def check_infinite_loop(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Flag reachable regions that spin forever without observable effects.

    A block that is reachable but cannot reach any exit is stuck; when no
    stuck block stores to memory or makes a call, the whole region is a
    side-effect-free infinite loop — dead weight the interpreter would
    never terminate on.
    """

    stuck = ctx.reachable - ctx.reaching_exit
    if not stuck:
        return
    for block in ctx.function.blocks:
        if block.label not in stuck:
            continue
        for inst in block.instructions:
            if inst.is_call() or inst.opcode is Opcode.STORE:
                return  # The region has observable effects; not our business.
    first = min(stuck, key=lambda label: ctx.block_order.get(label, -1))
    members = ", ".join(sorted(stuck))
    yield _diag(
        "R007",
        ctx,
        f"side-effect-free infinite loop: blocks {{{members}}} never reach an exit",
        block=first,
        note="no store or call executes once control enters these blocks",
    )


# ---------------------------------------------------------------------------
# R008 — profile flow conservation (Kirchhoff).
# ---------------------------------------------------------------------------


@register_rule(
    "R008",
    "profile-flow",
    Severity.ERROR,
    "profile edge counts violate flow conservation at some block",
    needs_profile=True,
)
def check_profile_flow(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Run Kirchhoff's law over the profile: flow in equals flow out."""

    for problem in ctx.profile.check_flow_conservation(ctx.function):
        yield _diag(
            "R008",
            ctx,
            f"profile violates flow conservation: {problem}",
            note="placement cost models assume conserved edge flow",
        )


# ---------------------------------------------------------------------------
# R009 — profile / CFG shape mismatch.
# ---------------------------------------------------------------------------


@register_rule(
    "R009",
    "profile-shape",
    Severity.WARN,
    "the profile names a different function or counts edges the CFG lacks",
    needs_profile=True,
)
def check_profile_shape(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Flag stale profiles: wrong function name, or counts on missing edges."""

    profile = ctx.profile
    if profile.function_name != ctx.function.name:
        yield _diag(
            "R009",
            ctx,
            f"profile is for function {profile.function_name!r}, "
            f"not {ctx.function.name!r}",
        )
    cfg_edges = {(e.src, e.dst) for e in ctx.cfg.edges}
    for key in sorted(profile.edge_counts):
        if key not in cfg_edges:
            yield _diag(
                "R009",
                ctx,
                f"profile counts edge {key[0]} -> {key[1]} which is not in the CFG",
                note="the profile was probably recorded against an older "
                "shape of this function",
            )


# ---------------------------------------------------------------------------
# R010 — callee-saved pressure.
# ---------------------------------------------------------------------------


@register_rule(
    "R010",
    "callee-saved-pressure",
    Severity.INFO,
    "more virtual registers live across a call than callee-saved registers",
    needs_machine=True,
)
def check_callee_saved_pressure(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Estimate callee-saved pressure at call sites.

    A virtual register live across a call must end up in a callee-saved
    register or be spilled around the call; when more values are live
    across a site than the target has callee-saved registers, spill
    traffic there is unavoidable — worth knowing before placement runs.
    """

    from repro.analysis.liveness import live_at_each_instruction

    budget = ctx.machine.num_callee_saved
    liveness = ctx.liveness
    for block in ctx.function.blocks:
        if block.label not in ctx.reachable:
            continue
        if not any(inst.is_call() for inst in block.instructions):
            continue
        live_after = live_at_each_instruction(ctx.function, liveness, block.label)
        for index, inst in enumerate(block.instructions):
            if not inst.is_call():
                continue
            across = {
                reg
                for reg in live_after[index]
                if isinstance(reg, VirtualRegister) and reg not in inst.defs
            }
            if len(across) > budget:
                names = ", ".join(str(r) for r in _sorted_registers(across))
                yield _diag(
                    "R010",
                    ctx,
                    f"{len(across)} virtual registers live across call to "
                    f"{inst.target.name if inst.target else '?'} exceed the "
                    f"{budget} callee-saved registers: {names}",
                    block=block.label,
                    instruction=index,
                    note="spill traffic around this call is unavoidable on "
                    f"target {getattr(ctx.machine, 'name', '?')}",
                )
