"""Static analysis and diagnostics over repro IR.

The lint subsystem turns the analyses the paper already needs — CFG,
dominators, liveness, reaching definitions, loops — into *diagnostics*:
ordered, deterministic :class:`Diagnostic` records with stable codes
(``R001``..), severities, and block/instruction locations, produced by a
pluggable :class:`Rule` registry running over a shared, memoized
:class:`AnalysisContext`.

Entry points:

* :func:`lint_function` — lint one function, get a :class:`LintReport`.
* ``repro-spill lint`` — the CLI (text/JSON, select/ignore, strict
  gating, baselines); see ``docs/lint.md`` for the rule catalog.
* ``compile_procedure(lint="strict")`` — reject bad IR before compiling,
  raising :class:`LintError` with the structured report attached.
* The service's ``lint`` request type — reports are pure functions of
  (IR, profile, machine, rules), hence cacheable and fleet-routable.
"""

from repro.lint.context import AnalysisContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import (
    BASELINE_SCHEMA,
    LINT_SCHEMA,
    LintConfigError,
    LintError,
    LintReport,
    apply_baseline,
    baseline_payload,
    lint_cache_key,
    lint_function,
    load_baseline,
    resolve_rule_codes,
    write_baseline,
)
from repro.lint.rules import RULES, Rule, all_rules, register_rule

__all__ = [
    "AnalysisContext",
    "BASELINE_SCHEMA",
    "Diagnostic",
    "LINT_SCHEMA",
    "LintConfigError",
    "LintError",
    "LintReport",
    "RULES",
    "Rule",
    "Severity",
    "all_rules",
    "apply_baseline",
    "baseline_payload",
    "lint_cache_key",
    "lint_function",
    "load_baseline",
    "register_rule",
    "resolve_rule_codes",
    "write_baseline",
]
