"""Shared, memoized analysis state for one linted function.

Every lint rule reads the same handful of analyses — the CFG snapshot,
dominators, liveness, reaching definitions, the loop forest — and most
functions trip several rules, so recomputing per rule would multiply the
cost of a lint pass by the rule count.  :class:`AnalysisContext` computes
each analysis at most once and hands the cached result to every rule.

This is deliberately the seed of the ROADMAP's ``CompilationSession``:
a per-function owner of analysis results with a single creation point.
The session item adds explicit invalidation and region fingerprints;
the lint engine only ever needs the compute-once half because linting
never mutates the IR (property-tested in ``tests/lint``).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.analysis.dominance import DominatorTree, compute_dominators
from repro.analysis.liveness import LivenessInfo, compute_liveness
from repro.analysis.loops import LoopForest, compute_loop_forest, is_reducible
from repro.analysis.reaching import ReachingDefinitions, compute_reaching_definitions
from repro.ir.cfg import FunctionCFG
from repro.ir.function import Function, blocks_reaching_exit, reachable_blocks
from repro.profiling.profile_data import EdgeProfile

_MISSING = object()


class AnalysisContext:
    """Compute-once, memoized analyses over one function.

    Rules access analyses as properties (``ctx.liveness``, ``ctx.dom``,
    ...); the first access runs the analysis, later accesses return the
    cached result.  The context also carries the optional inputs a rule
    may need — the :class:`~repro.profiling.profile_data.EdgeProfile`
    and the target machine description — so rule signatures stay uniform.
    """

    def __init__(self, function: Function, profile: Optional[EdgeProfile] = None, machine=None):
        self.function = function
        self.profile = profile
        self.machine = machine
        #: Layout position of each block label; diagnostics sort by it.
        self.block_order: Dict[str, int] = {
            label: index for index, label in enumerate(function.block_labels)
        }
        self._cache: Dict[str, object] = {}

    def _memo(self, key: str, compute):
        value = self._cache.get(key, _MISSING)
        if value is _MISSING:
            value = compute()
            self._cache[key] = value
        return value

    @property
    def cfg(self) -> FunctionCFG:
        """The function's cached CFG snapshot."""

        return self._memo("cfg", self.function.cfg)

    @property
    def dom(self) -> DominatorTree:
        """The dominator tree."""

        return self._memo("dom", lambda: compute_dominators(self.function))

    @property
    def liveness(self) -> LivenessInfo:
        """Block-level liveness (packed-bitset solution)."""

        return self._memo(
            "liveness", lambda: compute_liveness(self.function, machine=self.machine)
        )

    @property
    def reaching(self) -> ReachingDefinitions:
        """Reaching definitions at block boundaries."""

        return self._memo("reaching", lambda: compute_reaching_definitions(self.function))

    @property
    def loop_forest(self) -> LoopForest:
        """The natural-loop nesting forest."""

        return self._memo("loops", lambda: compute_loop_forest(self.function, dom=self.dom))

    @property
    def reducible(self) -> bool:
        """Whether every back edge targets a dominating header."""

        return self._memo("reducible", lambda: is_reducible(self.function, dom=self.dom))

    @property
    def reachable(self) -> Set[str]:
        """Labels of blocks reachable from the entry."""

        return self._memo("reachable", lambda: reachable_blocks(self.function))

    @property
    def reaching_exit(self) -> Set[str]:
        """Labels of blocks from which some exit block is reachable."""

        return self._memo("reaching_exit", lambda: blocks_reaching_exit(self.function))

    @property
    def block_counts(self) -> Dict[str, float]:
        """Profile-derived execution counts per block (requires a profile)."""

        if self.profile is None:
            raise ValueError("block_counts requires a profile")
        return self._memo("block_counts", lambda: self.profile.block_counts(self.function))
