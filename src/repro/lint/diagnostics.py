"""Diagnostic records: what a lint rule reports, and its canonical forms.

A :class:`Diagnostic` is one finding of one rule about one function: a
stable code (``R001``..), a severity, an optional block / instruction
location, a message and an optional note.  Diagnostics are value objects
with a total, deterministic order (:meth:`Diagnostic.sort_key`) so a lint
report is byte-identical across runs, processes and ``PYTHONHASHSEED``
values — the same discipline every other deterministic artifact in this
code base follows.

Two canonical serializations are defined here:

* :meth:`Diagnostic.payload` — the JSON object form carried by the CLI's
  ``--json`` output, the service's ``lint-result`` responses and the
  strict-mode rejection payloads.  One shape everywhere, compared by bytes
  in the tests.
* :meth:`Diagnostic.baseline_key` — a location-stable digest used by
  baseline files to suppress known findings without pinning their exact
  rendering order.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Optional


class Severity(enum.Enum):
    """How bad a finding is; orders ``error > warn > info``."""

    ERROR = "error"
    WARN = "warn"
    INFO = "info"

    @property
    def weight(self) -> int:
        """Numeric rank for comparisons (0 = error, 2 = info)."""

        return _SEVERITY_WEIGHT[self]

    def __str__(self) -> str:
        return self.value


_SEVERITY_WEIGHT = {Severity.ERROR: 0, Severity.WARN: 1, Severity.INFO: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a coded, located, ordered lint record.

    ``block`` is ``None`` for function-level findings; ``instruction`` is
    the index within the block (``None`` for block- or function-level
    findings).  ``block_order`` carries the block's layout position so
    sorting follows the function's textual order without re-deriving it.
    """

    code: str
    severity: Severity
    rule: str
    function: str
    message: str
    block: Optional[str] = None
    instruction: Optional[int] = None
    note: Optional[str] = None
    block_order: int = -1

    def sort_key(self):
        """Total deterministic order: source position, then code, then text."""

        return (
            self.block_order,
            self.block or "",
            -1 if self.instruction is None else self.instruction,
            self.code,
            self.message,
        )

    def location(self) -> str:
        """The ``function[:block[:index]]`` rendering of where this points."""

        parts = [self.function]
        if self.block is not None:
            parts.append(self.block)
            if self.instruction is not None:
                parts.append(str(self.instruction))
        return ":".join(parts)

    def render(self) -> str:
        """One-line human-readable form (the CLI's text output)."""

        text = f"{self.location()}: {self.code} {self.severity}: {self.message}"
        if self.note:
            text += f"\n    note: {self.note}"
        return text

    def payload(self) -> Dict[str, Any]:
        """The canonical JSON object form (sorted-key encoding downstream)."""

        payload: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "rule": self.rule,
            "function": self.function,
            "message": self.message,
            "block": self.block,
            "instruction": self.instruction,
        }
        if self.note is not None:
            payload["note"] = self.note
        return payload

    def baseline_key(self) -> str:
        """Location-stable digest used by baseline files to suppress findings."""

        hasher = hashlib.sha256()
        for part in (
            self.code,
            self.function,
            self.block or "",
            "" if self.instruction is None else str(self.instruction),
            self.message,
        ):
            hasher.update(part.encode("utf-8"))
            hasher.update(b"\x00")
        return hasher.hexdigest()[:16]
