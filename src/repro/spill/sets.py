"""Grouping save/restore locations into save/restore sets.

The paper groups save and restore locations with the same data-flow
machinery used for variable webs: a save begins a "web", restores terminate
it, and locations that are reachable from each other without crossing other
locations of the same register belong to the same set.  Sets are the unit the
hierarchical algorithm moves around: either a whole set stays where it is, or
the whole set is replaced by a save/restore pair at a region boundary.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ir.cfg import FunctionCFG
from repro.ir.function import ENTRY_SENTINEL, EXIT_SENTINEL, Function
from repro.ir.values import PhysicalRegister
from repro.spill.model import EdgeKey, SaveRestoreSet, SpillKind, SpillLocation


class _LocationUnionFind:
    def __init__(self, locations: Iterable[SpillLocation]):
        self._parent: Dict[SpillLocation, SpillLocation] = {l: l for l in locations}

    def find(self, item: SpillLocation) -> SpillLocation:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: SpillLocation, b: SpillLocation) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def groups(self) -> List[List[SpillLocation]]:
        by_root: Dict[SpillLocation, List[SpillLocation]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        return list(by_root.values())


def build_save_restore_sets(
    function: Function,
    register: PhysicalRegister,
    locations: Iterable[SpillLocation],
    initial: bool = True,
    cfg: Optional[FunctionCFG] = None,
) -> List[SaveRestoreSet]:
    """Partition the locations of one register into save/restore sets.

    Two locations belong to the same set when the restore is reachable from
    the save along CFG paths that cross no other location of the same
    register, i.e. when they delimit the same saved region.  Restores shared
    by several saves merge those saves into one set.
    """

    locations = [l for l in locations if l.register == register]
    if not locations:
        return []

    by_edge: Dict[EdgeKey, List[SpillLocation]] = {}
    for location in locations:
        by_edge.setdefault(location.edge, []).append(location)

    union = _LocationUnionFind(locations)
    if cfg is None:
        cfg = function.cfg()
    block_out_edges = cfg.out_edges
    entry_label = cfg.entry_label
    exit_label = cfg.exit_label
    exit_edge: EdgeKey = (exit_label, EXIT_SENTINEL)

    for save in locations:
        if not save.is_save():
            continue
        start_block = save.edge[1] if save.edge[0] != ENTRY_SENTINEL else entry_label
        if save.edge[0] == ENTRY_SENTINEL:
            start_block = entry_label
        # Breadth-first traversal through the saved region delimited by this save.
        visited: Set[str] = set()
        frontier: List[str] = [start_block]
        while frontier:
            label = frontier.pop()
            if label in visited:
                continue
            visited.add(label)
            out_edges: List[EdgeKey] = [e.key for e in block_out_edges[label]]
            if label == exit_label:
                out_edges.append(exit_edge)
            for key in out_edges:
                blocking = by_edge.get(key, [])
                if blocking:
                    for other in blocking:
                        union.union(save, other)
                    # The saved region ends at the first location on this path.
                    continue
                if key[1] != EXIT_SENTINEL and key[1] not in visited:
                    frontier.append(key[1])

    groups = union.groups()
    sets = [
        SaveRestoreSet.from_locations(register, group, initial=initial) for group in groups
    ]
    sets.sort(key=lambda s: sorted(l.edge for l in s.locations))
    return sets
