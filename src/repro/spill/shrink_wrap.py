"""Chow's shrink-wrapping and the modified variant used by the hierarchical pass.

For one callee-saved register with occupancy ``USED(b)`` per block, the
placement is derived from two boolean data-flow problems:

* *availability* (forward): ``AVIN(b)`` — on every path from the procedure
  entry to the start of ``b`` the register has been occupied;
  ``AVOUT(b) = AVIN(b) or USED(b)``.
* *anticipation* (backward): ``ANTOUT(b)`` — on every path from the end of
  ``b`` to the procedure exit the register will be occupied;
  ``ANTIN(b) = USED(b) or ANTOUT(b)``.

Saves and restores are placed on CFG edges (including the virtual procedure
entry/exit edges):

* save on ``(u, v)``    iff  ``ANTIN(v) and not AVOUT(u) and not ANTIN(u)``
* restore on ``(u, v)`` iff  ``AVOUT(u) and not ANTIN(v) and not AVOUT(v)``

These are the earliest/latest points where the "must be saved" state changes,
and they yield a placement in which the saved/unsaved state of the register
is a well-defined function of the program point (verified by
:mod:`repro.spill.verifier`).

Chow's original technique adds two restrictions, both reproduced here:

* **loop avoidance** — artificial occupancy is propagated through every loop
  that contains an occupied block, so saves/restores never land inside loops;
* **no spill code on jump edges** — whenever a save or restore would fall on
  a jump edge, artificial occupancy is propagated along that edge (the source
  block for saves, the destination block for restores) and the analysis is
  repeated until no spill code sits on a jump edge.

The *modified* shrink-wrapping used as the starting point of the hierarchical
algorithm (paper, Section 4) applies neither restriction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.loops import LoopForest, compute_loop_forest
from repro.ir.cfg import EdgeKind, FunctionCFG
from repro.ir.function import ENTRY_SENTINEL, EXIT_SENTINEL, Function
from repro.ir.values import PhysicalRegister
from repro.spill.model import (
    CalleeSavedUsage,
    EdgeKey,
    SaveRestoreSet,
    SpillKind,
    SpillLocation,
    SpillPlacement,
)
from repro.spill.entry_exit import entry_exit_set
from repro.spill.sets import build_save_restore_sets
from repro.spill.verifier import register_sets_are_sound


@dataclass(frozen=True)
class AnticipationAvailability:
    """Block-level solutions of the two boolean data-flow problems."""

    ant_in: Dict[str, bool]
    ant_out: Dict[str, bool]
    av_in: Dict[str, bool]
    av_out: Dict[str, bool]


def _solve_aa_masks(cfg: FunctionCFG, used_mask: int) -> Tuple[int, int, int, int]:
    """Mask-based fixed point of the anticipation/availability equations.

    One bit per block (positions from :meth:`FunctionCFG.aa_maps`), whole-CFG
    Jacobi sweeps over integer masks.  Both the dict-based reference solver
    (:func:`compute_anticipation_availability`) and this one start from the
    same initial assignment and iterate monotone equations on a finite
    lattice, so they converge to the same (unique, least) fixed point — the
    property tests in ``tests/spill`` check bit-identity directly.

    Returns ``(ant_in, ant_out, av_in, av_out)`` masks.
    """

    position, preds_masks, succs_masks, exits_mask = cfg.aa_maps()
    n = len(preds_masks)

    # Availability: forward, intersection meet.  AVIN(entry) is pinned false
    # (position 0 is the entry block), blocks without predecessors get false.
    av_in = 0
    av_out = used_mask
    while True:
        new_in = 0
        for i in range(1, n):
            pm = preds_masks[i]
            if pm and (av_out & pm) == pm:
                new_in |= 1 << i
        new_out = new_in | used_mask
        if new_in == av_in and new_out == av_out:
            break
        av_in, av_out = new_in, new_out

    # Anticipation: backward, intersection meet.  ANTOUT(exit) pinned false.
    ant_out = 0
    ant_in = used_mask
    while True:
        new_out = 0
        for i in range(n):
            if exits_mask >> i & 1:
                continue
            sm = succs_masks[i]
            if sm and (ant_in & sm) == sm:
                new_out |= 1 << i
        new_in = new_out | used_mask
        if new_out == ant_out and new_in == ant_in:
            break
        ant_out, ant_in = new_out, new_in

    return ant_in, ant_out, av_in, av_out


def compute_anticipation_availability(
    function: Function, used_blocks: FrozenSet[str]
) -> AnticipationAvailability:
    """Solve the anticipation and availability problems for one register.

    This is the dict-based reference solver; the placement hot path uses
    :func:`_solve_aa_masks` and the property tests assert both agree.
    """

    labels = function.block_labels
    succs = {label: function.successors(label) for label in labels}
    preds: Dict[str, List[str]] = {label: [] for label in labels}
    for src, dsts in succs.items():
        for dst in dsts:
            preds[dst].append(src)
    used = {label: label in used_blocks for label in labels}
    entry = function.entry.label
    exits = {b.label for b in function.exit_blocks()}

    # Availability: forward, intersection meet.  The procedure entry has an
    # implicit unoccupied path, so AVIN(entry) is always false.
    av_in = {label: False for label in labels}
    av_out = {label: used[label] for label in labels}
    changed = True
    while changed:
        changed = False
        for label in labels:
            if label == entry:
                new_in = False
            else:
                new_in = all(av_out[p] for p in preds[label]) if preds[label] else False
            new_out = new_in or used[label]
            if new_in != av_in[label] or new_out != av_out[label]:
                av_in[label], av_out[label] = new_in, new_out
                changed = True

    # Anticipation: backward, intersection meet.  The procedure exit has an
    # implicit path that leaves the procedure, so ANTOUT(exit) is always false.
    ant_out = {label: False for label in labels}
    ant_in = {label: used[label] for label in labels}
    changed = True
    while changed:
        changed = False
        for label in reversed(labels):
            if label in exits:
                new_out = False
            else:
                new_out = all(ant_in[s] for s in succs[label]) if succs[label] else False
            new_in = new_out or used[label]
            if new_out != ant_out[label] or new_in != ant_in[label]:
                ant_out[label], ant_in[label] = new_out, new_in
                changed = True

    return AnticipationAvailability(ant_in=ant_in, ant_out=ant_out, av_in=av_in, av_out=av_out)


def save_restore_edges(
    function: Function,
    used_blocks: FrozenSet[str],
    cfg: Optional[FunctionCFG] = None,
) -> Tuple[Set[EdgeKey], Set[EdgeKey]]:
    """Save and restore edges for one register, given its occupied blocks."""

    if not used_blocks:
        return set(), set()
    if cfg is None:
        cfg = function.cfg()
    position = cfg.aa_maps()[0]
    used_mask = 0
    for label in used_blocks:
        bit = position.get(label)
        if bit is not None:
            used_mask |= 1 << bit
    ant_in, _ant_out, _av_in, av_out = _solve_aa_masks(cfg, used_mask)
    saves: Set[EdgeKey] = set()
    restores: Set[EdgeKey] = set()

    def consider(u: Optional[str], v: Optional[str], key: EdgeKey) -> None:
        if v is not None:
            bit_v = 1 << position[v]
            ant_in_v = bool(ant_in & bit_v)
            av_out_v = bool(av_out & bit_v)
        else:
            ant_in_v = av_out_v = False
        if u is not None:
            bit_u = 1 << position[u]
            ant_in_u = bool(ant_in & bit_u)
            av_out_u = bool(av_out & bit_u)
        else:
            ant_in_u = av_out_u = False
        if ant_in_v and not av_out_u and not ant_in_u:
            saves.add(key)
        if av_out_u and not ant_in_v and not av_out_v:
            restores.add(key)

    entry_label = cfg.entry_label
    consider(None, entry_label, (ENTRY_SENTINEL, entry_label))
    for edge in cfg.edges:
        consider(edge.src, edge.dst, edge.key)
    exit_label = cfg.exit_label
    consider(exit_label, None, (exit_label, EXIT_SENTINEL))
    return saves, restores


def _expand_through_loops(
    function: Function, used_blocks: FrozenSet[str], loops: LoopForest
) -> FrozenSet[str]:
    """Mark every block of a loop occupied as soon as any of its blocks is.

    This reproduces Chow's artificial data flow through loop bodies, which
    keeps saves and restores out of loops.  Iterates to a fixed point so that
    nested and sibling loops compose.
    """

    expanded = set(used_blocks)
    changed = True
    while changed:
        changed = False
        for loop in loops.loops:
            if expanded & loop.body and not loop.body <= expanded:
                expanded |= loop.body
                changed = True
    return frozenset(expanded)


def shrink_wrap_edges(
    function: Function,
    used_blocks: FrozenSet[str],
    allow_jump_edges: bool = True,
    avoid_loops: bool = False,
    max_iterations: Optional[int] = None,
    cfg: Optional[FunctionCFG] = None,
    loops: Optional[LoopForest] = None,
) -> Tuple[Set[EdgeKey], Set[EdgeKey]]:
    """Shrink-wrapping save/restore edges for one register.

    ``allow_jump_edges=True, avoid_loops=False`` gives the modified variant
    used as the hierarchical algorithm's starting point;
    ``allow_jump_edges=False, avoid_loops=True`` gives Chow's original
    technique.  ``cfg`` and ``loops`` (only read when ``avoid_loops``) let
    callers placing many registers share the per-function derivations.
    """

    if not used_blocks:
        return set(), set()
    if cfg is None:
        cfg = function.cfg()

    occupied = frozenset(used_blocks)
    if avoid_loops:
        if loops is None:
            loops = compute_loop_forest(function)
        occupied = _expand_through_loops(function, occupied, loops)

    limit = max_iterations if max_iterations is not None else len(function) + 2
    for _ in range(limit):
        saves, restores = save_restore_edges(function, occupied, cfg=cfg)
        if allow_jump_edges:
            return saves, restores
        # Chow forbids *inserting new blocks* on jump edges; a location on a
        # jump edge whose destination has a single predecessor (or whose
        # source has a single successor) can be absorbed into the existing
        # block and is therefore not an offender.
        from repro.spill.cost_models import requires_jump_block

        offenders_src = {
            key[0] for key in saves if requires_jump_block(function, key, cfg=cfg)
        }
        offenders_dst = {
            key[1] for key in restores if requires_jump_block(function, key, cfg=cfg)
        }
        if not offenders_src and not offenders_dst:
            return saves, restores
        # Propagate artificial occupancy along the offending jump edges:
        # the source block for saves, the destination block for restores.
        occupied = frozenset(occupied | offenders_src | offenders_dst)
        if avoid_loops:
            occupied = _expand_through_loops(function, occupied, loops)
    # The expansion is monotone and bounded by the number of blocks, so the
    # loop above always terminates; this return is the final fixed point.
    return save_restore_edges(function, occupied, cfg=cfg)


def place_shrink_wrap(
    function: Function,
    usage: CalleeSavedUsage,
    allow_jump_edges: bool = False,
    avoid_loops: bool = True,
    technique_name: Optional[str] = None,
    cfg: Optional[FunctionCFG] = None,
) -> SpillPlacement:
    """Shrink-wrapping placement for every used callee-saved register.

    The defaults reproduce Chow's original technique; pass
    ``allow_jump_edges=True, avoid_loops=False`` for the modified variant.

    The dataflow-derived locations are checked per register against the
    callee-saved convention; a register whose candidate sets fail the check
    (possible only on CFG shapes outside the technique's structural
    assumptions, e.g. irreducible loops) falls back to the always-valid
    entry/exit pair and is recorded in
    :attr:`~repro.spill.model.SpillPlacement.fallback_registers`.
    """

    if technique_name is None:
        technique_name = "shrink_wrap" if not allow_jump_edges else "modified_shrink_wrap"
    if cfg is None:
        cfg = function.cfg()
    loops = compute_loop_forest(function) if avoid_loops else None
    placement = SpillPlacement(function.name, technique_name)
    for register in usage.used_registers():
        saves, restores = shrink_wrap_edges(
            function,
            usage.blocks_for(register),
            allow_jump_edges=allow_jump_edges,
            avoid_loops=avoid_loops,
            cfg=cfg,
            loops=loops,
        )
        locations = [SpillLocation(register, SpillKind.SAVE, key) for key in sorted(saves)]
        locations += [SpillLocation(register, SpillKind.RESTORE, key) for key in sorted(restores)]
        sets = build_save_restore_sets(function, register, locations, initial=True, cfg=cfg)
        if not register_sets_are_sound(
            function, register, usage.blocks_for(register), sets, cfg=cfg
        ):
            sets = [entry_exit_set(function, register)]
            placement.fallback_registers.append(register)
        for srset in sets:
            placement.add_set(srset)
    return placement
