"""Analytic dynamic-overhead accounting for spill placements.

The paper's Figure 5 and Table 1 report the *dynamic spill code overhead*: the
profile-weighted count of every compiler-inserted load/store (allocator spill
code, identical across techniques) plus every callee-saved save/restore
instruction and every jump instruction needed to materialize spill code in a
jump block.

This module computes the callee-saved part of that overhead directly from a
placement and an edge profile, without rewriting the function; the
interpreter-based measurement in :mod:`repro.profiling.overhead` provides the
end-to-end cross-check used by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.ir.cfg import FunctionCFG
from repro.ir.function import Function
from repro.ir.instructions import Opcode
from repro.profiling.profile_data import EdgeProfile
from repro.spill.cost_models import requires_jump_block
from repro.spill.model import EdgeKey, SpillPlacement
from repro.target.machine import MachineDescription, cost_weights


@dataclass(frozen=True)
class PlacementOverhead:
    """Breakdown of the dynamic overhead of one placement."""

    save_count: float
    restore_count: float
    jump_count: float
    num_jump_blocks: int

    @property
    def total(self) -> float:
        return self.save_count + self.restore_count + self.jump_count

    def __str__(self) -> str:
        return (
            f"saves={self.save_count:g} restores={self.restore_count:g} "
            f"jumps={self.jump_count:g} (total {self.total:g})"
        )


def placement_dynamic_overhead(
    function: Function,
    profile: EdgeProfile,
    placement: SpillPlacement,
    machine: Optional[MachineDescription] = None,
    cfg: Optional[FunctionCFG] = None,
) -> PlacementOverhead:
    """Dynamic overhead of the callee-saved save/restore code of ``placement``.

    Every location costs the execution count of its edge.  Edges that require
    a jump block and carry at least one location additionally cost one jump
    instruction per execution — charged once per edge, because registers
    placed on the same edge share the jump block.  When ``machine`` is given,
    saves, restores and jumps are weighted by the target's instruction costs
    instead of counting one unit each.
    """

    save_weight, restore_weight, jump_weight = cost_weights(machine)

    save_count = 0.0
    restore_count = 0.0
    for location in placement.locations():
        count = profile.edge_count(location.edge)
        if location.is_save():
            save_count += count * save_weight
        else:
            restore_count += count * restore_weight

    jump_count = 0.0
    num_jump_blocks = 0
    for edge in placement.edges_with_locations():
        if requires_jump_block(function, edge, cfg=cfg):
            num_jump_blocks += 1
            jump_count += profile.edge_count(edge) * jump_weight

    return PlacementOverhead(
        save_count=save_count,
        restore_count=restore_count,
        jump_count=jump_count,
        num_jump_blocks=num_jump_blocks,
    )


def allocator_spill_overhead(
    function: Function,
    profile: EdgeProfile,
    machine: Optional[MachineDescription] = None,
) -> float:
    """Profile-weighted count of allocator-inserted spill loads/stores.

    This component is identical for all three placement techniques (the
    register allocation is fixed before placement runs); it is included in
    Figure 5's totals.  With ``machine``, spill stores are weighted by the
    target's save (store) cost and spill loads by its restore (load) cost.
    """

    store_weight, load_weight, _ = cost_weights(machine)

    total = 0.0
    block_counts = profile.block_counts(function)
    for block in function.blocks:
        count = block_counts[block.label]
        for inst in block.instructions:
            if inst.is_memory() and inst.purpose == "spill":
                total += count * (store_weight if inst.opcode is Opcode.STORE else load_weight)
    return total
