"""Callee-saved spill code placement (the paper's contribution).

The package implements three placement techniques operating on the same
inputs — a function in single-exit form, the callee-saved *occupancy*
produced by the register allocator, and an edge profile:

* :func:`~repro.spill.entry_exit.place_entry_exit` — the baseline: save every
  used callee-saved register in the entry block, restore in the exit block.
* :func:`~repro.spill.shrink_wrap.place_shrink_wrap` — Chow's shrink-wrapping
  (data-flow based, loop avoidance, no spill code on jump edges) and the
  *modified* variant used as the starting point of the hierarchical
  algorithm (jump edges allowed, no artificial loop flow).
* :func:`~repro.spill.hierarchical.place_hierarchical` — the hierarchical
  spill code placement algorithm: program-structure-tree traversal hoisting
  save/restore sets to maximal-SESE-region boundaries whenever that lowers
  the profile-weighted cost.

Supporting modules: the placement data model (:mod:`repro.spill.model`), cost
models (:mod:`repro.spill.cost_models`), save/restore-set construction
(:mod:`repro.spill.sets`), placement validity verification
(:mod:`repro.spill.verifier`) and code insertion including jump blocks
(:mod:`repro.spill.insertion`).
"""

from repro.spill.cost_models import (
    CostModel,
    ExecutionCountCostModel,
    JumpEdgeCostModel,
    requires_jump_block,
)
from repro.spill.entry_exit import entry_exit_set, place_entry_exit
from repro.spill.hierarchical import HierarchicalResult, RegionDecision, place_hierarchical
from repro.spill.insertion import InsertionResult, apply_placement
from repro.spill.model import (
    CalleeSavedUsage,
    SaveRestoreSet,
    SpillKind,
    SpillLocation,
    SpillPlacement,
)
from repro.spill.overhead import placement_dynamic_overhead
from repro.spill.sets import build_save_restore_sets
from repro.spill.shrink_wrap import place_shrink_wrap, shrink_wrap_edges
from repro.spill.verifier import (
    PlacementError,
    register_sets_are_sound,
    verify_placement,
)

__all__ = [
    "CalleeSavedUsage",
    "CostModel",
    "ExecutionCountCostModel",
    "HierarchicalResult",
    "InsertionResult",
    "JumpEdgeCostModel",
    "PlacementError",
    "RegionDecision",
    "SaveRestoreSet",
    "SpillKind",
    "SpillLocation",
    "SpillPlacement",
    "apply_placement",
    "build_save_restore_sets",
    "entry_exit_set",
    "place_entry_exit",
    "place_hierarchical",
    "place_shrink_wrap",
    "placement_dynamic_overhead",
    "requires_jump_block",
    "shrink_wrap_edges",
    "register_sets_are_sound",
    "verify_placement",
]
