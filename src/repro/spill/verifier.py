"""Validity checking for callee-saved spill placements.

A placement is valid for a register when, along every execution path:

* the original callee-saved value is saved before the register is first
  occupied by a program variable,
* a restore only executes when the value is currently saved (otherwise it
  would load garbage or clobber a live variable),
* a save only executes when the original value is still in the register
  (otherwise it would save a variable's value on top of the original), and
* the original value is back in the register at the procedure exit.

The check is a small abstract interpretation over the CFG with the state
domain ``{ORIGINAL, SAVED}``; paths that disagree about the state at a merge
point make the placement invalid (the state must be a function of the program
point for straight-line save/restore code to be correct).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.cfg import FunctionCFG
from repro.ir.function import ENTRY_SENTINEL, EXIT_SENTINEL, Function
from repro.ir.values import PhysicalRegister
from repro.spill.model import CalleeSavedUsage, EdgeKey, SpillKind, SpillLocation, SpillPlacement


class PlacementError(ValueError):
    """Raised when a spill placement violates the callee-saved convention."""

    def __init__(self, errors: List[str]):
        super().__init__("; ".join(errors))
        self.errors = errors


class _State(enum.Enum):
    ORIGINAL = "original"   # the callee-saved value is (still) in the register
    SAVED = "saved"         # the value is in the save slot; the register is free


def _edge_locations(
    placement: SpillPlacement, register: PhysicalRegister
) -> Dict[EdgeKey, List[SpillLocation]]:
    by_edge: Dict[EdgeKey, List[SpillLocation]] = {}
    for location in placement.locations_for(register):
        by_edge.setdefault(location.edge, []).append(location)
    return by_edge


def _apply_edge(
    state: _State,
    edge: EdgeKey,
    locations: List[SpillLocation],
    errors: List[str],
    register: PhysicalRegister,
) -> _State:
    """Apply the save/restore locations sitting on one edge to the state."""

    saves = [l for l in locations if l.is_save()]
    restores = [l for l in locations if l.is_restore()]
    if len(saves) > 1 or len(restores) > 1:
        errors.append(f"{register.name}: duplicate locations on edge {edge}")
    if saves and restores:
        errors.append(f"{register.name}: both save and restore on edge {edge}")
        return state
    if saves:
        if state is not _State.ORIGINAL:
            errors.append(
                f"{register.name}: save on edge {edge} reached with the value already saved"
            )
        return _State.SAVED
    if restores:
        if state is not _State.SAVED:
            errors.append(
                f"{register.name}: restore on edge {edge} reached without a prior save"
            )
        return _State.ORIGINAL
    return state


def collect_placement_errors(
    function: Function,
    usage: CalleeSavedUsage,
    placement: SpillPlacement,
    cfg: Optional[FunctionCFG] = None,
) -> List[str]:
    """Return every convention violation of ``placement`` (empty when valid)."""

    errors: List[str] = []
    if cfg is None:
        cfg = function.cfg()
    entry = function.entry.label
    exit_label = cfg.exit_label
    block_out_edges = cfg.out_edges

    # Every location must sit on an edge that actually exists; the valid-edge
    # table is shared by all registers (and all calls on this snapshot).
    valid_edges = cfg.placement_edge_keys()

    for register in usage.used_registers():
        by_edge = _edge_locations(placement, register)
        occupied = usage.blocks_for(register)

        # State at block entry, propagated to a fixed point; absent = unknown.
        state_at: Dict[str, _State] = {}
        entry_key = (ENTRY_SENTINEL, entry)
        entry_locations = by_edge.get(entry_key)
        if entry_locations is None:
            entry_state = _State.ORIGINAL
        else:
            entry_state = _apply_edge(
                _State.ORIGINAL, entry_key, entry_locations, errors, register
            )
        state_at[entry] = entry_state

        worklist = [entry]
        while worklist:
            label = worklist.pop()
            state = state_at[label]
            if label in occupied and state is not _State.SAVED:
                errors.append(
                    f"{register.name}: block {label!r} is occupied but the original "
                    "value was never saved on some path"
                )
            for edge in block_out_edges[label]:
                key = edge.key
                locations = by_edge.get(key)
                if locations is None:
                    # No spill code on this edge: the state passes through.
                    next_state = state
                else:
                    next_state = _apply_edge(state, key, locations, errors, register)
                previous = state_at.get(edge.dst)
                if previous is None:
                    state_at[edge.dst] = next_state
                    worklist.append(edge.dst)
                elif previous is not next_state:
                    errors.append(
                        f"{register.name}: conflicting saved/unsaved state at block "
                        f"{edge.dst!r} (paths disagree)"
                    )

        exit_state = state_at.get(exit_label)
        if exit_state is not None:
            exit_key = (exit_label, EXIT_SENTINEL)
            exit_locations = by_edge.get(exit_key)
            if exit_locations is None:
                final = exit_state
            else:
                final = _apply_edge(
                    exit_state, exit_key, exit_locations, errors, register
                )
            if final is not _State.ORIGINAL:
                errors.append(
                    f"{register.name}: procedure exit reached with the original value "
                    "still in the save slot (missing restore)"
                )

        for location in placement.locations_for(register):
            if location.edge not in valid_edges:
                errors.append(
                    f"{register.name}: location {location} does not lie on a CFG edge"
                )

    return errors


def verify_placement(
    function: Function,
    usage: CalleeSavedUsage,
    placement: SpillPlacement,
    cfg: Optional[FunctionCFG] = None,
) -> None:
    """Raise :class:`PlacementError` when ``placement`` is invalid."""

    errors = collect_placement_errors(function, usage, placement, cfg=cfg)
    if errors:
        raise PlacementError(errors)


def register_sets_are_sound(function, register, used_blocks, sets, cfg=None) -> bool:
    """Check one register's save/restore sets against the convention.

    The placement algorithms use this as their safety net: dataflow-derived
    locations are provably correct on the CFG shapes the paper analyses, but
    the scenario space includes arbitrary (e.g. irreducible) flowgraphs where
    the structural assumptions behind a technique may not hold — a register
    whose candidate sets fail this check falls back to entry/exit placement
    (see :func:`repro.spill.shrink_wrap.place_shrink_wrap` and
    :func:`repro.spill.hierarchical.place_hierarchical`).
    """

    usage = CalleeSavedUsage.from_blocks({register: used_blocks})
    probe = SpillPlacement(function.name, "soundness-probe")
    for srset in sets:
        probe.add_set(srset)
    return not collect_placement_errors(function, usage, probe, cfg=cfg)
