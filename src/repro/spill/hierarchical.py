"""The hierarchical spill code placement algorithm (paper, Section 4).

Outline (HIERARCHICAL-SPILL-CODE-PLACEMENT):

1. compute the program structure tree of maximal SESE regions;
2. compute the modified shrink-wrapping save/restore locations (jump edges
   allowed, no artificial loop flow);
3. group those locations into the initial save/restore sets;
4. traverse the PST regions in topological order (children before parents);
5. for each callee-saved register, whenever the cost of saving/restoring at
   the region boundaries is less than or equal to the total cost of the
   save/restore sets contained in the region, replace the contained sets by a
   new set at the boundaries and propagate the change upward;
6. the final comparison at the PST root decides between the accumulated
   placement and plain procedure entry/exit placement.

With the execution-count cost model the result is an optimal (minimum
dynamic execution count) placement; the jump-edge cost model additionally
accounts for jump instructions needed to materialize spill code on critical
jump edges and is the model evaluated in the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.analysis.pst import ProgramStructureTree, Region, build_pst
from repro.ir.cfg import FunctionCFG
from repro.ir.function import Function
from repro.ir.values import PhysicalRegister
from repro.profiling.profile_data import EdgeProfile
from repro.spill.cost_models import (
    CostModel,
    ExecutionCountCostModel,
    JumpEdgeCostModel,
    make_cost_model,
    requires_jump_block,
)
from repro.spill.entry_exit import entry_exit_set
from repro.spill.model import (
    CalleeSavedUsage,
    EdgeKey,
    SaveRestoreSet,
    SpillKind,
    SpillLocation,
    SpillPlacement,
)
from repro.spill.shrink_wrap import place_shrink_wrap
from repro.spill.verifier import register_sets_are_sound
from repro.target.machine import MachineDescription


@dataclass(frozen=True)
class RegionDecision:
    """One comparison made during the PST traversal (used by tests/examples)."""

    region_id: int
    register: PhysicalRegister
    contained_sets: int
    contained_cost: float
    boundary_cost: float
    replaced: bool

    def __str__(self) -> str:
        action = "replaced" if self.replaced else "kept"
        return (
            f"region {self.region_id} / {self.register.name}: contained "
            f"{self.contained_sets} set(s) cost {self.contained_cost:g} vs boundary "
            f"{self.boundary_cost:g} -> {action}"
        )


@dataclass
class HierarchicalResult:
    """Placement plus the decision trace and the structures it was built from."""

    placement: SpillPlacement
    initial_placement: SpillPlacement
    pst: ProgramStructureTree
    decisions: List[RegionDecision] = field(default_factory=list)

    def decisions_for_register(self, register: PhysicalRegister) -> List[RegionDecision]:
        return [d for d in self.decisions if d.register == register]


def compute_jump_sharing(
    function: Function,
    placement: SpillPlacement,
    cfg: Optional[FunctionCFG] = None,
) -> Dict[EdgeKey, int]:
    """How many registers share a jump block on each edge of the initial placement.

    The jump-edge cost model divides the cost of a jump instruction among all
    callee-saved registers that have spill locations on the corresponding
    jump edge (paper, Section 4) — but only for the initial, shrink-wrapping
    derived sets.
    """

    sharing: Dict[EdgeKey, int] = {}
    if cfg is None:
        cfg = function.cfg()
    for edge, locations in placement.edges_with_locations().items():
        if requires_jump_block(function, edge, cfg=cfg):
            sharing[edge] = len({l.register for l in locations})
    return sharing


def _set_endpoint_labels(srset: SaveRestoreSet, cache: Dict[int, Tuple]) -> set:
    """Endpoint labels of a set's locations, memoized per set object.

    Keyed by ``id`` with the set object kept alive in the cache entry, so a
    recycled id can never alias a dead set.
    """

    entry = cache.get(id(srset))
    if entry is None:
        labels = set()
        for location in srset.locations:
            labels.add(location.edge[0])
            labels.add(location.edge[1])
        entry = (srset, labels)
        cache[id(srset)] = entry
    return entry[1]


def _contained_sets(
    region: Region,
    sets: List[SaveRestoreSet],
    endpoint_cache: Optional[Dict[int, Tuple]] = None,
) -> List[SaveRestoreSet]:
    """The save/restore sets fully contained in ``region``.

    The PST root contains every set, including sets with locations already at
    the procedure entry/exit (the final comparison of the algorithm considers
    all spill code in the procedure).
    """

    if region.is_root:
        return list(sets)
    if endpoint_cache is None:
        return [s for s in sets if s.is_contained_in_blocks(region.blocks)]
    blocks = region.blocks
    return [s for s in sets if _set_endpoint_labels(s, endpoint_cache) <= blocks]


def place_hierarchical(
    function: Function,
    usage: CalleeSavedUsage,
    profile: EdgeProfile,
    cost_model: Union[CostModel, str] = "jump_edge",
    maximal_regions: bool = True,
    pst: Optional[ProgramStructureTree] = None,
    machine: Optional["MachineDescription"] = None,
    cfg: Optional[FunctionCFG] = None,
) -> HierarchicalResult:
    """Run the hierarchical spill code placement algorithm.

    Parameters
    ----------
    cost_model:
        Either a :class:`~repro.spill.cost_models.CostModel` instance or one
        of ``"execution_count"`` / ``"jump_edge"`` (the paper evaluates the
        jump-edge model).
    maximal_regions:
        Build the PST from maximal SESE regions (the paper's formulation).
        ``False`` uses canonical regions and exists for the ablation study.
    pst:
        A pre-computed PST, to avoid recomputation when several placements of
        the same function are produced.
    machine:
        Target machine supplying the save/restore/jump cost weights when
        ``cost_model`` is given by name (ignored for instances, which carry
        their own machine).  Omitted, every instruction costs one unit.

    The result is checked per register against the callee-saved convention;
    a register whose hoisted sets fail the check (possible only outside the
    paper's structural assumptions, e.g. on irreducible flowgraphs) reverts
    to its initial shrink-wrapping sets — or, failing those too, to the
    entry/exit pair — and is recorded in
    :attr:`~repro.spill.model.SpillPlacement.fallback_registers`.
    """

    if isinstance(cost_model, str):
        cost_model = make_cost_model(cost_model, machine)

    if cfg is None:
        cfg = function.cfg()
    # Steps 1-3: PST, modified shrink-wrapping locations, initial sets.
    if pst is None:
        pst = build_pst(function, maximal=maximal_regions)
    initial = place_shrink_wrap(
        function,
        usage,
        allow_jump_edges=True,
        avoid_loops=False,
        technique_name="modified_shrink_wrap",
        cfg=cfg,
    )
    jump_sharing = compute_jump_sharing(function, initial, cfg=cfg)

    # Per-object memos for the traversal: a set's endpoint labels (containment
    # tests against every region) and its cost under the fixed sharing map.
    # Memoized costs are only safe for the built-in (stateless, deterministic)
    # models; a user-supplied subclass is called afresh each time.
    endpoint_cache: Dict[int, Tuple] = {}
    memoize_costs = type(cost_model) in (ExecutionCountCostModel, JumpEdgeCostModel)
    cost_cache: Dict[int, Tuple] = {}

    def contained_set_cost(srset: SaveRestoreSet) -> float:
        if not memoize_costs:
            return cost_model.set_cost(function, profile, srset, jump_sharing)
        entry = cost_cache.get(id(srset))
        if entry is None:
            entry = (srset, cost_model.set_cost(function, profile, srset, jump_sharing))
            cost_cache[id(srset)] = entry
        return entry[1]

    current: Dict[PhysicalRegister, List[SaveRestoreSet]] = {
        register: list(initial.sets_for(register)) for register in initial.registers()
    }
    decisions: List[RegionDecision] = []

    # Steps 4-6: topological traversal of the PST.
    for region in pst.topological_order():
        boundary_cost = cost_model.boundary_cost(
            function, profile, region.entry_edge, region.exit_edge
        )
        for register in usage.used_registers():
            sets = current.get(register, [])
            if not sets:
                continue
            contained = _contained_sets(region, sets, endpoint_cache)
            if not contained:
                continue
            contained_cost = sum(contained_set_cost(srset) for srset in contained)
            replaced = boundary_cost <= contained_cost
            decisions.append(
                RegionDecision(
                    region_id=region.identifier,
                    register=register,
                    contained_sets=len(contained),
                    contained_cost=contained_cost,
                    boundary_cost=boundary_cost,
                    replaced=replaced,
                )
            )
            if not replaced:
                continue
            # Remove the contained sets and substitute a new set whose save
            # and restore sit at the region boundaries.
            contained_ids = {id(s) for s in contained}
            remaining = [s for s in sets if id(s) not in contained_ids]
            new_set = SaveRestoreSet.from_locations(
                register,
                [
                    SpillLocation(register, SpillKind.SAVE, region.entry_edge),
                    SpillLocation(register, SpillKind.RESTORE, region.exit_edge),
                ],
                initial=False,
            )
            current[register] = remaining + [new_set]

    # Soundness net: the PST traversal is correct whenever the SESE regions
    # really are single-entry/single-exit, which the cycle-equivalence
    # machinery guarantees on well-formed flowgraphs.  On shapes outside
    # those assumptions (degenerate or irreducible graphs) a hoisted set
    # could still violate the convention — such a register reverts to its
    # initial (already validated) sets, or to entry/exit as a last resort.
    placement = SpillPlacement(function.name, f"hierarchical[{cost_model.name}]")
    placement.fallback_registers = list(initial.fallback_registers)
    for register, sets in current.items():
        used_blocks = usage.blocks_for(register)
        if not register_sets_are_sound(function, register, used_blocks, sets, cfg=cfg):
            sets = initial.sets_for(register)
            if not register_sets_are_sound(function, register, used_blocks, sets, cfg=cfg):
                sets = [entry_exit_set(function, register)]
            if register not in placement.fallback_registers:
                placement.fallback_registers.append(register)
        for srset in sets:
            placement.add_set(srset)
    return HierarchicalResult(
        placement=placement,
        initial_placement=initial,
        pst=pst,
        decisions=decisions,
    )
