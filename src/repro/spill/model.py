"""Data model for callee-saved spill placement.

The central objects are:

* :class:`CalleeSavedUsage` — for each callee-saved register, the set of
  blocks in which the register is *occupied* by a program variable after
  register allocation (the shaded blocks of the paper's figures).
* :class:`SpillLocation` — one save or restore of one register, located on a
  CFG edge.  Locations at procedure entry or exit live on the virtual
  entry/exit edges.
* :class:`SaveRestoreSet` — a group of mutually dependent save/restore
  locations (the paper's save/restore sets, built like du-webs).
* :class:`SpillPlacement` — the complete result of a placement technique:
  for every callee-saved register, its save/restore sets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.ir.function import ENTRY_SENTINEL, EXIT_SENTINEL, Function
from repro.ir.values import PhysicalRegister

EdgeKey = Tuple[str, str]


class SpillKind(enum.Enum):
    """Whether a spill location stores (save) or loads (restore) the register."""

    SAVE = "save"
    RESTORE = "restore"


@dataclass(frozen=True)
class SpillLocation:
    """One callee-saved save or restore on a specific CFG edge."""

    register: PhysicalRegister
    kind: SpillKind
    edge: EdgeKey

    def __hash__(self) -> int:
        # Locations are hashed constantly (frozensets of them form every
        # SaveRestoreSet); cache the field-tuple hash on first use.  The cache
        # must not be pickled: string hashes are per-process under hash
        # randomization, and placements travel through the compile cache.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.register, self.kind, self.edge))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def is_save(self) -> bool:
        return self.kind is SpillKind.SAVE

    def is_restore(self) -> bool:
        return self.kind is SpillKind.RESTORE

    def is_at_procedure_entry(self) -> bool:
        return self.edge[0] == ENTRY_SENTINEL

    def is_at_procedure_exit(self) -> bool:
        return self.edge[1] == EXIT_SENTINEL

    def is_on_virtual_edge(self) -> bool:
        return self.is_at_procedure_entry() or self.is_at_procedure_exit()

    def __str__(self) -> str:
        return f"{self.kind.value}({self.register}) on {self.edge[0]}->{self.edge[1]}"


@dataclass(frozen=True)
class SaveRestoreSet:
    """A group of save/restore locations that are valid only together.

    ``initial`` records whether the set came from the (modified)
    shrink-wrapping starting point; the jump-edge cost model divides the cost
    of a required jump instruction among registers only for initial sets.
    """

    register: PhysicalRegister
    locations: FrozenSet[SpillLocation]
    initial: bool = True

    def __post_init__(self) -> None:
        for location in self.locations:
            if location.register != self.register:
                raise ValueError(
                    f"location {location} does not belong to register {self.register}"
                )

    @classmethod
    def from_locations(
        cls,
        register: PhysicalRegister,
        locations: Iterable[SpillLocation],
        initial: bool = True,
    ) -> "SaveRestoreSet":
        return cls(register, frozenset(locations), initial)

    @property
    def saves(self) -> List[SpillLocation]:
        return sorted((l for l in self.locations if l.is_save()), key=lambda l: l.edge)

    @property
    def restores(self) -> List[SpillLocation]:
        return sorted((l for l in self.locations if l.is_restore()), key=lambda l: l.edge)

    def edges(self) -> Set[EdgeKey]:
        return {l.edge for l in self.locations}

    def is_contained_in_blocks(self, blocks: FrozenSet[str]) -> bool:
        """True when every location lies on an edge internal to ``blocks``."""

        return all(
            location.edge[0] in blocks and location.edge[1] in blocks
            for location in self.locations
        )

    def __len__(self) -> int:
        return len(self.locations)

    def __str__(self) -> str:
        parts = ", ".join(str(l) for l in sorted(self.locations, key=lambda l: (l.kind.value, l.edge)))
        return f"{{{parts}}}"


@dataclass
class CalleeSavedUsage:
    """Occupancy of callee-saved registers per basic block.

    A register is *occupied* in a block when some allocated live range
    assigned to it is live anywhere in that block; the original callee-saved
    value must therefore be saved before the block executes and must not be
    restored until after the occupied region.
    """

    occupancy: Dict[PhysicalRegister, FrozenSet[str]] = field(default_factory=dict)

    @classmethod
    def from_blocks(
        cls, mapping: Mapping[PhysicalRegister, Iterable[str]]
    ) -> "CalleeSavedUsage":
        return cls({reg: frozenset(blocks) for reg, blocks in mapping.items() if blocks})

    def used_registers(self) -> List[PhysicalRegister]:
        """Registers with at least one occupied block, in a stable order."""

        return sorted((r for r, blocks in self.occupancy.items() if blocks), key=lambda r: r.name)

    def blocks_for(self, register: PhysicalRegister) -> FrozenSet[str]:
        return self.occupancy.get(register, frozenset())

    def is_occupied(self, register: PhysicalRegister, label: str) -> bool:
        return label in self.occupancy.get(register, frozenset())

    def restricted_to(self, labels: Iterable[str]) -> "CalleeSavedUsage":
        """Occupancy restricted to a subset of blocks (used by tests)."""

        allowed = set(labels)
        return CalleeSavedUsage(
            {reg: frozenset(b for b in blocks if b in allowed) for reg, blocks in self.occupancy.items()}
        )

    def total_occupied_blocks(self) -> int:
        return sum(len(blocks) for blocks in self.occupancy.values())

    def __bool__(self) -> bool:
        return any(self.occupancy.values())


@dataclass
class SpillPlacement:
    """The full placement decision of one technique for one function."""

    function_name: str
    technique: str
    sets: Dict[PhysicalRegister, List[SaveRestoreSet]] = field(default_factory=dict)
    #: Registers whose derived locations failed the soundness check and were
    #: replaced by the entry/exit fallback (only ever non-empty on CFG shapes
    #: outside a technique's structural assumptions, e.g. irreducible loops).
    fallback_registers: List[PhysicalRegister] = field(default_factory=list)

    # -- construction ---------------------------------------------------------------

    def add_set(self, srset: SaveRestoreSet) -> None:
        self.sets.setdefault(srset.register, []).append(srset)

    def replace_sets(self, register: PhysicalRegister, sets: List[SaveRestoreSet]) -> None:
        self.sets[register] = list(sets)

    # -- queries ---------------------------------------------------------------------

    def registers(self) -> List[PhysicalRegister]:
        return sorted(self.sets.keys(), key=lambda r: r.name)

    def sets_for(self, register: PhysicalRegister) -> List[SaveRestoreSet]:
        return list(self.sets.get(register, []))

    def locations(self) -> Iterator[SpillLocation]:
        for register in self.registers():
            for srset in self.sets[register]:
                yield from sorted(srset.locations, key=lambda l: (l.kind.value, l.edge))

    def locations_for(self, register: PhysicalRegister) -> List[SpillLocation]:
        result: List[SpillLocation] = []
        for srset in self.sets.get(register, []):
            result.extend(srset.locations)
        return result

    def saves(self) -> List[SpillLocation]:
        return [l for l in self.locations() if l.is_save()]

    def restores(self) -> List[SpillLocation]:
        return [l for l in self.locations() if l.is_restore()]

    def num_locations(self) -> int:
        return sum(len(srset) for sets in self.sets.values() for srset in sets)

    def edges_with_locations(self) -> Dict[EdgeKey, List[SpillLocation]]:
        by_edge: Dict[EdgeKey, List[SpillLocation]] = {}
        for location in self.locations():
            by_edge.setdefault(location.edge, []).append(location)
        return by_edge

    def registers_on_edge(self, edge: EdgeKey) -> Set[PhysicalRegister]:
        return {l.register for l in self.locations() if l.edge == edge}

    def describe(self) -> str:
        lines = [f"{self.technique} placement for {self.function_name}:"]
        for register in self.registers():
            for srset in self.sets[register]:
                lines.append(f"  {register.name}: {srset}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()
