"""The entry/exit baseline placement.

Every callee-saved register that is occupied anywhere in the procedure is
saved in the entry block and restored in the (unique) exit block.  This is
the always-valid, lowest-static-overhead placement the paper compares
against; its dynamic cost is two instructions per used register per
invocation.
"""

from __future__ import annotations

from repro.ir.function import ENTRY_SENTINEL, EXIT_SENTINEL, Function
from repro.spill.model import (
    CalleeSavedUsage,
    SaveRestoreSet,
    SpillKind,
    SpillLocation,
    SpillPlacement,
)


def place_entry_exit(function: Function, usage: CalleeSavedUsage) -> SpillPlacement:
    """Save at procedure entry and restore at procedure exit."""

    placement = SpillPlacement(function.name, "entry_exit")
    entry_edge = (ENTRY_SENTINEL, function.entry.label)
    exit_edge = (function.exit.label, EXIT_SENTINEL)
    for register in usage.used_registers():
        save = SpillLocation(register, SpillKind.SAVE, entry_edge)
        restore = SpillLocation(register, SpillKind.RESTORE, exit_edge)
        placement.add_set(
            SaveRestoreSet.from_locations(register, [save, restore], initial=True)
        )
    return placement
