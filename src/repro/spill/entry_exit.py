"""The entry/exit baseline placement.

Every callee-saved register that is occupied anywhere in the procedure is
saved in the entry block and restored in the (unique) exit block.  This is
the always-valid, lowest-static-overhead placement the paper compares
against; its dynamic cost is two instructions per used register per
invocation.
"""

from __future__ import annotations

from repro.ir.function import ENTRY_SENTINEL, EXIT_SENTINEL, Function
from repro.spill.model import (
    CalleeSavedUsage,
    SaveRestoreSet,
    SpillKind,
    SpillLocation,
    SpillPlacement,
)


def entry_exit_set(function: Function, register) -> SaveRestoreSet:
    """The always-valid save/restore set: save at entry, restore at exit.

    This is both the baseline placement's building block and the documented
    fallback the other techniques substitute for a register whose derived
    locations fail the soundness check (arbitrary, e.g. irreducible, CFGs).
    """

    save = SpillLocation(register, SpillKind.SAVE, (ENTRY_SENTINEL, function.entry.label))
    restore = SpillLocation(
        register, SpillKind.RESTORE, (function.exit.label, EXIT_SENTINEL)
    )
    return SaveRestoreSet.from_locations(register, [save, restore], initial=True)


def place_entry_exit(function: Function, usage: CalleeSavedUsage) -> SpillPlacement:
    """Save at procedure entry and restore at procedure exit."""

    placement = SpillPlacement(function.name, "entry_exit")
    for register in usage.used_registers():
        placement.add_set(entry_exit_set(function, register))
    return placement
