"""Materializing a spill placement: rewriting the function.

Every :class:`~repro.spill.model.SpillLocation` lives on a CFG edge.  To turn
the placement into executable code the pass picks, per edge, a concrete
insertion point:

* virtual procedure entry edge — the top of the entry block;
* virtual procedure exit edge — just before the return;
* an edge whose destination has a single predecessor (and is not the entry
  block) — the top of the destination block;
* an edge whose source has a single successor — the bottom of the source
  block, before its terminator;
* any other fall-through edge — a new block spliced into the layout (no new
  jump instruction needed);
* any other jump edge — a new *jump block*: the branch/jump is retargeted at
  a fresh block which ends with a jump to the original destination.  The new
  jump instruction is the extra dynamic overhead the jump-edge cost model
  accounts for.

Each callee-saved register gets one stack slot; all locations of a register
use it.  Registers whose locations share an edge share the same inserted
block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir import instructions as ins
from repro.ir.basic_block import BasicBlock
from repro.ir.cfg import EdgeKind
from repro.ir.function import ENTRY_SENTINEL, EXIT_SENTINEL, Function
from repro.ir.passes import split_edge
from repro.ir.values import PhysicalRegister, StackSlot
from repro.profiling.profile_data import EdgeProfile
from repro.spill.cost_models import requires_jump_block
from repro.spill.model import EdgeKey, SpillLocation, SpillPlacement


@dataclass
class InsertionResult:
    """Statistics and bookkeeping produced by :func:`apply_placement`."""

    function: Function
    slots: Dict[PhysicalRegister, StackSlot] = field(default_factory=dict)
    inserted_saves: int = 0
    inserted_restores: int = 0
    jump_blocks: Dict[EdgeKey, str] = field(default_factory=dict)
    split_blocks: Dict[EdgeKey, str] = field(default_factory=dict)
    inserted_jumps: int = 0

    @property
    def num_inserted_instructions(self) -> int:
        return self.inserted_saves + self.inserted_restores + self.inserted_jumps

    def block_for_edge(self, edge: EdgeKey) -> Optional[str]:
        return self.jump_blocks.get(edge) or self.split_blocks.get(edge)


def _make_instruction(location: SpillLocation, slot: StackSlot):
    if location.is_save():
        return ins.callee_save(location.register, slot)
    return ins.callee_restore(location.register, slot)


def apply_placement(
    function: Function,
    placement: SpillPlacement,
    profile: Optional[EdgeProfile] = None,
) -> InsertionResult:
    """Insert the save/restore instructions of ``placement`` into ``function``.

    The function is modified in place (clone it first if the original must be
    preserved).  When ``profile`` is given, its edge counts are extended so
    that edges created by block splitting keep the original edge's count and
    the profile stays flow-conserving on the rewritten function.
    """

    result = InsertionResult(function=function)
    entry_label = function.entry.label
    exit_label = function.exit.label

    for register in placement.registers():
        if placement.locations_for(register):
            result.slots[register] = function.allocate_stack_slot("callee_save")

    # Insert per edge so that several registers on the same edge share the
    # same split/jump block (and therefore a single extra jump instruction).
    by_edge = placement.edges_with_locations()
    for edge_key in sorted(by_edge):
        locations = sorted(by_edge[edge_key], key=lambda l: (l.kind.value, l.register.name))
        src, dst = edge_key

        if src == ENTRY_SENTINEL:
            block = function.block(entry_label)
            # Saves at procedure entry execute before everything else.
            for offset, location in enumerate(locations):
                block.instructions.insert(offset, _make_instruction(location, result.slots[location.register]))
                _count(result, location)
            continue

        if dst == EXIT_SENTINEL:
            block = function.block(exit_label)
            for location in locations:
                block.insert_before_terminator(
                    _make_instruction(location, result.slots[location.register])
                )
                _count(result, location)
            continue

        edge = function.edge(src, dst)
        if dst != entry_label and len(function.predecessors(dst)) == 1:
            block = function.block(dst)
            for offset, location in enumerate(locations):
                block.instructions.insert(offset, _make_instruction(location, result.slots[location.register]))
                _count(result, location)
            continue

        if len(function.successors(src)) == 1:
            block = function.block(src)
            for location in locations:
                block.insert_before_terminator(
                    _make_instruction(location, result.slots[location.register])
                )
                _count(result, location)
            continue

        # Critical edge: a new block is required.
        needs_jump = edge.kind is EdgeKind.JUMP
        new_block = split_edge(function, edge, label=function.new_label("spill"))
        if needs_jump:
            result.jump_blocks[edge_key] = new_block.label
            result.inserted_jumps += 1
        else:
            result.split_blocks[edge_key] = new_block.label
        for location in locations:
            new_block.insert_before_terminator(
                _make_instruction(location, result.slots[location.register])
            )
            _count(result, location)
        if profile is not None:
            _extend_profile(profile, edge_key, new_block.label)

    return result


def _count(result: InsertionResult, location: SpillLocation) -> None:
    if location.is_save():
        result.inserted_saves += 1
    else:
        result.inserted_restores += 1


def _extend_profile(profile: EdgeProfile, original: EdgeKey, new_label: str) -> None:
    """Re-route the profile count of a split edge through the new block."""

    count = profile.edge_counts.pop(original, 0.0)
    profile.edge_counts[(original[0], new_label)] = count
    profile.edge_counts[(new_label, original[1])] = count
