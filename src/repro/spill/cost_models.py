"""Cost models for spill locations.

The paper defines two cost models:

* **Execution count cost model** — every save/restore instruction costs the
  dynamic execution count of the CFG edge it is placed on.  The hierarchical
  algorithm is optimal under this model, but the resulting code may require
  spill instructions on jump edges that cannot be materialized without an
  extra jump.
* **Jump edge cost model** — like the execution-count model, but a location
  that must be materialized in a new *jump block* on a jump edge additionally
  pays the cost of the inserted jump instruction (the edge's execution
  count).  For the initial shrink-wrapping placement this jump cost is
  divided among all callee-saved registers with spill code on that edge; new
  sets created during the PST traversal pay the full jump cost.
"""

from __future__ import annotations

import abc
from typing import Dict, Mapping, Optional, Tuple

from repro.ir.cfg import EdgeKind, FunctionCFG
from repro.ir.function import ENTRY_SENTINEL, EXIT_SENTINEL, Function
from repro.profiling.profile_data import EdgeProfile
from repro.spill.model import EdgeKey, SaveRestoreSet, SpillLocation
from repro.target.machine import MachineDescription, cost_weights


def requires_jump_block(
    function: Function, edge: EdgeKey, cfg: Optional[FunctionCFG] = None
) -> bool:
    """Does placing spill code on ``edge`` require inserting a jump block?

    A location on an edge can be absorbed into an existing block when:

    * the edge is the virtual procedure entry/exit edge (code goes at the top
      of the entry block / before the return), or
    * the destination block has a single predecessor and is not the entry
      block (code goes at the top of the destination), or
    * the source block has a single successor (code goes at the bottom of the
      source, before its terminator), or
    * the edge is a fall-through edge (a new block spliced into the layout
      needs no jump instruction).

    Only a *critical jump edge* — source with several successors, destination
    with several predecessors, transfer by an explicit jump — needs a new
    block terminated by a new jump instruction, which is the extra dynamic
    cost the jump-edge model charges.

    The verdict is structural, so it is memoized on the CFG snapshot
    (``cfg.jump_memo``); pass ``cfg`` to skip re-fetching the snapshot in
    per-edge loops.
    """

    src, dst = edge
    if src == ENTRY_SENTINEL or dst == EXIT_SENTINEL:
        return False
    if cfg is None:
        cfg = function.cfg()
    memo = cfg.jump_memo
    cached = memo.get(edge)
    if cached is None:
        if dst != cfg.entry_label and cfg.num_preds.get(dst, 0) == 1:
            cached = False
        elif cfg.num_succs[src] == 1:
            cached = False
        else:
            cached = cfg.edge(src, dst).kind is EdgeKind.JUMP
        memo[edge] = cached
    return cached


class CostModel(abc.ABC):
    """Common interface of the two cost models.

    When constructed with a :class:`~repro.target.machine.MachineDescription`
    the per-location costs are weighted by the target's save/restore/jump
    instruction costs; without one, every instruction costs one unit (the
    paper's instruction-count accounting).
    """

    name: str = "abstract"

    def __init__(self, machine: Optional[MachineDescription] = None):
        self.machine = machine
        self._save_weight, self._restore_weight, self._jump_weight = cost_weights(machine)

    def location_weight(self, location: SpillLocation) -> float:
        """The target's cost weight for one save or restore instruction."""

        return self._save_weight if location.is_save() else self._restore_weight

    def cache_identity(self) -> Optional[str]:
        """Stable identity for compile-cache keys, or ``None`` for "unknown".

        The default is ``None``: a custom subclass may close over arbitrary
        state the cache cannot see, so it must *bypass* caching rather than
        risk aliasing a different model.  Subclasses whose behaviour is fully
        determined by their class and cost weights should return
        :meth:`_weighted_identity`.
        """

        return None

    def _weighted_identity(self) -> str:
        """``class|name|save|restore|jump`` with bit-exact (hex) weights.

        The concrete class is part of the identity: a subclass that tweaks
        ``location_cost`` but inherits ``cache_identity`` must never alias
        its parent's cache entries, even with identical name and weights.
        """

        cls = type(self)
        return "|".join(
            (
                f"{cls.__module__}.{cls.__qualname__}",
                self.name,
                self._save_weight.hex(),
                self._restore_weight.hex(),
                self._jump_weight.hex(),
            )
        )

    @abc.abstractmethod
    def location_cost(
        self,
        function: Function,
        profile: EdgeProfile,
        location: SpillLocation,
        jump_sharing: Optional[Mapping[EdgeKey, int]] = None,
    ) -> float:
        """Dynamic cost of one save/restore location.

        ``jump_sharing`` maps edges to the number of callee-saved registers
        sharing a jump block there; it only applies to locations of *initial*
        save/restore sets.
        """

    def set_cost(
        self,
        function: Function,
        profile: EdgeProfile,
        srset: SaveRestoreSet,
        jump_sharing: Optional[Mapping[EdgeKey, int]] = None,
    ) -> float:
        """Total cost of a save/restore set."""

        sharing = jump_sharing if srset.initial else None
        return sum(
            self.location_cost(function, profile, location, sharing)
            for location in srset.locations
        )

    def boundary_cost(
        self,
        function: Function,
        profile: EdgeProfile,
        entry_edge: EdgeKey,
        exit_edge: EdgeKey,
    ) -> float:
        """Cost of saving at ``entry_edge`` and restoring at ``exit_edge``.

        New sets always pay the full jump cost, hence no sharing map.
        """

        from repro.spill.model import SpillKind
        from repro.ir.values import PhysicalRegister

        placeholder = PhysicalRegister("__cost__", -1)
        save = SpillLocation(placeholder, SpillKind.SAVE, entry_edge)
        restore = SpillLocation(placeholder, SpillKind.RESTORE, exit_edge)
        return self.location_cost(function, profile, save) + self.location_cost(
            function, profile, restore
        )


class ExecutionCountCostModel(CostModel):
    """Cost = execution count of the edge carrying the location."""

    name = "execution_count"

    def cache_identity(self) -> Optional[str]:
        return self._weighted_identity()

    def location_cost(
        self,
        function: Function,
        profile: EdgeProfile,
        location: SpillLocation,
        jump_sharing: Optional[Mapping[EdgeKey, int]] = None,
    ) -> float:
        return profile.edge_count(location.edge) * self.location_weight(location)


class JumpEdgeCostModel(CostModel):
    """Execution-count cost plus the cost of jump instructions in jump blocks."""

    name = "jump_edge"

    def cache_identity(self) -> Optional[str]:
        return self._weighted_identity()

    def location_cost(
        self,
        function: Function,
        profile: EdgeProfile,
        location: SpillLocation,
        jump_sharing: Optional[Mapping[EdgeKey, int]] = None,
    ) -> float:
        count = profile.edge_count(location.edge)
        cost = count * self.location_weight(location)
        if not requires_jump_block(function, location.edge):
            return cost
        sharing = 1
        if jump_sharing is not None:
            sharing = max(1, jump_sharing.get(location.edge, 1))
        return cost + count * self._jump_weight / sharing

    def set_cost(
        self,
        function: Function,
        profile: EdgeProfile,
        srset: SaveRestoreSet,
        jump_sharing: Optional[Mapping[EdgeKey, int]] = None,
    ) -> float:
        # Fetch the CFG snapshot once per set instead of once per location
        # inside ``requires_jump_block``.  Only safe for this exact class: a
        # subclass overriding ``location_cost`` must still be consulted per
        # location, so it takes the generic path.
        if type(self) is not JumpEdgeCostModel:
            return super().set_cost(function, profile, srset, jump_sharing)
        cfg = function.cfg()
        sharing = jump_sharing if srset.initial else None
        total = 0.0
        for location in srset.locations:
            count = profile.edge_count(location.edge)
            cost = count * self.location_weight(location)
            if requires_jump_block(function, location.edge, cfg=cfg):
                share = 1
                if sharing is not None:
                    share = max(1, sharing.get(location.edge, 1))
                cost += count * self._jump_weight / share
            total += cost
        return total


def make_cost_model(
    name: str, machine: Optional[MachineDescription] = None
) -> CostModel:
    """Factory used by the CLI and benchmark harnesses.

    ``machine`` supplies the save/restore/jump cost weights; omitted, every
    instruction costs one unit.
    """

    models = {
        ExecutionCountCostModel.name: ExecutionCountCostModel,
        JumpEdgeCostModel.name: JumpEdgeCostModel,
    }
    try:
        return models[name](machine)
    except KeyError as exc:
        raise ValueError(
            f"unknown cost model {name!r}; expected one of {sorted(models)}"
        ) from exc
