"""Persistent, content-addressed caching of compile results.

The pipeline is deterministic for a given (IR, profile, target, cost model,
pipeline options) tuple, so repeated evaluation runs — the normal ablation
workflow sweeps the same suite under many configurations sharing most
per-procedure work — can reuse compile results across processes:

* :mod:`repro.ir.fingerprint` defines *what* is addressed: canonical
  fingerprints of functions/profiles and the composite cache key;
* :mod:`repro.cache.store` defines *where* it lives: a versioned, sharded
  on-disk store with atomic writes, an in-memory LRU front, and hit/miss
  statistics.

Every evaluation entry point accepts ``cache=`` (a :class:`CompileCache` or
a directory path); the CLI exposes it as ``--cache-dir`` / ``--no-cache``
plus a ``cache`` subcommand (``stats`` / ``clear``).
"""

from repro.cache.store import (
    CACHE_VERSION,
    CacheSpec,
    CacheStats,
    CompileCache,
    resolve_cache,
)

__all__ = [
    "CACHE_VERSION",
    "CacheSpec",
    "CacheStats",
    "CompileCache",
    "resolve_cache",
]
