"""A versioned, content-addressed on-disk compile cache with an LRU front.

The pipeline is deterministic, so a compile result is fully determined by
its cache key (see :mod:`repro.ir.fingerprint`).  This store maps those keys
to pickled values:

* **On-disk layout** — ``<directory>/v<CACHE_VERSION>/<key[:2]>/<key>.pkl``.
  Sharding by the first two hex digits of the key keeps directories small
  (at most 256 shards) however many entries accumulate; the version
  directory means a format bump simply strands old entries instead of
  misreading them.
* **Atomic writes** — every entry is written to a temporary file in its
  shard directory and ``os.replace``-d into place, so a crashed or
  concurrent writer can never leave a torn entry behind; concurrent writers
  of the same key are idempotent (same key ⇒ same value).
* **Corruption policy** — unreadable pickles, payloads of the wrong shape,
  version or key mismatches are all *silently treated as misses* (counted
  in ``stats.corrupt`` and best-effort deleted).  A cache must never turn a
  bad disk into a compile failure.
* **In-memory LRU** — the hottest ``memory_entries`` values are kept
  deserialized in process, so repeated lookups inside one run skip the disk
  entirely.  Values are treated as immutable by convention: the same object
  may be handed to several callers.
* **Stats** — hits, misses, stores, evictions and corrupt entries are
  counted per :class:`CompileCache` instance (i.e. per process, not
  persisted).
* **Concurrency** — an internal lock makes one instance safe to share
  between threads (the compile server's event loop and its batch-dispatch
  thread use a single store), and every disk path tolerates files or
  directories vanishing mid-operation: a concurrent ``clear`` makes
  readers *miss*, never crash.

The store is value-agnostic: it never imports the pipeline layers and will
hold anything picklable.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, List, Optional, Union

#: Bump when the on-disk payload format changes; old ``v<N>`` directories
#: are ignored by newer stores and removed by :meth:`CompileCache.clear`.
CACHE_VERSION = 1

_MISSING = object()


@dataclass
class CacheStats:
    """Per-process counters of one :class:`CompileCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 with no lookups)."""

        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} hit_rate={self.hit_rate:.1%} "
            f"stores={self.stores} evictions={self.evictions} corrupt={self.corrupt}"
        )


class CompileCache:
    """Content-addressed key→value store: sharded disk tier + LRU memory tier."""

    def __init__(
        self, directory: Union[str, os.PathLike], memory_entries: int = 512
    ):
        self.directory = Path(directory)
        self.root = self.directory / f"v{CACHE_VERSION}"
        self.memory_entries = max(0, int(memory_entries))
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self.stats = CacheStats()
        # One instance may be shared between threads (the compile server's
        # event loop does admission-time lookups while its dispatch thread
        # reads and writes through compile_many): the LRU OrderedDict and
        # the stats counters are only ever touched under this lock.
        self._lock = threading.RLock()

    # -- key→path mapping ---------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # -- lookups ------------------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """The cached value for ``key``, or ``default`` on a miss.

        Any kind of disk trouble — missing file, unreadable pickle, version
        or key mismatch — is a miss, never an exception; in particular a
        concurrent :meth:`clear` racing this lookup yields a miss.
        """

        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                return self._memory[key]
        # The disk read happens *outside* the lock: holding it across a
        # pickle load would serialize every other thread's lookups behind
        # this one's I/O (the compile server's event loop must never wait
        # on its dispatch thread's disk reads).  Two threads racing the
        # same key both read the same immutable entry — harmless.
        value = self._read_disk(key)
        with self._lock:
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self.stats.hits += 1
        self._remember(key, value)
        return value

    def _read_disk(self, key: str) -> Any:
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return _MISSING
        except Exception:
            # Torn write survivor, truncated disk, unpicklable garbage, a
            # class that no longer exists ... all of it is just a miss.
            with self._lock:
                self.stats.corrupt += 1
            self._discard(path)
            return _MISSING
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_VERSION
            or payload.get("key") != key
            or "value" not in payload
        ):
            with self._lock:
                self.stats.corrupt += 1
            self._discard(path)
            return _MISSING
        return payload["value"]

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def _remember(self, key: str, value: Any) -> None:
        if self.memory_entries == 0:
            return
        with self._lock:
            self._memory[key] = value
            self._memory.move_to_end(key)
            while len(self._memory) > self.memory_entries:
                self._memory.popitem(last=False)
                self.stats.evictions += 1

    # -- stores -------------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (memory + atomically on disk).

        Disk write failures are swallowed: a read-only or full disk degrades
        the cache to memory-only instead of failing the compile.
        """

        self._remember(key, value)
        path = self._path(key)
        payload = pickle.dumps(
            {"schema": CACHE_VERSION, "key": key, "value": value},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-")
        except OSError:
            return
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        with self._lock:
            self.stats.stores += 1

    # -- maintenance --------------------------------------------------------------

    def _entry_files(self, all_versions: bool = False) -> Iterator[Path]:
        # Every glob is materialized under a try: a concurrent ``clear``
        # (or any other writer) may delete shard directories while this
        # iterates, and a maintenance query must degrade to "fewer
        # entries", never raise.
        roots: List[Path]
        try:
            if all_versions:
                if not self.directory.is_dir():
                    return
                roots = sorted(p for p in self.directory.glob("v*") if p.is_dir())
            else:
                roots = [self.root]
            for root in roots:
                if root.is_dir():
                    yield from sorted(root.glob("*/*.pkl"))
        except OSError:
            return

    def entry_count(self) -> int:
        """Number of entries on disk for the current cache version."""

        return sum(1 for _ in self._entry_files())

    def disk_bytes(self) -> int:
        """Total bytes of the current version's entries on disk."""

        total = 0
        for path in self._entry_files():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every entry (all versions, stale ones included).

        Returns the number of entry files removed; empty shard and version
        directories are pruned best-effort.  Safe to run while other
        processes or threads are reading the same directory: their
        lookups observe misses (never errors), and entries they write
        concurrently may simply survive the sweep.
        """

        removed = 0
        for path in self._entry_files(all_versions=True):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if self.directory.is_dir():
            for version_dir in self.directory.glob("v*"):
                for shard in sorted(version_dir.glob("*"), reverse=True):
                    try:
                        shard.rmdir()
                    except OSError:
                        pass
                try:
                    version_dir.rmdir()
                except OSError:
                    pass
        with self._lock:
            self._memory.clear()
        return removed


#: What every ``cache=`` parameter accepts: a store, a directory, or nothing.
CacheSpec = Union[CompileCache, str, os.PathLike, None]


def resolve_cache(cache: CacheSpec) -> Optional[CompileCache]:
    """Normalize a ``cache=`` argument: instance, directory path, or ``None``."""

    if cache is None or isinstance(cache, CompileCache):
        return cache
    return CompileCache(cache)
