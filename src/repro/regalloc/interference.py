"""Interference graphs over virtual registers.

Two virtual registers interfere when one is defined at a point where the
other is live (the classic Chaitin construction); move instructions get the
usual exemption so that copy-related registers may share a colour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.liveness import LivenessInfo, live_at_each_instruction
from repro.ir.function import Function
from repro.ir.instructions import Opcode
from repro.ir.values import Register, VirtualRegister


@dataclass
class InterferenceGraph:
    """An undirected graph over virtual registers."""

    nodes: Set[Register] = field(default_factory=set)
    _adjacency: Dict[Register, Set[Register]] = field(default_factory=dict)
    #: Pairs related by moves (candidates for coalescing / same-colour hints).
    move_pairs: Set[Tuple[Register, Register]] = field(default_factory=set)

    def add_node(self, register: Register) -> None:
        self.nodes.add(register)
        self._adjacency.setdefault(register, set())

    def add_edge(self, a: Register, b: Register) -> None:
        if a == b:
            return
        self.add_node(a)
        self.add_node(b)
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)

    def interferes(self, a: Register, b: Register) -> bool:
        return b in self._adjacency.get(a, set())

    def neighbours(self, register: Register) -> Set[Register]:
        return set(self._adjacency.get(register, set()))

    def degree(self, register: Register) -> int:
        return len(self._adjacency.get(register, set()))

    def num_edges(self) -> int:
        return sum(len(adj) for adj in self._adjacency.values()) // 2

    def move_partners(self, register: Register) -> Set[Register]:
        partners: Set[Register] = set()
        for a, b in self.move_pairs:
            if a == register:
                partners.add(b)
            elif b == register:
                partners.add(a)
        return partners


def build_interference_graph(
    function: Function, liveness: LivenessInfo
) -> InterferenceGraph:
    """Chaitin-style interference graph over the virtual registers of ``function``."""

    graph = InterferenceGraph()

    for param in function.params:
        if isinstance(param, VirtualRegister):
            graph.add_node(param)
    for inst in function.instructions():
        for reg in inst.registers():
            if isinstance(reg, VirtualRegister):
                graph.add_node(reg)

    for block in function.blocks:
        live_after = live_at_each_instruction(function, liveness, block.label)
        for index, inst in enumerate(block.instructions):
            written = [r for r in inst.registers_written() if isinstance(r, VirtualRegister)]
            if not written:
                continue
            live = {r for r in live_after[index] if isinstance(r, VirtualRegister)}
            move_source = None
            if inst.opcode is Opcode.MOV and inst.uses and isinstance(inst.uses[0], VirtualRegister):
                move_source = inst.uses[0]
            for dst in written:
                for other in live:
                    if other == dst:
                        continue
                    if move_source is not None and other == move_source:
                        # A move's source and destination do not interfere
                        # through the move itself.
                        graph.move_pairs.add((dst, move_source))
                        continue
                    graph.add_edge(dst, other)
                # Multiple results of one instruction interfere with each other.
                for sibling in written:
                    if sibling != dst:
                        graph.add_edge(dst, sibling)
    return graph
