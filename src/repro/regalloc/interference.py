"""Interference graphs over virtual registers.

Two virtual registers interfere when one is defined at a point where the
other is live (the classic Chaitin construction); move instructions get the
usual exemption so that copy-related registers may share a colour.

Construction runs on the packed-bitset liveness representation: per-register
adjacency is accumulated as integer bitmasks while walking the instructions
and only materialized into the public ``Set``-based
:class:`InterferenceGraph` once, at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from repro.analysis.bitset import live_masks_at_each_instruction
from repro.analysis.liveness import LivenessInfo, liveness_bits
from repro.ir.function import Function
from repro.ir.instructions import Opcode
from repro.ir.values import Register, VirtualRegister


#: Shared empty set handed out by :meth:`InterferenceGraph.adjacency` for
#: unknown registers (never mutated).
_EMPTY_ADJACENCY: Set[Register] = set()


@dataclass
class InterferenceGraph:
    """An undirected graph over virtual registers."""

    nodes: Set[Register] = field(default_factory=set)
    _adjacency: Dict[Register, Set[Register]] = field(default_factory=dict)
    #: Pairs related by moves (candidates for coalescing / same-colour hints).
    move_pairs: Set[Tuple[Register, Register]] = field(default_factory=set)

    def add_node(self, register: Register) -> None:
        self.nodes.add(register)
        self._adjacency.setdefault(register, set())

    def add_edge(self, a: Register, b: Register) -> None:
        if a == b:
            return
        self.add_node(a)
        self.add_node(b)
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)

    def add_neighbours(self, register: Register, neighbours: Set[Register]) -> None:
        """Bulk-insert pre-symmetrized adjacency for one register.

        The batch builder accumulates adjacency as bitmasks and materializes
        each register's full neighbour set once; the caller guarantees
        symmetry (every ``b in neighbours`` of ``a`` is later given ``a``)
        and ``register not in neighbours``.
        """

        self.add_node(register)
        self._adjacency[register] |= neighbours

    def interferes(self, a: Register, b: Register) -> bool:
        return b in self._adjacency.get(a, set())

    def neighbours(self, register: Register) -> Set[Register]:
        return set(self._adjacency.get(register, set()))

    def adjacency(self, register: Register) -> Set[Register]:
        """The internal neighbour set of ``register`` — treat as read-only.

        :meth:`neighbours` copies; hot loops that only iterate (the colouring
        simplify/select passes) use this accessor to skip the copy.
        """

        return self._adjacency.get(register, _EMPTY_ADJACENCY)

    def degree(self, register: Register) -> int:
        return len(self._adjacency.get(register, set()))

    def num_edges(self) -> int:
        return sum(len(adj) for adj in self._adjacency.values()) // 2

    def move_partners(self, register: Register) -> Set[Register]:
        partners: Set[Register] = set()
        for a, b in self.move_pairs:
            if a == register:
                partners.add(b)
            elif b == register:
                partners.add(a)
        return partners


def build_interference_graph(
    function: Function, liveness: LivenessInfo
) -> InterferenceGraph:
    """Chaitin-style interference graph over the virtual registers of ``function``."""

    bits = liveness_bits(function, liveness)
    index = bits.index
    vreg_mask = bits.virtual_register_mask()

    graph = InterferenceGraph()
    # The node set is the virtual registers the function mentions (parameters
    # and instruction operands) — enumerated from the block-level masks, and
    # explicitly restricted to this function because a forked per-target base
    # index carries registers from outside it.
    node_mask = bits.mentioned_mask(function) & vreg_mask
    for reg in index.iter_bits(node_mask):
        graph.add_node(reg)

    # Adjacency accumulates as bit -> neighbour mask; symmetrized and
    # materialized into sets once, below.
    adjacency: Dict[int, int] = {}

    for block in function.blocks:
        live_after = live_masks_at_each_instruction(function, bits, block.label)
        for position, inst in enumerate(block.instructions):
            written = [r for r in inst.registers_written() if isinstance(r, VirtualRegister)]
            if not written:
                continue
            live = live_after[position] & vreg_mask
            move_source = None
            if inst.opcode is Opcode.MOV and inst.uses and isinstance(inst.uses[0], VirtualRegister):
                move_source = inst.uses[0]
            written_bits = [index.add(reg) for reg in written]
            sibling_mask = 0
            for bit in written_bits:
                sibling_mask |= 1 << bit
            for dst, dst_bit in zip(written, written_bits):
                # Multiple results of one instruction interfere with each
                # other; the destination never interferes with itself.
                others = (live | sibling_mask) & ~(1 << dst_bit)
                if move_source is not None:
                    source_bit = 1 << index.add(move_source)
                    if others & source_bit and move_source != dst:
                        # A move's source and destination do not interfere
                        # through the move itself.
                        graph.move_pairs.add((dst, move_source))
                        others &= ~source_bit
                adjacency[dst_bit] = adjacency.get(dst_bit, 0) | others

    # Parameters are all defined at once by the calling convention on entry,
    # so each interferes with everything live into the entry block — in
    # particular with every other live-in parameter, which would otherwise
    # carry no interference at all (parameters have no defining instruction)
    # and could be assigned one shared register.
    params = [r for r in function.params if isinstance(r, VirtualRegister)]
    if params:
        entry_live = bits.live_in.get(function.entry.label, 0) & vreg_mask
        param_mask = 0
        for param in params:
            param_mask |= 1 << index.add(param)
        for param in params:
            bit = index.add(param)
            others = (entry_live | param_mask) & ~(1 << bit)
            adjacency[bit] = adjacency.get(bit, 0) | others

    # Symmetrize (edges were recorded from the defining side only), then
    # materialize the masks into the public set-based adjacency.
    for bit, mask in list(adjacency.items()):
        remaining = mask
        while remaining:
            low = remaining & -remaining
            other = low.bit_length() - 1
            adjacency[other] = adjacency.get(other, 0) | (1 << bit)
            remaining ^= low
    for bit, mask in adjacency.items():
        graph.add_neighbours(index.fact_at(bit), index.set_of(mask))
    return graph
