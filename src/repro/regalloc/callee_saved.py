"""Callee-saved occupancy: which blocks each callee-saved register is live in.

After the virtual-to-physical rewrite, a callee-saved register is *occupied*
in every block where it holds a program value — where it is defined, used, or
live across the block.  This occupancy map (the shaded blocks of the paper's
figures) is the input shared by all three placement techniques.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.analysis.liveness import compute_liveness
from repro.ir.function import Function
from repro.ir.values import PhysicalRegister
from repro.spill.model import CalleeSavedUsage
from repro.target.machine import MachineDescription


def compute_callee_saved_usage(
    function: Function, machine: MachineDescription
) -> CalleeSavedUsage:
    """Blocks occupied by each callee-saved register of ``machine``."""

    callee_saved: FrozenSet[PhysicalRegister] = machine.callee_saved_set
    liveness = compute_liveness(function)
    occupancy: Dict[PhysicalRegister, Set[str]] = {}

    for block in function.blocks:
        label = block.label
        present: Set[PhysicalRegister] = set()
        for register in liveness.live_in[label] | liveness.live_out[label]:
            if register in callee_saved:
                present.add(register)  # live through or across the block
        for inst in block.instructions:
            for register in inst.registers():
                if register in callee_saved:
                    present.add(register)
        for register in present:
            occupancy.setdefault(register, set()).add(label)

    return CalleeSavedUsage.from_blocks(occupancy)
