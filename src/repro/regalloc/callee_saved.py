"""Callee-saved occupancy: which blocks each callee-saved register is live in.

After the virtual-to-physical rewrite, a callee-saved register is *occupied*
in every block where it holds a program value — where it is defined, used, or
live across the block.  This occupancy map (the shaded blocks of the paper's
figures) is the input shared by all three placement techniques.

The computation runs on the packed-bitset liveness solution: per block, the
occupied callee-saved registers are ``(live_in | live_out | uses | defs) &
callee_mask``.  The block-level ``uses``/``defs`` masks cover exactly the
registers mentioned by the block's instructions — every written register is
in ``defs``, and every read register is either upward-exposed (in ``uses``)
or previously defined in the block (in ``defs``) — so the mask expression
matches the historical "live through or mentioned" set computation
bit for bit (:func:`compute_callee_saved_usage_reference`, kept for the
differential property tests).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.analysis.liveness import compute_liveness
from repro.ir.function import Function
from repro.ir.values import PhysicalRegister
from repro.spill.model import CalleeSavedUsage
from repro.target.machine import MachineDescription


def compute_callee_saved_usage(
    function: Function, machine: MachineDescription
) -> CalleeSavedUsage:
    """Blocks occupied by each callee-saved register of ``machine``."""

    liveness = compute_liveness(function, machine=machine)
    bits = liveness.bits
    index = bits.index
    callee_mask = 0
    for register in machine.callee_saved:
        callee_mask |= 1 << index.add(register)

    occupancy: Dict[PhysicalRegister, Set[str]] = {}
    live_in = bits.live_in
    live_out = bits.live_out
    uses = bits.uses
    defs = bits.defs
    for label in function.block_labels:
        present = (live_in[label] | live_out[label] | uses[label] | defs[label]) & callee_mask
        if present:
            for register in index.iter_bits(present):
                occupancy.setdefault(register, set()).add(label)

    return CalleeSavedUsage.from_blocks(occupancy)


def compute_callee_saved_usage_reference(
    function: Function, machine: MachineDescription
) -> CalleeSavedUsage:
    """The original set-based occupancy computation (differential reference)."""

    callee_saved: FrozenSet[PhysicalRegister] = machine.callee_saved_set
    liveness = compute_liveness(function)
    occupancy: Dict[PhysicalRegister, Set[str]] = {}

    for block in function.blocks:
        label = block.label
        present: Set[PhysicalRegister] = set()
        for register in liveness.live_in[label] | liveness.live_out[label]:
            if register in callee_saved:
                present.add(register)  # live through or across the block
        for inst in block.instructions:
            for register in inst.registers():
                if register in callee_saved:
                    present.add(register)
        for register in present:
            occupancy.setdefault(register, set()).add(label)

    return CalleeSavedUsage.from_blocks(occupancy)
