"""Spill-code insertion and the final virtual-to-physical rewrite."""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Set

from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.ir.values import PhysicalRegister, Register, StackSlot, VirtualRegister


def isolate_parameters(function: Function) -> Dict[Register, Register]:
    """Copy incoming parameters into fresh virtual registers at the entry.

    Arguments arrive in caller-saved registers; a parameter whose live range
    crosses a call therefore cannot simply *be* a callee-saved register — the
    value has to be moved into one after the prologue.  Splitting every
    parameter at the entry block gives the colouring that freedom (the move
    coalesces away when the parameter does not need it).

    Returns the mapping from the original parameter register to its clone.
    """

    from repro.ir.instructions import move

    mapping: Dict[Register, Register] = {}
    for index, param in enumerate(function.params):
        if not isinstance(param, VirtualRegister):
            continue
        clone = VirtualRegister(f"{param.name}.arg")
        mapping[param] = clone
    if not mapping:
        return mapping

    for block in function.blocks:
        block.instructions = [inst.replace_registers(mapping) for inst in block.instructions]
    entry = function.entry
    for offset, (param, clone) in enumerate(mapping.items()):
        entry.instructions.insert(offset, move(clone, param))
    return mapping


def demote_overflow_parameters(function: Function, machine) -> Dict[Register, StackSlot]:
    """Pass parameters beyond the machine's register capacity on the stack.

    Every virtual parameter is live simultaneously on entry, so each needs
    its own caller-saved register — a function with more parameters than the
    machine has caller-saved registers is unallocatable in registers alone.
    Real conventions pass the overflow on the stack: this rewrite gives each
    parameter past the capacity a dedicated ``arg`` stack slot, turns its
    entry copy (inserted by :func:`isolate_parameters`) into a load from
    that slot, and records the slot in ``function.params`` so the
    interpreter binds the argument to stack memory.

    Must run after :func:`isolate_parameters`.  Returns the mapping from
    demoted parameter registers to their slots.
    """

    capacity = len(machine.caller_saved)
    register_params = [
        p for p in function.params if isinstance(p, VirtualRegister)
    ]
    overflow = set(register_params[capacity:])
    if not overflow:
        return {}

    from repro.ir.instructions import Opcode, load

    slots: Dict[Register, StackSlot] = {}
    entry = function.entry
    rewritten: List = []
    for inst in entry.instructions:
        if (
            inst.opcode is Opcode.MOV
            and inst.uses
            and inst.uses[0] in overflow
        ):
            param = inst.uses[0]
            slot = function.allocate_stack_slot("arg")
            slots[param] = slot
            rewritten.append(load(inst.defs[0], slot, purpose="arg"))
        else:
            rewritten.append(inst)
    entry.instructions = rewritten
    function.params = tuple(
        slots.get(param, param) for param in function.params
    )
    return slots


#: Suffix pattern of the names :func:`insert_spill_code` gives its
#: reload/store temporaries: ``<base>.s<counter>`` (``v3.s7``, and
#: ``v3.s7.s12`` after a re-split).  A temporary always *ends* with
#: ``.s<digits>``; matching anchored at the end keeps other dotted names
#: (``v0.arg`` parameter clones, ``retval.<function>.<n>`` registers from
#: ``ensure_single_exit``) out of the classification.
_SPILL_TEMP_SUFFIX = re.compile(r"\.s\d+$")


def is_spill_temp(register: Register) -> bool:
    """Is ``register`` a temporary created by :func:`insert_spill_code`?

    Such ranges span a single instruction and cannot be usefully spilled
    again — re-spilling one just recreates an identical temporary, which is
    the classic Chaitin-allocator livelock.  The colouring gives them
    infinite spill cost so that pressure is always relieved by splitting an
    original live-through range instead.
    """

    return (
        isinstance(register, VirtualRegister)
        and _SPILL_TEMP_SUFFIX.search(register.name) is not None
    )


def insert_spill_code(function: Function, spilled: Iterable[Register]) -> Dict[Register, StackSlot]:
    """Spill the given virtual registers to stack slots.

    Every use is preceded by a reload into a fresh short-lived virtual
    register and every definition is followed by a store, the classic
    "spill everywhere" strategy of Chaitin-style allocators.  The inserted
    loads/stores carry the ``spill`` purpose so the overhead accounting can
    attribute them to the register allocator.
    """

    spilled = [r for r in spilled]
    if not spilled:
        return {}
    slots: Dict[Register, StackSlot] = {
        register: function.allocate_stack_slot("spill") for register in spilled
    }
    spill_set: Set[Register] = set(spilled)
    counter = 0

    for block in function.blocks:
        new_instructions = []
        for inst in block.instructions:
            reads = [r for r in inst.registers_read() if r in spill_set]
            writes = [r for r in inst.registers_written() if r in spill_set]
            mapping: Dict[Register, Register] = {}
            for register in dict.fromkeys(reads + writes):
                counter += 1
                mapping[register] = VirtualRegister(f"{register.name}.s{counter}")
            for register in dict.fromkeys(reads):
                new_instructions.append(
                    ins.load(mapping[register], slots[register], purpose="spill")
                )
            new_instructions.append(inst.replace_registers(mapping) if mapping else inst)
            for register in dict.fromkeys(writes):
                new_instructions.append(
                    ins.store(mapping[register], slots[register], purpose="spill")
                )
        block.instructions = new_instructions
    return slots


def apply_assignment(function: Function, assignment: Dict[Register, PhysicalRegister]) -> None:
    """Replace every assigned virtual register with its physical register."""

    for block in function.blocks:
        block.instructions = [
            inst.replace_registers(assignment) if any(
                isinstance(r, VirtualRegister) and r in assignment for r in inst.registers()
            ) else inst
            for inst in block.instructions
        ]


def unassigned_virtual_registers(function: Function) -> Set[VirtualRegister]:
    """Virtual registers still present after the rewrite (should be empty)."""

    return {
        r
        for inst in function.instructions()
        for r in inst.registers()
        if isinstance(r, VirtualRegister)
    }
