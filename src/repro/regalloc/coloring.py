"""Graph colouring in the Chaitin/Briggs style.

The colouring works on the interference graph with *register classes*: a live
range that crosses a call may only receive a callee-saved register (a
caller-saved register would be clobbered by the callee), every other range
prefers caller-saved registers so that callee-saved registers — and their
save/restore obligation — are only used when they pay for themselves.  This
mirrors the behaviour the paper relies on: callee-saved registers are
allocated to variables that span call sites.

The algorithm is the classic simplify/select with Briggs' optimistic
colouring: nodes are pushed on a stack in order of increasing "difficulty"
(low degree first, then cheapest spill cost), popped in reverse order and
coloured if possible.  Nodes that cannot be coloured become spill candidates
and are returned to the driver, which inserts spill code and repeats.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ir.values import PhysicalRegister, Register
from repro.regalloc.interference import InterferenceGraph
from repro.regalloc.live_ranges import LiveRangeInfo
from repro.regalloc.rewriter import is_spill_temp
from repro.target.machine import MachineDescription


@dataclass
class ColoringResult:
    """Outcome of one colouring attempt."""

    assignment: Dict[Register, PhysicalRegister] = field(default_factory=dict)
    spilled: List[Register] = field(default_factory=list)

    @property
    def is_complete(self) -> bool:
        return not self.spilled

    def callee_saved_assigned(self, machine: MachineDescription) -> Set[PhysicalRegister]:
        return {
            phys for phys in self.assignment.values() if machine.is_callee_saved(phys)
        }


def _allowed_registers(
    register: Register,
    ranges: LiveRangeInfo,
    machine: MachineDescription,
) -> Tuple[PhysicalRegister, ...]:
    """The physical registers a virtual register may be assigned, in preference order."""

    live_range = ranges.ranges.get(register)
    crosses_call = live_range.crosses_call if live_range is not None else False
    used_by_return = live_range.used_by_return if live_range is not None else False
    is_parameter = live_range.is_parameter if live_range is not None else False
    if is_parameter and not crosses_call:
        # Incoming arguments live in caller-saved registers.
        return machine.caller_saved
    if is_parameter and crosses_call:
        # Should not happen once parameters are isolated at the entry; spill
        # defensively rather than hand an argument a callee-saved register.
        return ()
    if crosses_call and used_by_return:
        # The value must survive a call (needs a callee-saved register) *and*
        # be returned (needs a caller-saved register): no single register
        # satisfies both, so the range is always spilled and its short reload
        # before the return gets a caller-saved register.
        return ()
    if crosses_call:
        # A caller-saved register would be clobbered by the call; only
        # callee-saved registers can hold the value across it.
        return machine.callee_saved
    if used_by_return:
        # Returned values travel in caller-saved registers; a callee-saved
        # register would have to be restored before the return, clobbering
        # the value being returned.
        return machine.caller_saved
    # Prefer caller-saved registers (no save/restore obligation); fall back to
    # callee-saved registers under pressure.  ``allocation_order`` is the
    # precomputed caller-first tuple, so no per-node concatenation happens.
    return machine.allocation_order


def color_graph(
    graph: InterferenceGraph,
    ranges: LiveRangeInfo,
    machine: MachineDescription,
) -> ColoringResult:
    """Colour the interference graph; uncolourable nodes become spill candidates.

    Selection order is identical to :func:`color_graph_reference` — the
    reference picks the first satisfying node of a ``(degree, name)``-sorted
    scan, which equals the minimum over satisfying nodes by that key.  The
    per-iteration sorts are replaced by a lazily-invalidated heap of
    ``(degree, name)`` entries: stale entries (node already removed, or its
    degree has since changed) are discarded on pop, and entries whose node
    does not satisfy its class bound are set aside and re-pushed.
    """

    result = ColoringResult()
    nodes = sorted(graph.nodes, key=lambda r: r.name)
    if not nodes:
        return result

    allowed: Dict[Register, Tuple[PhysicalRegister, ...]] = {
        node: _allowed_registers(node, ranges, machine) for node in nodes
    }
    degrees: Dict[Register, int] = {node: graph.degree(node) for node in nodes}
    stack: List[Register] = []

    def spill_metric(node: Register) -> float:
        # Spilling one of the allocator's own reload/store temporaries makes
        # no progress (its replacement is an identical one-instruction range),
        # so they are never optimistic spill candidates; pressure is relieved
        # by splitting an original live-through range instead.
        if is_spill_temp(node):
            return float("inf")
        live_range = ranges.ranges.get(node)
        cost = live_range.spill_cost if live_range is not None else 0.0
        degree = max(degrees[node], 1)
        return cost / degree

    # Simplify: repeatedly remove the (degree, name)-minimal node with degree
    # < k (its register-class size); when none exists, remove the cheapest
    # node optimistically (ties broken by name).
    work = set(nodes)
    heap: List[Tuple[int, str, Register]] = [
        (degrees[node], node.name, node) for node in nodes
    ]
    heapq.heapify(heap)
    while work:
        candidate = None
        over_bound: List[Tuple[int, str, Register]] = []
        while heap:
            entry = heapq.heappop(heap)
            degree, _, node = entry
            if node not in work or degrees[node] != degree:
                continue
            if degree < len(allowed[node]):
                candidate = node
                break
            over_bound.append(entry)
        for entry in over_bound:
            heapq.heappush(heap, entry)
        if candidate is None:
            best_key = None
            for node in work:
                key = (spill_metric(node), node.name)
                if best_key is None or key < best_key:
                    best_key = key
                    candidate = node
        work.remove(candidate)
        stack.append(candidate)
        for neighbour in graph.adjacency(candidate):
            if neighbour in work:
                degree = degrees[neighbour] - 1
                degrees[neighbour] = degree
                heapq.heappush(heap, (degree, neighbour.name, neighbour))

    # Select: pop nodes and colour them (Briggs' optimistic colouring).
    assignment = result.assignment
    while stack:
        node = stack.pop()
        taken = set()
        for n in graph.adjacency(node):
            colour = assignment.get(n)
            if colour is not None:
                taken.add(colour)
        chosen: Optional[PhysicalRegister] = None
        # Move-related hint: try to reuse a partner's colour first.
        for partner in graph.move_partners(node):
            partner_colour = assignment.get(partner)
            if (
                partner_colour is not None
                and partner_colour not in taken
                and partner_colour in allowed[node]
            ):
                chosen = partner_colour
                break
        if chosen is None:
            for candidate in allowed[node]:
                if candidate not in taken:
                    chosen = candidate
                    break
        if chosen is None:
            result.spilled.append(node)
        else:
            assignment[node] = chosen

    return result


def color_graph_reference(
    graph: InterferenceGraph,
    ranges: LiveRangeInfo,
    machine: MachineDescription,
) -> ColoringResult:
    """The original sort-based colouring, kept as the differential reference.

    The property tests in ``tests/regalloc`` assert that :func:`color_graph`
    produces an identical assignment and spill list on generated scenarios.
    """

    result = ColoringResult()
    nodes = sorted(graph.nodes, key=lambda r: r.name)
    if not nodes:
        return result

    allowed: Dict[Register, Tuple[PhysicalRegister, ...]] = {
        node: _allowed_registers(node, ranges, machine) for node in nodes
    }
    degrees: Dict[Register, int] = {node: graph.degree(node) for node in nodes}
    removed: Set[Register] = set()
    stack: List[Register] = []

    def spill_metric(node: Register) -> float:
        if is_spill_temp(node):
            return float("inf")
        live_range = ranges.ranges.get(node)
        cost = live_range.spill_cost if live_range is not None else 0.0
        degree = max(degrees[node], 1)
        return cost / degree

    work = set(nodes)
    while work:
        candidate = None
        for node in sorted(work, key=lambda r: (degrees[r], r.name)):
            if degrees[node] < len(allowed[node]):
                candidate = node
                break
        if candidate is None:
            candidate = min(sorted(work, key=lambda r: r.name), key=spill_metric)
        work.remove(candidate)
        removed.add(candidate)
        stack.append(candidate)
        for neighbour in graph.neighbours(candidate):
            if neighbour not in removed:
                degrees[neighbour] -= 1

    while stack:
        node = stack.pop()
        taken = {
            result.assignment[n]
            for n in graph.neighbours(node)
            if n in result.assignment
        }
        chosen: Optional[PhysicalRegister] = None
        for partner in graph.move_partners(node):
            partner_colour = result.assignment.get(partner)
            if (
                partner_colour is not None
                and partner_colour not in taken
                and partner_colour in allowed[node]
            ):
                chosen = partner_colour
                break
        if chosen is None:
            for candidate in allowed[node]:
                if candidate not in taken:
                    chosen = candidate
                    break
        if chosen is None:
            result.spilled.append(node)
        else:
            result.assignment[node] = chosen

    return result
