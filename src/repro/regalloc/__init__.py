"""A Chaitin/Briggs-style graph-coloring register allocator.

The paper replaces GCC's register allocator with a Chaitin/Briggs
graph-coloring allocator so that all three spill-placement techniques operate
on identical register allocations.  This package plays the same role for the
toy IR:

* :mod:`repro.regalloc.live_ranges` — per-virtual-register live ranges,
  call-crossing information and spill costs;
* :mod:`repro.regalloc.interference` — the interference graph;
* :mod:`repro.regalloc.coloring` — simplify/select colouring with optimistic
  colouring and spill-candidate selection;
* :mod:`repro.regalloc.rewriter` — spill-code insertion and the final
  virtual-to-physical rewrite;
* :mod:`repro.regalloc.callee_saved` — the callee-saved occupancy map
  consumed by the spill-placement pass;
* :mod:`repro.regalloc.allocator` — the driver tying everything together.
"""

from repro.regalloc.allocator import AllocationResult, allocate_registers
from repro.regalloc.callee_saved import compute_callee_saved_usage
from repro.regalloc.interference import InterferenceGraph, build_interference_graph
from repro.regalloc.live_ranges import LiveRangeInfo, compute_live_ranges
from repro.regalloc.coloring import ColoringResult, color_graph

__all__ = [
    "AllocationResult",
    "ColoringResult",
    "InterferenceGraph",
    "LiveRangeInfo",
    "allocate_registers",
    "build_interference_graph",
    "color_graph",
    "compute_callee_saved_usage",
    "compute_live_ranges",
]
