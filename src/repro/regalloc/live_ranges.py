"""Live ranges of virtual registers.

A live range aggregates everything the allocator needs to know about one
virtual register: where it is live, whether it is live across a call (in
which case a caller-saved register would be clobbered, so the range needs a
callee-saved register or a stack slot), how often it is referenced, and its
spill cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.liveness import LivenessInfo, compute_liveness, live_at_each_instruction
from repro.analysis.loops import compute_loop_forest
from repro.ir.function import Function
from repro.ir.values import Register, VirtualRegister
from repro.profiling.profile_data import EdgeProfile


@dataclass
class LiveRange:
    """Aggregate information about one virtual register."""

    register: Register
    blocks: Set[str] = field(default_factory=set)
    definitions: int = 0
    uses: int = 0
    crosses_call: bool = False
    #: The register is an incoming parameter; arguments arrive in caller-saved
    #: registers, so such ranges never get a callee-saved register directly.
    is_parameter: bool = False
    #: The value is returned by a ``ret`` instruction; the calling convention
    #: returns values in caller-saved registers, so such ranges must not be
    #: given a callee-saved register (its restore would clobber the result).
    used_by_return: bool = False
    spill_cost: float = 0.0

    @property
    def references(self) -> int:
        return self.definitions + self.uses

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LiveRange {self.register} blocks={len(self.blocks)} refs={self.references} "
            f"crosses_call={self.crosses_call} cost={self.spill_cost:.1f}>"
        )


@dataclass
class LiveRangeInfo:
    """Live ranges for every virtual register plus the liveness solution."""

    ranges: Dict[Register, LiveRange]
    liveness: LivenessInfo

    def range_of(self, register: Register) -> LiveRange:
        return self.ranges[register]

    def registers(self) -> List[Register]:
        return sorted(self.ranges.keys(), key=lambda r: r.name)

    def call_crossing_registers(self) -> List[Register]:
        return [r for r in self.registers() if self.ranges[r].crosses_call]


def _block_weight(
    function: Function,
    label: str,
    profile: Optional[EdgeProfile],
    loop_depth: Dict[str, int],
) -> float:
    """Spill-cost weight of one block: profile count, or 10^loop-depth."""

    if profile is not None:
        return max(profile.block_count(function, label), 0.0)
    return float(10 ** loop_depth.get(label, 0))


def compute_live_ranges(
    function: Function, profile: Optional[EdgeProfile] = None
) -> LiveRangeInfo:
    """Build live ranges for all virtual registers of ``function``."""

    liveness = compute_liveness(function)
    loops = compute_loop_forest(function)
    loop_depth = {label: loops.loop_depth(label) for label in function.block_labels}

    ranges: Dict[Register, LiveRange] = {}

    def range_for(register: Register) -> LiveRange:
        return ranges.setdefault(register, LiveRange(register=register))

    for param in function.params:
        if isinstance(param, VirtualRegister):
            live_range = range_for(param)
            live_range.definitions += 1
            live_range.is_parameter = True
            live_range.blocks.add(function.entry.label)

    for block in function.blocks:
        label = block.label
        weight = _block_weight(function, label, profile, loop_depth)
        live_after = live_at_each_instruction(function, liveness, label)

        # Track block membership: anything live-in, live-out, defined or used.
        present: Set[Register] = set()
        present |= liveness.live_in[label] | liveness.live_out[label]
        for index, inst in enumerate(block.instructions):
            for reg in inst.registers_written():
                if isinstance(reg, VirtualRegister):
                    live_range = range_for(reg)
                    live_range.definitions += 1
                    live_range.spill_cost += weight
                    present.add(reg)
            for reg in inst.registers_read():
                if isinstance(reg, VirtualRegister):
                    live_range = range_for(reg)
                    live_range.uses += 1
                    live_range.spill_cost += weight
                    present.add(reg)
            if inst.is_call():
                for reg in live_after[index]:
                    if isinstance(reg, VirtualRegister) and reg not in inst.registers_written():
                        range_for(reg).crosses_call = True
            if inst.is_return():
                for reg in inst.registers_read():
                    if isinstance(reg, VirtualRegister):
                        range_for(reg).used_by_return = True

        for reg in present:
            if isinstance(reg, VirtualRegister):
                range_for(reg).blocks.add(label)

    # Registers that are live through a block (not referenced there) still
    # occupy it; add those blocks from the liveness solution.
    for label in function.block_labels:
        for reg in liveness.live_in[label] | liveness.live_out[label]:
            if isinstance(reg, VirtualRegister):
                range_for(reg).blocks.add(label)

    return LiveRangeInfo(ranges=ranges, liveness=liveness)
