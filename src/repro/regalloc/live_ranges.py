"""Live ranges of virtual registers.

A live range aggregates everything the allocator needs to know about one
virtual register: where it is live, whether it is live across a call (in
which case a caller-saved register would be clobbered, so the range needs a
callee-saved register or a stack slot), how often it is referenced, and its
spill cost.

Construction walks every instruction exactly once and keeps the per-point
liveness as integer bitmasks (:mod:`repro.analysis.bitset`) rather than
per-instruction ``set`` objects — registers are only materialized at the
block granularity where they land in :attr:`LiveRange.blocks`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.bitset import live_masks_at_each_instruction
from repro.analysis.liveness import LivenessInfo, compute_liveness
from repro.analysis.loops import compute_loop_forest
from repro.ir.function import Function
from repro.ir.values import Register, VirtualRegister
from repro.profiling.profile_data import EdgeProfile


@dataclass
class LiveRange:
    """Aggregate information about one virtual register."""

    register: Register
    blocks: Set[str] = field(default_factory=set)
    definitions: int = 0
    uses: int = 0
    crosses_call: bool = False
    #: The register is an incoming parameter; arguments arrive in caller-saved
    #: registers, so such ranges never get a callee-saved register directly.
    is_parameter: bool = False
    #: The value is returned by a ``ret`` instruction; the calling convention
    #: returns values in caller-saved registers, so such ranges must not be
    #: given a callee-saved register (its restore would clobber the result).
    used_by_return: bool = False
    spill_cost: float = 0.0

    @property
    def references(self) -> int:
        return self.definitions + self.uses

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LiveRange {self.register} blocks={len(self.blocks)} refs={self.references} "
            f"crosses_call={self.crosses_call} cost={self.spill_cost:.1f}>"
        )


@dataclass
class LiveRangeInfo:
    """Live ranges for every virtual register plus the liveness solution."""

    ranges: Dict[Register, LiveRange]
    liveness: LivenessInfo

    def range_of(self, register: Register) -> LiveRange:
        return self.ranges[register]

    def registers(self) -> List[Register]:
        return sorted(self.ranges.keys(), key=lambda r: r.name)

    def call_crossing_registers(self) -> List[Register]:
        return [r for r in self.registers() if self.ranges[r].crosses_call]


def _block_weights(
    function: Function,
    profile: Optional[EdgeProfile],
    loop_depth: Dict[str, int],
) -> Dict[str, float]:
    """Spill-cost weight of every block: profile count, or 10^loop-depth."""

    if profile is not None:
        return {
            label: max(count, 0.0)
            for label, count in profile.block_counts(function).items()
        }
    return {
        label: float(10 ** loop_depth.get(label, 0)) for label in function.block_labels
    }


def compute_live_ranges(
    function: Function,
    profile: Optional[EdgeProfile] = None,
    machine=None,
) -> LiveRangeInfo:
    """Build live ranges for all virtual registers of ``function``.

    ``machine`` optionally selects the persistent per-target register index
    for the liveness solve (see :func:`repro.analysis.liveness.compute_liveness`).
    """

    liveness = compute_liveness(function, machine=machine)
    bits = liveness.bits
    index = bits.index
    vreg_mask = bits.virtual_register_mask()
    loops = compute_loop_forest(function)
    loop_depth = {label: loops.loop_depth(label) for label in function.block_labels}
    weights = _block_weights(function, profile, loop_depth)

    ranges: Dict[Register, LiveRange] = {}

    def range_for(register: Register) -> LiveRange:
        return ranges.setdefault(register, LiveRange(register=register))

    for param in function.params:
        if isinstance(param, VirtualRegister):
            live_range = range_for(param)
            live_range.definitions += 1
            live_range.is_parameter = True
            live_range.blocks.add(function.entry.label)

    for block in function.blocks:
        label = block.label
        weight = weights[label]
        live_after = live_masks_at_each_instruction(function, bits, label)
        inst_masks = bits.instruction_masks(function, label)

        # Track block membership: anything live-in, live-out, defined or used.
        present = (bits.live_in[label] | bits.live_out[label]) & vreg_mask
        for position, inst in enumerate(block.instructions):
            written_mask, read_mask = inst_masks[position]
            # Reference counting walks the operand tuples (not the masks):
            # an instruction reading the same register twice counts two uses,
            # exactly as before.
            if written_mask & vreg_mask:
                for reg in inst.registers_written():
                    if isinstance(reg, VirtualRegister):
                        live_range = range_for(reg)
                        live_range.definitions += 1
                        live_range.spill_cost += weight
            if read_mask & vreg_mask:
                for reg in inst.registers_read():
                    if isinstance(reg, VirtualRegister):
                        live_range = range_for(reg)
                        live_range.uses += 1
                        live_range.spill_cost += weight
            present |= (written_mask | read_mask) & vreg_mask
            if inst.is_call():
                crossing = live_after[position] & vreg_mask & ~written_mask
                for reg in index.iter_bits(crossing):
                    range_for(reg).crosses_call = True
            if inst.is_return():
                for reg in inst.registers_read():
                    if isinstance(reg, VirtualRegister):
                        range_for(reg).used_by_return = True

        for reg in index.iter_bits(present):
            range_for(reg).blocks.add(label)

    return LiveRangeInfo(ranges=ranges, liveness=liveness)
