"""The register-allocation driver.

``allocate_registers`` runs the classic Chaitin/Briggs loop:

1. compute live ranges and the interference graph,
2. colour the graph (caller-saved preferred, callee-saved for call-crossing
   ranges),
3. if some ranges could not be coloured, insert spill code for them and
   repeat.

The result bundles the rewritten function (virtual registers replaced by
physical ones, spill loads/stores inserted) together with the callee-saved
occupancy map that the spill-placement techniques consume.  The register
allocation — and therefore the allocator-inserted spill code — is identical
for every placement technique, exactly as in the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.ir.function import Function
from repro.ir.values import PhysicalRegister, Register
from repro.profiling.profile_data import EdgeProfile
from repro.regalloc.callee_saved import compute_callee_saved_usage
from repro.regalloc.coloring import ColoringResult, color_graph
from repro.regalloc.interference import build_interference_graph
from repro.regalloc.live_ranges import compute_live_ranges
from repro.regalloc.rewriter import (
    apply_assignment,
    demote_overflow_parameters,
    insert_spill_code,
    isolate_parameters,
    unassigned_virtual_registers,
)
from repro.spill.model import CalleeSavedUsage
from repro.target.machine import MachineDescription


class RegisterAllocationError(RuntimeError):
    """Raised when the allocator fails to converge."""


@dataclass
class AllocationResult:
    """Everything produced by one run of the register allocator."""

    function: Function
    machine: MachineDescription
    assignment: Dict[Register, PhysicalRegister] = field(default_factory=dict)
    usage: CalleeSavedUsage = field(default_factory=CalleeSavedUsage)
    spilled_registers: List[Register] = field(default_factory=list)
    rounds: int = 1

    @property
    def num_spilled(self) -> int:
        return len(self.spilled_registers)

    def callee_saved_registers_used(self) -> List[PhysicalRegister]:
        return self.usage.used_registers()

    def describe(self) -> str:
        return (
            f"allocation of {self.function.name!r}: {len(self.assignment)} ranges coloured, "
            f"{self.num_spilled} spilled, {len(self.callee_saved_registers_used())} "
            f"callee-saved registers used, {self.rounds} round(s)"
        )


def allocate_registers(
    function: Function,
    machine: MachineDescription,
    profile: Optional[EdgeProfile] = None,
    max_rounds: int = 12,
    in_place: bool = False,
) -> AllocationResult:
    """Allocate physical registers for every virtual register of ``function``.

    Parameters
    ----------
    profile:
        Optional edge profile; when present, spill costs are profile weighted
        (otherwise loop depth is used).
    max_rounds:
        Upper bound on build/colour/spill iterations.
    in_place:
        Rewrite ``function`` itself instead of a clone.
    """

    work = function if in_place else function.clone()
    isolate_parameters(work)
    demote_overflow_parameters(work, machine)
    total_assignment: Dict[Register, PhysicalRegister] = {}
    all_spilled: List[Register] = []

    rounds = 0
    while True:
        rounds += 1
        if rounds > max_rounds:
            raise RegisterAllocationError(
                f"register allocation of {function.name!r} did not converge after "
                f"{max_rounds} rounds"
            )
        ranges = compute_live_ranges(work, profile, machine=machine)
        graph = build_interference_graph(work, ranges.liveness)
        coloring = color_graph(graph, ranges, machine)
        if coloring.is_complete:
            total_assignment = coloring.assignment
            break
        # Spill the uncolourable ranges and try again; their reloads create
        # tiny live ranges which are always colourable eventually.
        already = set(all_spilled)
        fresh = [r for r in coloring.spilled if r not in already]
        if not fresh:
            raise RegisterAllocationError(
                f"register allocation of {function.name!r} is stuck re-spilling "
                f"{sorted(r.name for r in coloring.spilled)}"
            )
        insert_spill_code(work, fresh)
        all_spilled.extend(fresh)

    apply_assignment(work, total_assignment)
    # Parameters live in their assigned physical registers from the entry on;
    # remap the signature so callers (and the interpreter) see the real
    # location of each argument.
    work.params = tuple(total_assignment.get(param, param) for param in work.params)
    leftovers = unassigned_virtual_registers(work)
    if leftovers:
        raise RegisterAllocationError(
            f"virtual registers left after allocation of {function.name!r}: "
            + ", ".join(sorted(r.name for r in leftovers))
        )
    usage = compute_callee_saved_usage(work, machine)
    return AllocationResult(
        function=work,
        machine=machine,
        assignment=total_assignment,
        usage=usage,
        spilled_registers=all_spilled,
        rounds=rounds,
    )
