"""The machine-description core: everything target-dependent in one object.

A :class:`MachineDescription` is a frozen value object describing the parts
of a machine that the spill-code reproduction cares about:

* the register file, partitioned into caller-saved and callee-saved
  registers (the partition drives the register allocator's class
  preferences and defines which registers ever need save/restore code);
* the dynamic cost weights of the instructions the techniques insert —
  callee-saved saves (stores), restores (loads), and the jump/branch
  instructions needed to materialize spill code on critical edges;
* the spill-slot size used for stack-frame accounting.

Because the allocator's colouring loop and the occupancy computation test
register-class membership once per register per block, the description
precomputes frozen lookup sets (`caller_saved_set`, `callee_saved_set`) and
the combined preference order (`allocation_order`) at construction time, so
every hot-loop membership test is a single O(1) set probe instead of a tuple
scan or a per-call ``set(...)`` copy.

Concrete machines live in :mod:`repro.target.parisc` (the paper's
PA-RISC-like machine) and :mod:`repro.target.generic`; they are selectable
by name through :mod:`repro.target.registry`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Tuple

from repro.ir.values import PhysicalRegister, preg


class TargetError(ValueError):
    """Raised for malformed machine descriptions and unknown target names."""


@dataclass(frozen=True)
class MachineDescription:
    """An immutable description of one target machine.

    Instances are hashable and compare by their declared fields, so they can
    be used as cache keys; the derived lookup structures are excluded from
    equality and recomputed in ``__post_init__``.
    """

    name: str
    caller_saved: Tuple[PhysicalRegister, ...]
    callee_saved: Tuple[PhysicalRegister, ...]
    #: Dynamic cost of one callee-saved save (a store to the save area).
    save_cost: float = 1.0
    #: Dynamic cost of one callee-saved restore (a load from the save area).
    restore_cost: float = 1.0
    #: Dynamic cost of a jump inserted to materialize spill code on a jump edge.
    jump_cost: float = 1.0
    #: Dynamic cost of a conditional branch (reserved for layout heuristics).
    branch_cost: float = 1.0
    #: Bytes occupied by one spill / save-area slot in the stack frame.
    spill_slot_bytes: int = 8
    description: str = ""

    # Derived, precomputed lookup structures (not part of equality/hash).
    caller_saved_set: FrozenSet[PhysicalRegister] = field(
        init=False, repr=False, compare=False
    )
    callee_saved_set: FrozenSet[PhysicalRegister] = field(
        init=False, repr=False, compare=False
    )
    #: Caller-saved registers first (no save/restore obligation), then
    #: callee-saved — the preference order the colouring uses for ranges that
    #: may take either class.
    allocation_order: Tuple[PhysicalRegister, ...] = field(
        init=False, repr=False, compare=False
    )
    _by_name: Mapping[str, PhysicalRegister] = field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        caller = tuple(self.caller_saved)
        callee = tuple(self.callee_saved)
        if not caller:
            raise TargetError(f"target {self.name!r} declares no caller-saved registers")
        if not callee:
            raise TargetError(f"target {self.name!r} declares no callee-saved registers")
        by_name = {}
        for register in caller + callee:
            if not isinstance(register, PhysicalRegister):
                raise TargetError(
                    f"target {self.name!r}: {register!r} is not a PhysicalRegister"
                )
            if register.name in by_name:
                raise TargetError(
                    f"target {self.name!r}: register {register.name!r} appears twice"
                )
            by_name[register.name] = register
        for cost_name in ("save_cost", "restore_cost", "jump_cost", "branch_cost"):
            if getattr(self, cost_name) < 0.0:
                raise TargetError(f"target {self.name!r}: {cost_name} must be >= 0")
        if self.spill_slot_bytes <= 0:
            raise TargetError(f"target {self.name!r}: spill_slot_bytes must be positive")
        object.__setattr__(self, "caller_saved", caller)
        object.__setattr__(self, "callee_saved", callee)
        object.__setattr__(self, "caller_saved_set", frozenset(caller))
        object.__setattr__(self, "callee_saved_set", frozenset(callee))
        object.__setattr__(self, "allocation_order", caller + callee)
        object.__setattr__(self, "_by_name", by_name)

    # -- register-class queries (hot path: O(1) set probes) -----------------------

    def is_caller_saved(self, register: PhysicalRegister) -> bool:
        return register in self.caller_saved_set

    def is_callee_saved(self, register: PhysicalRegister) -> bool:
        return register in self.callee_saved_set

    @property
    def registers(self) -> Tuple[PhysicalRegister, ...]:
        """Every allocatable register, caller-saved first."""

        return self.allocation_order

    @property
    def num_registers(self) -> int:
        return len(self.allocation_order)

    @property
    def num_caller_saved(self) -> int:
        return len(self.caller_saved)

    @property
    def num_callee_saved(self) -> int:
        return len(self.callee_saved)

    def register(self, name: str) -> PhysicalRegister:
        """Look up a register of this machine by name."""

        try:
            return self._by_name[name]
        except KeyError:
            raise TargetError(
                f"target {self.name!r} has no register named {name!r}"
            ) from None

    # -- cost helpers -------------------------------------------------------------

    @property
    def save_restore_cost(self) -> float:
        """Dynamic cost of one save/restore pair (the entry/exit unit cost)."""

        return self.save_cost + self.restore_cost

    def frame_bytes(self, num_slots: int) -> int:
        """Stack-frame bytes needed for ``num_slots`` spill/save slots."""

        return num_slots * self.spill_slot_bytes

    # -- misc ---------------------------------------------------------------------

    def replace(self, **changes) -> "MachineDescription":
        """A copy with some declared fields changed (derived sets recomputed)."""

        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.num_registers} registers "
            f"({self.num_caller_saved} caller-saved, {self.num_callee_saved} callee-saved), "
            f"save/restore cost {self.save_cost:g}/{self.restore_cost:g}, "
            f"jump cost {self.jump_cost:g}, {self.spill_slot_bytes}-byte slots"
        )

    def __str__(self) -> str:
        return self.describe()


def register_range(
    prefix: str, start: int, stop: int
) -> Tuple[PhysicalRegister, ...]:
    """The registers ``<prefix><start>`` .. ``<prefix><stop - 1>``."""

    return tuple(preg(index, prefix) for index in range(start, stop))


def cost_weights(machine: "MachineDescription | None") -> Tuple[float, float, float]:
    """``(save, restore, jump)`` weights of ``machine``; unit weights for ``None``.

    The single place the "no machine means every instruction costs one
    unit" convention lives — the cost models and both overhead accountings
    route through it.
    """

    if machine is None:
        return (1.0, 1.0, 1.0)
    return (machine.save_cost, machine.restore_cost, machine.jump_cost)
