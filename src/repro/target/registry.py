"""Named lookup of machine descriptions.

The CLI, the benchmark harnesses and the evaluation runner select targets by
string (``--target micro``); this module maps those names onto the factory
functions.  Factories — not instances — are registered so that a target is
only materialized when requested, and downstream projects can plug in their
own machines with :func:`register_target`.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Union

from repro.target.generic import micro_target, riscish_target, tiny_target, wide_target
from repro.target.machine import MachineDescription, TargetError
from repro.target.parisc import parisc_target

TargetFactory = Callable[[], MachineDescription]

#: The default target: the paper's machine.
DEFAULT_TARGET = "parisc"

_REGISTRY: Dict[str, TargetFactory] = {}


def register_target(name: str, factory: TargetFactory, overwrite: bool = False) -> None:
    """Register ``factory`` under ``name`` for string-based target selection."""

    if not name:
        raise TargetError("target name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise TargetError(f"target {name!r} is already registered")
    _REGISTRY[name] = factory


def available_targets() -> Tuple[str, ...]:
    """The registered target names, sorted (stable CLI ``choices`` order)."""

    return tuple(sorted(_REGISTRY))


def get_target(name: str) -> MachineDescription:
    """Build the machine description registered under ``name``."""

    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise TargetError(
            f"unknown target {name!r}; expected one of {', '.join(available_targets())}"
        ) from None
    return factory()


def resolve_target(
    spec: Union[MachineDescription, str, None], default: str = DEFAULT_TARGET
) -> MachineDescription:
    """Normalize a target argument: instance, registered name, or ``None``.

    ``None`` resolves to ``default`` — the single point every layer routes
    through instead of hard-coding a particular machine.
    """

    if spec is None:
        return get_target(default)
    if isinstance(spec, MachineDescription):
        return spec
    if isinstance(spec, str):
        return get_target(spec)
    raise TargetError(f"cannot resolve {spec!r} to a machine description")


register_target("parisc", parisc_target)
register_target("riscish", riscish_target)
register_target("tiny", tiny_target)
register_target("micro", micro_target)
register_target("wide", wide_target)
