"""Target machine descriptions and the named-target registry.

Every target-dependent fact — register file, caller/callee-saved partition,
save/restore/jump cost weights, spill-slot size — lives behind
:class:`~repro.target.machine.MachineDescription`; no other package
hard-codes register names or costs.  Select targets programmatically via the
factories or by name via :func:`~repro.target.registry.get_target`.
"""

from repro.target.generic import micro_target, riscish_target, tiny_target, wide_target
from repro.target.machine import (
    MachineDescription,
    TargetError,
    cost_weights,
    register_range,
)
from repro.target.parisc import parisc_target
from repro.target.registry import (
    DEFAULT_TARGET,
    available_targets,
    get_target,
    register_target,
    resolve_target,
)

__all__ = [
    "DEFAULT_TARGET",
    "MachineDescription",
    "TargetError",
    "available_targets",
    "cost_weights",
    "get_target",
    "micro_target",
    "parisc_target",
    "register_range",
    "register_target",
    "resolve_target",
    "riscish_target",
    "tiny_target",
    "wide_target",
]
