"""Generic and synthetic machine descriptions.

Besides the paper's PA-RISC-like machine (:mod:`repro.target.parisc`) the
reproduction ships several other targets so that the techniques can be
exercised across very different register-pressure regimes:

``riscish_target``
    a plain 16-register RISC split evenly into caller- and callee-saved
    banks — the "reasonable default" machine for examples and tests;
``tiny_target``
    a configurable machine with only a handful of registers, used to force
    heavy spilling in stress tests;
``micro_target``
    an 8-register embedded machine whose memory traffic and jumps cost two
    units each (slow single-ported SRAM), opening the high-pressure /
    expensive-spill regime;
``wide_target``
    a 64-register machine in the spirit of IA-64/SPARC register-window
    files, where callee-saved pressure is rare and placements degenerate —
    the low-pressure regime.
"""

from __future__ import annotations

from functools import lru_cache

from repro.target.machine import MachineDescription, register_range


@lru_cache(maxsize=None)
def riscish_target() -> MachineDescription:
    """A generic 16-register RISC: ``r0``-``r7`` caller-, ``r8``-``r15`` callee-saved."""

    return MachineDescription(
        name="riscish",
        caller_saved=register_range("r", 0, 8),
        callee_saved=register_range("r", 8, 16),
        description="generic 16-register RISC (8 caller-saved, 8 callee-saved)",
    )


@lru_cache(maxsize=None)
def tiny_target(num_caller: int = 2, num_callee: int = 2) -> MachineDescription:
    """A deliberately small machine used to force spilling in tests.

    ``num_caller`` caller-saved registers ``t0`` .. and ``num_callee``
    callee-saved registers ``s0`` ...  The default shape is named plain
    ``tiny`` so that ``machine.name`` round-trips through the registry;
    custom shapes carry their counts in the name.
    """

    default_shape = (num_caller, num_callee) == (2, 2)
    return MachineDescription(
        name="tiny" if default_shape else f"tiny{num_caller}x{num_callee}",
        caller_saved=register_range("t", 0, num_caller),
        callee_saved=register_range("s", 0, num_callee),
        description=(
            f"tiny stress-test machine ({num_caller} caller-saved, "
            f"{num_callee} callee-saved)"
        ),
    )


@lru_cache(maxsize=None)
def micro_target() -> MachineDescription:
    """An 8-register embedded machine with expensive memory and jumps.

    Every save/restore (a store/load to slow single-ported memory) and every
    materialized jump costs two dynamic units, so placements that keep spill
    code off hot paths pay off twice as much as on the paper's machine.  The
    cost weights are uniform across save, restore and jump, which preserves
    the hierarchical algorithm's never-worse guarantee (a uniform scaling
    does not change which placement is cheapest).
    """

    return MachineDescription(
        name="micro",
        caller_saved=register_range("a", 0, 4),
        callee_saved=register_range("s", 0, 4),
        save_cost=2.0,
        restore_cost=2.0,
        jump_cost=2.0,
        branch_cost=2.0,
        spill_slot_bytes=4,
        description="8-register embedded machine with 2x-cost memory and jumps",
    )


@lru_cache(maxsize=None)
def wide_target() -> MachineDescription:
    """A 64-register machine: ``x0``-``x31`` caller-, ``x32``-``x63`` callee-saved."""

    return MachineDescription(
        name="wide",
        caller_saved=register_range("x", 0, 32),
        callee_saved=register_range("x", 32, 64),
        description="64-register machine (32 caller-saved, 32 callee-saved)",
    )
