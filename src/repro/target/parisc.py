"""The paper's PA-RISC-like machine description.

Lupo & Wilken evaluate on HP PA-RISC, whose procedure calling convention
partitions the general registers into a large callee-saved bank (``gr3`` ..
``gr18``, sixteen registers) and a caller-saved bank (the argument registers
``gr19`` .. ``gr26``, the return registers ``gr28``/``gr29``, and the
scratch registers ``gr1``/``gr31``).  The sixteen callee-saved registers are
what makes the paper's problem interesting: procedures that touch many of
them pay two instructions per register per invocation under entry/exit
placement.

Costs are uniform (every save, restore and jump counts one dynamic
instruction), matching how the paper reports overhead as instruction counts.
"""

from __future__ import annotations

from functools import lru_cache

from repro.target.machine import MachineDescription, register_range


@lru_cache(maxsize=None)
def parisc_target() -> MachineDescription:
    """The PA-RISC-like machine the paper's experiments model."""

    caller_saved = (
        register_range("gr", 19, 27)      # argument registers gr19..gr26
        + register_range("gr", 28, 30)    # return value registers gr28, gr29
        + register_range("gr", 31, 32)    # scratch gr31
        + register_range("gr", 1, 2)      # scratch gr1
    )
    return MachineDescription(
        name="parisc",
        caller_saved=caller_saved,
        callee_saved=register_range("gr", 3, 19),  # gr3..gr18
        save_cost=1.0,
        restore_cost=1.0,
        jump_cost=1.0,
        branch_cost=1.0,
        spill_slot_bytes=8,
        description="PA-RISC-like machine of the paper (16 callee-saved registers)",
    )
