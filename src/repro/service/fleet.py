"""The serving fleet: a consistent-hash router over shard compile servers.

This is the horizontal layer on top of :mod:`repro.service.server`: N
independent shard processes (each a full :class:`CompileServer`) behind one
:class:`FleetRouter` frontend that speaks the same JSON-lines protocol as a
single server — existing clients, the load generator and the CI harness
connect to the router without change.

The router does four things:

* **Routing** — every compile request is resolved to its
  :func:`~repro.ir.fingerprint.procedure_cache_key` and consistent-hashed
  over the shard ring (:mod:`repro.service.ring`).  Key affinity makes the
  fleet-wide "one compile per coalesced key" guarantee compositional: the
  ring sends identical requests to the same shard, the shard's in-flight
  coalescing collapses them to one compile.
* **The shared cache tier** — the router hosts a
  :class:`~repro.service.peering.SharedCacheTier` on a second listening
  port.  Shards publish every fresh compile to it (``cache-put``) and
  consult it after a local miss (``cache-get``), so one shard's compile is
  every shard's hit; the router itself answers straight from the tier
  (``service.cache == "tier"``) without forwarding when it can.
* **Health** — a shard that dies (connection EOF) is removed from the
  ring immediately and its in-flight requests are re-routed to the next
  owner on the ring; compiles are deterministic and idempotent, so a
  re-route can never produce a different answer, and responses are
  matched by router-assigned ids so none is ever dropped or duplicated.
  A *wedged* shard (alive but not answering) is detected by a stall
  watchdog — pending work but no response for ``stall_timeout`` — and
  treated exactly like a death: isolated, drained from the ring,
  re-routed around.
* **Drain** — a ``shutdown`` request (or SIGTERM via the CLI) stops
  admission, finishes every in-flight request, asks each shard to drain
  gracefully, then closes both listeners.

:class:`Fleet` is the synchronous supervisor the CLI, the benchmarks and
the test-suite use: it runs the router on a background thread and spawns
shards either as real child processes (``backend="process"``, via
``repro-spill serve --peer``) or as in-process embedded servers
(``backend="thread"``, cheaper and enough for scheduling/trace tests).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.service.health import (
    METRICS_TEXT_SCHEMA,
    HealthMonitor,
    render_metrics_text,
)
from repro.service.metrics import LatencyHistogram
from repro.service.peering import (
    DEFAULT_TIER_ENTRIES,
    SharedCacheTier,
    serve_peering_connection,
)
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    CompileAnswer,
    ProtocolError,
    decode_message,
    encode_message,
    error_message,
    hello_message,
    lint_result_message,
    parse_compile_request,
    parse_hello,
    parse_lint_request,
    resolve_compile_request,
    resolve_lint_request,
)
from repro.service.policy import Decision, PolicyEngine, default_engine
from repro.service.ring import HashRing
from repro.service.server import (
    DEFAULT_HEALTH_INTERVAL,
    SEND_TIMEOUT_SECONDS,
    _check_admin_fields,
)

#: Seconds of "pending work but no response" after which the stall
#: watchdog declares a shard wedged and isolates it (tests shrink this).
DEFAULT_STALL_TIMEOUT_SECONDS = 30.0

#: Bound on one per-shard stats fetch during a fleet snapshot; a draining
#: or unreachable shard yields a partial entry instead of stalling it.
SHARD_STATS_TIMEOUT_SECONDS = 2.0

#: Bound on the per-shard graceful-shutdown request during a fleet drain.
SHARD_DRAIN_TIMEOUT_SECONDS = 30.0

#: Entries kept in the router's signature → cache-key memo (resolution is
#: real CPU work; repeated keys — the common case under load — skip it).
RESOLVE_MEMO_ENTRIES = 4096


class ShardDied(Exception):
    """Raised to in-flight forwards when their shard's link goes down."""


@dataclass
class RouterMetrics:
    """Counters the fleet router maintains (loop-owned, lock-free)."""

    #: Compile requests that arrived at the router.
    received: int = 0
    #: Compile requests answered with a ``result``.
    completed: int = 0
    #: Compile requests answered with an ``error`` (all codes).
    errors: int = 0
    #: Messages that failed protocol validation (subset of ``errors``).
    protocol_errors: int = 0
    #: Compile requests rejected because the fleet was draining.
    rejected_shutting_down: int = 0
    #: Requests answered straight from the shared tier (no forward).
    tier_hits: int = 0
    #: Requests forwarded to a shard (re-routes count again).
    forwarded: int = 0
    #: Forwards retried on another shard after a death/drain/wedge.
    rerouted: int = 0
    #: Shards removed from the ring because their link died.
    shard_deaths: int = 0
    #: Shards isolated by the stall watchdog.
    wedged: int = 0

    latency_ms: LatencyHistogram = field(default_factory=LatencyHistogram)
    started_at: float = field(default_factory=time.monotonic)

    def counter_values(self) -> Dict[str, int]:
        """The cumulative counters as a plain dict (health-monitor feed)."""

        return {
            "received": self.received,
            "completed": self.completed,
            "errors": self.errors,
            "protocol_errors": self.protocol_errors,
            "rejected_shutting_down": self.rejected_shutting_down,
            "tier_hits": self.tier_hits,
            "forwarded": self.forwarded,
            "rerouted": self.rerouted,
            "shard_deaths": self.shard_deaths,
            "wedged": self.wedged,
        }

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable view of the router's counters."""

        uptime = time.monotonic() - self.started_at
        return {
            "uptime_seconds": round(uptime, 3),
            "received": self.received,
            "completed": self.completed,
            "errors": self.errors,
            "protocol_errors": self.protocol_errors,
            "rejected_shutting_down": self.rejected_shutting_down,
            "tier_hits": self.tier_hits,
            "forwarded": self.forwarded,
            "rerouted": self.rerouted,
            "shard_deaths": self.shard_deaths,
            "wedged": self.wedged,
            "qps": round(self.completed / uptime, 3) if uptime > 0 else 0.0,
            "latency_ms": self.latency_ms.summary(),
        }


class _ShardLink:
    """The router's pipelined connection to one shard.

    Forwards carry router-assigned ids (``x1``, ``x2``, ...) so responses
    demultiplex unambiguously no matter how clients chose theirs.  When
    the link dies — EOF, reset, or the watchdog closing a wedged shard —
    every in-flight forward fails with :class:`ShardDied` and the
    router's per-request handlers re-route; the death callback fires
    exactly once.
    """

    def __init__(
        self,
        shard_id: str,
        host: str,
        port: int,
        on_death: Callable[[str, str], None],
    ):
        self.shard_id = shard_id
        self.host = host
        self.port = port
        self.forwarded = 0
        self.answered = 0
        self._on_death = on_death
        self._counter = 0
        self._dead: Optional[str] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._write_lock = asyncio.Lock()
        # The wedge detector's clock: reset whenever pending work starts
        # or any response arrives; stale + pending work = wedged.
        self._last_progress = time.monotonic()

    @property
    def healthy(self) -> bool:
        """Whether the link is connected and usable for forwards."""

        return self._dead is None and self._writer is not None

    @property
    def pending_count(self) -> int:
        """Forwards currently awaiting a response from this shard."""

        return len(self._pending)

    @property
    def stalled_seconds(self) -> float:
        """Seconds since this link last made progress (see watchdog)."""

        return time.monotonic() - self._last_progress

    async def connect(self, timeout: float = 30.0) -> None:
        """Open the connection and complete the protocol handshake."""

        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(
                self.host, self.port, limit=MAX_FRAME_BYTES + 1024
            ),
            timeout=timeout,
        )
        writer.write(encode_message(hello_message()))
        await asyncio.wait_for(writer.drain(), timeout=timeout)
        reply = decode_message(await asyncio.wait_for(reader.readline(), timeout=timeout))
        if reply.get("type") != "hello":
            writer.close()
            raise ConnectionError(
                f"shard {self.shard_id} rejected the handshake: {reply!r}"
            )
        self._reader = reader
        self._writer = writer
        self._last_progress = time.monotonic()
        self._reader_task = asyncio.ensure_future(self._read_loop())

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Forward one message and await the matching response.

        Assigns a fresh internal id; raises :class:`ShardDied` if the
        link is or goes down before the response arrives.
        """

        if self._dead is not None or self._writer is None:
            raise ShardDied(self._dead or "link not connected")
        self._counter += 1
        internal_id = f"x{self._counter}"
        forward = dict(message)
        forward["id"] = internal_id
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        if not self._pending:
            self._last_progress = time.monotonic()
        self._pending[internal_id] = future
        self.forwarded += 1
        try:
            async with self._write_lock:
                self._writer.write(encode_message(forward))
                await asyncio.wait_for(
                    self._writer.drain(), timeout=SEND_TIMEOUT_SECONDS
                )
        except Exception:
            self._pending.pop(internal_id, None)
            self.close("write to shard failed")
            raise ShardDied("write to shard failed")
        try:
            return await future
        finally:
            self._pending.pop(internal_id, None)

    async def _read_loop(self) -> None:
        assert self._reader is not None
        while True:
            try:
                line = await self._reader.readline()
            except (ConnectionResetError, ValueError, asyncio.CancelledError):
                break
            if not line:
                break
            if not line.strip():
                continue
            try:
                message = decode_message(line)
            except ProtocolError:
                continue
            self._last_progress = time.monotonic()
            future = self._pending.pop(message.get("id"), None)
            if future is not None and not future.done():
                self.answered += 1
                future.set_result(message)
        self.close("shard connection closed")

    def close(self, reason: str) -> None:
        """Tear the link down (idempotent): fail pending, notify once."""

        if self._dead is not None:
            return
        self._dead = reason
        if self._reader_task is not None and self._reader_task is not asyncio.current_task():
            self._reader_task.cancel()
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:  # pragma: no cover - best-effort close
                pass
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(ShardDied(reason))
        self._on_death(self.shard_id, reason)


@dataclass(eq=False)
class _ClientConnection:
    """Per-client-connection state on the router (mirror of the server's)."""

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    write_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    greeted: bool = False


class FleetRouter:
    """The fleet frontend: protocol endpoint, hash ring, shared tier.

    Construct, ``await start()`` (both listeners bind; ephemeral ports
    resolve), attach shards with :meth:`attach_shard`, then
    ``await serve_forever()``.  The synchronous wrapper most callers want
    is :class:`Fleet`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        peer_port: int = 0,
        stall_timeout: float = DEFAULT_STALL_TIMEOUT_SECONDS,
        tier_entries: int = DEFAULT_TIER_ENTRIES,
        health_interval: float = DEFAULT_HEALTH_INTERVAL,
    ):
        if stall_timeout <= 0:
            raise ValueError(f"stall_timeout must be > 0, got {stall_timeout!r}")
        if health_interval <= 0:
            raise ValueError(f"health_interval must be > 0, got {health_interval!r}")
        self.host = host
        self.port = port
        self.peer_port = peer_port
        self.stall_timeout = stall_timeout
        self.ring = HashRing()
        self.tier = SharedCacheTier(max_entries=tier_entries)
        self.metrics = RouterMetrics()
        self.health_interval = health_interval
        self.health = HealthMonitor(counters=tuple(self.metrics.counter_values()))

        self._links: Dict[str, _ShardLink] = {}
        self._lost: Dict[str, str] = {}
        self._memo: "OrderedDict[Tuple, str]" = OrderedDict()
        self._server: Optional[asyncio.base_events.Server] = None
        self._peer_server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._watchdog_task: Optional[asyncio.Task] = None
        self._health_task: Optional[asyncio.Task] = None
        self._draining = False
        self._active_requests = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._closed = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> None:
        """Bind the client and peering listeners and start the watchdog."""

        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_FRAME_BYTES + 1024
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._peer_server = await asyncio.start_server(
            self._handle_peering, self.host, self.peer_port,
            limit=MAX_FRAME_BYTES + 1024,
        )
        self.peer_port = self._peer_server.sockets[0].getsockname()[1]
        self._watchdog_task = asyncio.ensure_future(self._watchdog())
        self._health_task = asyncio.ensure_future(self._health_loop())

    async def _handle_peering(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One shard's peering connection: serve the shared tier."""

        try:
            await serve_peering_connection(self.tier, reader, writer)
        except asyncio.CancelledError:
            # Drain closes the peering listener while shard connections are
            # still parked in readline(); swallowing the cancellation keeps
            # the event loop's task-exception callback quiet.
            pass

    @property
    def peer_address(self) -> str:
        """The ``host:port`` shards pass to ``serve --peer``."""

        return f"{self.host}:{self.peer_port}"

    async def attach_shard(self, shard_id: str, host: str, port: int) -> None:
        """Connect a shard, add it to the ring, start routing to it."""

        if shard_id in self._links:
            raise ValueError(f"shard id {shard_id!r} is already attached")
        link = _ShardLink(shard_id, host, port, on_death=self._shard_lost)
        await link.connect()
        self._links[shard_id] = link
        self._lost.pop(shard_id, None)
        self.ring.add(shard_id)

    def _shard_lost(self, shard_id: str, reason: str) -> None:
        """Link-death callback: shrink the ring, record why (once)."""

        if shard_id not in self._links:
            return
        del self._links[shard_id]
        self.ring.remove(shard_id)
        self._lost[shard_id] = reason
        if not self._draining:
            self.metrics.shard_deaths += 1

    async def _watchdog(self) -> None:
        """Isolate wedged shards: pending work, no progress past the stall bound."""

        period = max(0.05, self.stall_timeout / 4.0)
        while True:
            await asyncio.sleep(period)
            for link in list(self._links.values()):
                if (
                    link.pending_count > 0
                    and link.stalled_seconds > self.stall_timeout
                ):
                    self.metrics.wedged += 1
                    link.close(
                        f"wedged: {link.pending_count} pending, no response "
                        f"for {link.stalled_seconds:.1f}s"
                    )

    async def _health_loop(self) -> None:
        """Feed the router counters into the rolling window every tick.

        Keeps the windowed rates current even between ``stats`` polls, so
        a recorded trace attributes counter deltas close to event time.
        """

        while not self._draining:
            await asyncio.sleep(self.health_interval)
            if self._draining:
                return
            self.health.feed_counters(self.metrics.counter_values())

    def health_sample(self) -> Dict[str, Any]:
        """The router's ``health-sample/v1`` payload, with shard link state.

        On top of the windowed counters/latency this folds in the live
        per-shard link view (``healthy``/``pending``/``stalled_seconds``)
        and the lost-shard record — the inputs the wedged-shard and
        restart policy rules consume, live and on replay.
        """

        self.health.feed_counters(self.metrics.counter_values())
        sample = self.health.sample()
        sample["shards"] = [
            {
                "id": shard_id,
                "healthy": link.healthy,
                "pending": link.pending_count,
                "stalled_seconds": round(link.stalled_seconds, 3),
            }
            for shard_id, link in sorted(self._links.items())
        ]
        sample["lost"] = dict(self._lost)
        return sample

    async def health_sample_async(self) -> Dict[str, Any]:
        """:meth:`health_sample` as a coroutine (for cross-thread calls)."""

        return self.health_sample()

    async def quarantine_shard(self, shard_id: str, reason: str) -> bool:
        """Isolate one shard on policy's orders (same path as the watchdog).

        Closes the shard's link with a ``wedged:`` reason, which shrinks
        the ring, fails its in-flight forwards over to re-routing, and
        records it in ``lost_shards``.  Returns False when the shard is
        not attached (already lost or never seen).
        """

        link = self._links.get(shard_id)
        if link is None:
            return False
        self.metrics.wedged += 1
        link.close(f"wedged: {reason}")
        return True

    def request_drain(self) -> None:
        """Schedule a graceful fleet drain (signal-handler safe)."""

        asyncio.ensure_future(self.drain())

    async def drain(self) -> None:
        """Stop admitting, finish in-flight work, drain shards, close up.

        Idempotent; concurrent callers await the same shutdown.
        """

        if self._draining:
            await self._closed.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        await self._idle.wait()
        # Ask every shard to drain gracefully; a shard that cannot answer
        # (dead, wedged) is simply closed.
        for link in list(self._links.values()):
            try:
                await asyncio.wait_for(
                    link.request({"type": "shutdown"}),
                    timeout=SHARD_DRAIN_TIMEOUT_SECONDS,
                )
            except (ShardDied, asyncio.TimeoutError, Exception):
                pass
        for link in list(self._links.values()):
            link.close("fleet drained")
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
            try:
                await self._watchdog_task
            except asyncio.CancelledError:
                pass
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
        for connection in list(self._connections):
            try:
                connection.writer.close()
            except Exception:  # pragma: no cover - best-effort close
                pass
        if self._peer_server is not None:
            self._peer_server.close()
        if self._server is not None:
            try:
                await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                pass
        self._closed.set()

    async def serve_forever(self) -> None:
        """Block until the fleet has fully drained and closed."""

        await self._closed.wait()

    def install_signal_handlers(self) -> None:
        """Drain gracefully on SIGTERM/SIGINT (POSIX event loops only)."""

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    @property
    def draining(self) -> bool:
        """Whether the router has begun a graceful drain."""

        return self._draining

    # -- request bookkeeping ------------------------------------------------------

    def _request_started(self) -> None:
        self._active_requests += 1
        self._idle.clear()

    def _request_finished(self) -> None:
        self._active_requests -= 1
        if self._active_requests == 0:
            self._idle.set()

    # -- the client-facing protocol endpoint --------------------------------------

    def describe(self) -> Dict[str, Any]:
        """The server-info dict sent in the router's handshake ``hello``."""

        return {
            "fleet": True,
            "shards": len(self._links),
            "tier_entries": self.tier.max_entries,
            "stall_timeout": self.stall_timeout,
        }

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _ClientConnection(reader=reader, writer=writer)
        self._connections.add(connection)
        tasks: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ConnectionResetError:
                    break
                except (ValueError, asyncio.IncompleteReadError):
                    self.metrics.protocol_errors += 1
                    self.metrics.errors += 1
                    await self._send(
                        connection,
                        error_message(
                            "protocol",
                            f"frame exceeds {MAX_FRAME_BYTES} bytes or the "
                            "stream is malformed; closing",
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_message(line)
                except ProtocolError as exc:
                    self.metrics.protocol_errors += 1
                    self.metrics.errors += 1
                    await self._send(connection, error_message("bad_request", str(exc)))
                    continue
                if not connection.greeted:
                    if not await self._handshake(connection, message):
                        break
                    continue
                kind = message.get("type")
                if kind in ("compile", "lint"):
                    task = asyncio.ensure_future(
                        self._handle_request(connection, message, kind)
                    )
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                elif kind in ("stats", "metrics", "shutdown"):
                    try:
                        _check_admin_fields(message, kind)
                    except ProtocolError as exc:
                        self.metrics.protocol_errors += 1
                        self.metrics.errors += 1
                        await self._send(
                            connection,
                            error_message("bad_request", str(exc), message.get("id")),
                        )
                        continue
                    if kind == "stats":
                        await self._send(
                            connection,
                            {
                                "type": "stats",
                                "id": message.get("id"),
                                "stats": await self.stats_snapshot_async(),
                            },
                        )
                    elif kind == "metrics":
                        await self._send(
                            connection,
                            {
                                "type": "metrics",
                                "id": message.get("id"),
                                "schema": METRICS_TEXT_SCHEMA,
                                "text": render_metrics_text(
                                    await self.stats_snapshot_async()
                                ),
                            },
                        )
                    else:
                        await self._send(
                            connection, {"type": "ok", "id": message.get("id")}
                        )
                        self.request_drain()
                else:
                    self.metrics.protocol_errors += 1
                    self.metrics.errors += 1
                    await self._send(
                        connection,
                        error_message(
                            "bad_request",
                            f"unknown message type {kind!r}",
                            message.get("id") if isinstance(message.get("id"), str) else None,
                        ),
                    )
        except ConnectionResetError:  # pragma: no cover - peer vanished
            pass
        finally:
            if tasks:
                await asyncio.gather(*list(tasks), return_exceptions=True)
            self._connections.discard(connection)
            try:
                writer.close()
            except Exception:  # pragma: no cover - best-effort close
                pass

    async def _handshake(
        self, connection: _ClientConnection, message: Dict[str, Any]
    ) -> bool:
        try:
            if message.get("type") != "hello":
                raise ProtocolError(
                    "first message must be a 'hello' handshake", code="protocol"
                )
            version = parse_hello(message)
        except ProtocolError as exc:
            self.metrics.protocol_errors += 1
            self.metrics.errors += 1
            await self._send(connection, error_message("protocol", str(exc)))
            return False
        if version != PROTOCOL_VERSION:
            self.metrics.protocol_errors += 1
            self.metrics.errors += 1
            await self._send(
                connection,
                error_message(
                    "protocol",
                    f"protocol version mismatch: client speaks {version}, "
                    f"router speaks {PROTOCOL_VERSION}",
                ),
            )
            return False
        connection.greeted = True
        await self._send(connection, hello_message(server_info=self.describe()))
        return True

    async def _send(
        self, connection: _ClientConnection, message: Dict[str, Any]
    ) -> None:
        """Bounded, locked write of one message to a client connection."""

        payload = encode_message(message)
        async with connection.write_lock:
            try:
                connection.writer.write(payload)
                await asyncio.wait_for(
                    connection.writer.drain(), timeout=SEND_TIMEOUT_SECONDS
                )
            except asyncio.TimeoutError:
                try:
                    connection.writer.close()
                except Exception:  # pragma: no cover - best-effort close
                    pass
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    # -- routing ------------------------------------------------------------------

    async def _cache_key_for(self, request, resolver) -> str:
        """The request's routing/tier key, memoized by request signature.

        Resolution (IR parsing, scenario generation, fingerprinting) is
        real CPU work, so it runs off the event loop — but only once per
        distinct signature; under load the memo answers directly.  The
        memo is shared across request kinds: signatures carry the message
        ``type`` field, so a compile and a lint of the same program never
        alias.
        """

        signature = request.signature()
        cached = self._memo.get(signature)
        if cached is not None:
            self._memo.move_to_end(signature)
            return cached
        resolved = await asyncio.to_thread(resolver, request)
        self._memo[signature] = resolved.cache_key
        while len(self._memo) > RESOLVE_MEMO_ENTRIES:
            self._memo.popitem(last=False)
        return resolved.cache_key

    async def _handle_request(
        self, connection: _ClientConnection, message: Dict[str, Any], kind: str
    ) -> None:
        """Route one compile or lint request: tier front, then forward.

        Both kinds share the whole flow — parse, key, tier, consistent-hash
        forward — and differ only in the parser/resolver pair and the shape
        of a tier-hit answer.
        """

        parser = parse_compile_request if kind == "compile" else parse_lint_request
        resolver = (
            resolve_compile_request if kind == "compile" else resolve_lint_request
        )
        self.metrics.received += 1
        self._request_started()
        arrived = time.monotonic()
        request_id = message.get("id") if isinstance(message.get("id"), str) else None
        try:
            try:
                request = parser(message)
                request_id = request.id
                cache_key = await self._cache_key_for(request, resolver)
            except ProtocolError as exc:
                self.metrics.protocol_errors += 1
                self.metrics.errors += 1
                await self._send(
                    connection, error_message(exc.code, str(exc), request_id)
                )
                return
            except Exception as exc:
                self.metrics.errors += 1
                await self._send(
                    connection,
                    error_message(
                        "internal",
                        f"request resolution failed: {type(exc).__name__}: {exc}",
                        request_id,
                    ),
                )
                return

            if self._draining:
                self.metrics.rejected_shutting_down += 1
                self.metrics.errors += 1
                await self._send(
                    connection,
                    error_message(
                        "shutting_down", "fleet is draining; try again later",
                        request_id,
                    ),
                )
                return

            # Tier front: the whole fleet may already know this answer.
            if request.cache == "use":
                entry = self.tier.get(cache_key)
                if entry is not None:
                    if kind == "compile":
                        answer = CompileAnswer(
                            result=dict(entry["result"]),
                            pass_seconds=dict(entry["pass_seconds"]),
                            cache_status="tier",
                            queue_ms=0.0,
                            compile_ms=0.0,
                        ).to_message(request_id)
                    else:
                        answer = lint_result_message(
                            request_id, dict(entry["result"]), cache_status="tier"
                        )
                    self.metrics.tier_hits += 1
                    self.metrics.completed += 1
                    latency_ms = (time.monotonic() - arrived) * 1000.0
                    self.metrics.latency_ms.record(latency_ms)
                    self.health.observe_latency(latency_ms)
                    await self._send(connection, answer)
                    return

            response, shard_id = await self._forward(message, cache_key)
            if response is None:
                self.metrics.errors += 1
                await self._send(
                    connection,
                    error_message(
                        "internal", "no healthy shard available", request_id
                    ),
                )
                return
            relayed = dict(response)
            relayed["id"] = request_id
            if relayed.get("type") == "result":
                service = dict(relayed.get("service") or {})
                service["shard"] = shard_id
                relayed["service"] = service
                self.metrics.completed += 1
                latency_ms = (time.monotonic() - arrived) * 1000.0
                self.metrics.latency_ms.record(latency_ms)
                self.health.observe_latency(latency_ms)
            else:
                self.metrics.errors += 1
            await self._send(connection, relayed)
        finally:
            self._request_finished()

    async def _forward(
        self, message: Dict[str, Any], cache_key: str
    ) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
        """Forward to the key's owner, walking the ring past dead shards.

        Returns ``(response, shard_id)``; ``(None, None)`` when no shard
        could take the request.  Re-routes are safe because compiles are
        deterministic and idempotent, and every client response is built
        from exactly one shard response (pending forwards that die raise,
        they never also resolve).
        """

        attempted: set = set()
        while True:
            order = [
                shard_id
                for shard_id in self.ring.route_order(cache_key)
                if shard_id not in attempted
            ]
            if not order:
                return None, None
            shard_id = order[0]
            attempted.add(shard_id)
            link = self._links.get(shard_id)
            if link is None or not link.healthy:
                continue
            self.metrics.forwarded += 1
            try:
                response = await link.request(message)
            except ShardDied:
                # The ring has already shrunk (the death callback ran);
                # walk on to the key's next owner.
                self.metrics.rerouted += 1
                continue
            if (
                response.get("type") == "error"
                and response.get("code") == "shutting_down"
            ):
                # The shard is draining on its own; route around it.
                self.metrics.rerouted += 1
                continue
            return response, shard_id

    # -- stats --------------------------------------------------------------------

    async def stats_snapshot_async(self) -> Dict[str, Any]:
        """The fleet-wide stats snapshot (``fleet-stats/v1``).

        Per-shard stats are fetched live with a short timeout; a shard
        that is draining or unreachable contributes a partial entry with
        an explicit ``status`` marker instead of failing the snapshot.
        """

        links = list(self._links.items())

        async def fetch(link: _ShardLink) -> Optional[Dict[str, Any]]:
            try:
                reply = await asyncio.wait_for(
                    link.request({"type": "stats"}),
                    timeout=SHARD_STATS_TIMEOUT_SECONDS,
                )
            except (ShardDied, asyncio.TimeoutError, Exception):
                return None
            if reply.get("type") != "stats":
                return None
            stats = reply.get("stats")
            return stats if isinstance(stats, dict) else None

        fetched = await asyncio.gather(*(fetch(link) for _sid, link in links))
        shards = []
        for (shard_id, link), stats in zip(links, fetched):
            if stats is None:
                status = "unreachable"
            elif stats.get("draining"):
                status = "draining"
            else:
                status = "ok"
            shards.append(
                {
                    "id": shard_id,
                    "host": link.host,
                    "port": link.port,
                    "healthy": link.healthy,
                    "status": status,
                    "forwarded": link.forwarded,
                    "answered": link.answered,
                    "pending": link.pending_count,
                    "stalled_seconds": round(link.stalled_seconds, 3),
                    "stats": stats,
                }
            )
        return {
            "schema": "fleet-stats/v1",
            "draining": self._draining,
            "health": self.health_sample(),
            "router": self.metrics.snapshot(),
            "ring": {
                "members": list(self.ring.members),
                "points": self.ring.describe(),
            },
            "tier": self.tier.snapshot(),
            "shards": shards,
            "lost_shards": dict(self._lost),
        }


# ---------------------------------------------------------------------------
# Shard backends and the synchronous supervisor.
# ---------------------------------------------------------------------------


def _package_source_dir() -> str:
    """The directory to put on a child's ``PYTHONPATH`` (repo's ``src``)."""

    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class ProcessShard:
    """One shard as a real child process (``python -m repro serve --peer``).

    The process boundary makes this the backend for fault injection: it
    can be SIGKILLed (death), SIGSTOPped (wedge) and SIGCONTed back.
    """

    backend = "process"

    def __init__(
        self,
        shard_id: str,
        peer: str,
        host: str = "127.0.0.1",
        workers: int = 1,
        cache_dir: Optional[str] = None,
        batch_max_requests: int = 16,
        batch_window_ms: float = 10.0,
        max_queue: int = 256,
        startup_timeout: float = 60.0,
    ):
        self.shard_id = shard_id
        self.peer = peer
        self.host = host
        self.port: Optional[int] = None
        self.workers = workers
        self.cache_dir = cache_dir
        self.batch_max_requests = batch_max_requests
        self.batch_window_ms = batch_window_ms
        self.max_queue = max_queue
        self.startup_timeout = startup_timeout
        self.process: Optional[subprocess.Popen] = None
        self._stdout_thread: Optional[threading.Thread] = None
        self._listening = threading.Event()

    @property
    def pid(self) -> Optional[int]:
        """The child's pid (None before :meth:`start`)."""

        return self.process.pid if self.process is not None else None

    def start(self) -> None:
        """Spawn the child and wait for its "listening on" line."""

        command = [
            sys.executable, "-m", "repro", "serve",
            "--host", self.host,
            "--port", "0",
            "--workers", str(self.workers),
            "--peer", self.peer,
            "--batch-max", str(self.batch_max_requests),
            "--batch-window-ms", str(self.batch_window_ms),
            "--max-queue", str(self.max_queue),
        ]
        if self.cache_dir:
            command += ["--cache-dir", self.cache_dir]
        else:
            command += ["--no-cache"]
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            _package_source_dir() + os.pathsep + env.get("PYTHONPATH", "")
        )
        self.process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        self._stdout_thread = threading.Thread(
            target=self._pump_stdout, name=f"shard-{self.shard_id}-out", daemon=True
        )
        self._stdout_thread.start()
        if not self._listening.wait(self.startup_timeout):
            self.kill()
            raise RuntimeError(
                f"shard {self.shard_id} did not start listening within "
                f"{self.startup_timeout:g}s"
            )

    def _pump_stdout(self) -> None:
        """Drain the child's stdout forever; capture the bound port."""

        assert self.process is not None and self.process.stdout is not None
        for line in self.process.stdout:
            if "listening on" in line and self.port is None:
                address = line.rsplit(" ", 1)[-1].strip()
                try:
                    self.port = int(address.rpartition(":")[2])
                except ValueError:  # pragma: no cover - malformed banner
                    continue
                self._listening.set()
        # EOF: the child exited; unblock a waiter so start() can fail fast.
        self._listening.set()

    def kill(self) -> None:
        """SIGKILL the shard (the fault-injection "death" primitive)."""

        if self.process is not None and self.process.poll() is None:
            self.process.kill()

    def suspend(self) -> None:
        """SIGSTOP the shard (the fault-injection "wedge" primitive)."""

        if self.process is not None and self.process.poll() is None:
            os.kill(self.process.pid, signal.SIGSTOP)

    def resume(self) -> None:
        """SIGCONT a suspended shard."""

        if self.process is not None and self.process.poll() is None:
            os.kill(self.process.pid, signal.SIGCONT)

    def stop(self, timeout: float = 30.0) -> None:
        """SIGTERM (graceful drain) and reap; escalate to SIGKILL."""

        if self.process is None:
            return
        if self.process.poll() is None:
            try:
                self.process.terminate()
            except ProcessLookupError:  # pragma: no cover - exited just now
                pass
            try:
                self.process.wait(timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(10.0)
        if self._stdout_thread is not None:
            self._stdout_thread.join(5.0)


class ThreadShard:
    """One shard as an in-process embedded server (no process boundary).

    Cheap and deterministic — the backend of choice for scheduling,
    peering and trace tests that do not need signals.
    """

    backend = "thread"

    def __init__(
        self,
        shard_id: str,
        peer: str,
        host: str = "127.0.0.1",
        workers: int = 1,
        cache_dir: Optional[str] = None,
        batch_max_requests: int = 16,
        batch_window_ms: float = 10.0,
        max_queue: int = 256,
        startup_timeout: float = 60.0,
    ):
        from repro.service.embedded import EmbeddedServer

        self.shard_id = shard_id
        self.peer = peer
        self.host = host
        self.port: Optional[int] = None
        self.pid: Optional[int] = None
        self._embedded = EmbeddedServer(
            workers=workers,
            cache=cache_dir,
            max_queue=max_queue,
            batch_max_requests=batch_max_requests,
            batch_window_ms=batch_window_ms,
            host=host,
            startup_timeout=startup_timeout,
            peer=peer,
        )

    def start(self) -> None:
        """Start the embedded server thread and record its port."""

        self._embedded.__enter__()
        self.port = self._embedded.port

    def kill(self) -> None:
        """Not supported: a thread cannot be SIGKILLed independently."""

        raise RuntimeError(
            "ThreadShard cannot be killed; use backend='process' for fault tests"
        )

    def stop(self, timeout: float = 30.0) -> None:
        """Drain the embedded server and join its thread."""

        self._embedded.stop(timeout)


class Fleet:
    """The synchronous fleet supervisor: router thread + N shards.

    ``with Fleet(shards=3) as fleet:`` starts the router (on a dedicated
    thread with its own event loop), spawns the shards pointed at the
    router's peering port, attaches them to the ring, and yields an
    object exposing ``host``/``port`` (the router's client endpoint),
    ``peer_port``, the live ``shards`` list and fault-injection helpers.
    Exit drains the whole fleet gracefully.
    """

    def __init__(
        self,
        shards: int = 3,
        backend: str = "process",
        host: str = "127.0.0.1",
        port: int = 0,
        peer_port: int = 0,
        workers: int = 1,
        cache_root: Optional[str] = None,
        batch_max_requests: int = 16,
        batch_window_ms: float = 10.0,
        max_queue: int = 256,
        stall_timeout: float = DEFAULT_STALL_TIMEOUT_SECONDS,
        tier_entries: int = DEFAULT_TIER_ENTRIES,
        startup_timeout: float = 60.0,
        remediate: bool = False,
        policy: Optional[PolicyEngine] = None,
        policy_interval: float = 0.5,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards!r}")
        if backend not in ("process", "thread"):
            raise ValueError(f"backend must be 'process' or 'thread', got {backend!r}")
        if policy_interval <= 0:
            raise ValueError(f"policy_interval must be > 0, got {policy_interval!r}")
        self.shard_count = shards
        self.backend = backend
        self.host = host
        self.port: Optional[int] = None
        self.peer_port: Optional[int] = None
        self.router: Optional[FleetRouter] = None
        self.shards: List[Any] = []
        self._requested_port = port
        self._requested_peer_port = peer_port
        self._workers = workers
        self._cache_root = cache_root
        self._batch_max_requests = batch_max_requests
        self._batch_window_ms = batch_window_ms
        self._max_queue = max_queue
        self._stall_timeout = stall_timeout
        self._tier_entries = tier_entries
        self._startup_timeout = startup_timeout
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        # Policy-driven remediation (opt-in): a supervisor thread polls the
        # router's health sample, steps the policy engine, and *executes*
        # quarantine/restart decisions against the shard handles.  Off by
        # default so fault tests that pin "a killed shard stays lost" keep
        # their semantics.
        self.remediate = remediate
        self.policy = policy if policy is not None else default_engine()
        self._policy_interval = policy_interval
        self._policy_thread: Optional[threading.Thread] = None
        self._policy_stop = threading.Event()

    # -- lifecycle ----------------------------------------------------------------

    def __enter__(self) -> "Fleet":
        self._thread = threading.Thread(
            target=self._run_router, name="repro-fleet-router", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self._startup_timeout):
            raise RuntimeError("fleet router did not start in time")
        if self._failure is not None:
            raise RuntimeError(
                f"fleet router failed to start: {self._failure}"
            ) from self._failure
        try:
            for index in range(self.shard_count):
                self._spawn_shard(index)
        except BaseException:
            self.stop()
            raise
        if self.remediate:
            self._policy_thread = threading.Thread(
                target=self._policy_loop, name="repro-fleet-policy", daemon=True
            )
            self._policy_thread.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    def _run_router(self) -> None:
        try:
            asyncio.run(self._router_main())
        except BaseException as exc:  # pragma: no cover - surfaced via _failure
            self._failure = exc
            self._ready.set()

    async def _router_main(self) -> None:
        try:
            router = FleetRouter(
                host=self.host,
                port=self._requested_port,
                peer_port=self._requested_peer_port,
                stall_timeout=self._stall_timeout,
                tier_entries=self._tier_entries,
            )
            await router.start()
        except BaseException as exc:
            self._failure = exc
            self._ready.set()
            return
        self.router = router
        self.port = router.port
        self.peer_port = router.peer_port
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await router.serve_forever()

    def _call(self, coroutine, timeout: float = 60.0):
        """Run a coroutine on the router's loop from the calling thread."""

        if self._loop is None:
            coroutine.close()
            raise RuntimeError("fleet router is not running")
        try:
            future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        except RuntimeError:
            coroutine.close()
            raise
        return future.result(timeout)

    def _make_shard(self, shard_id: str):
        """Construct (but do not start) one shard handle with the fleet's config."""

        cache_dir = (
            os.path.join(self._cache_root, shard_id) if self._cache_root else None
        )
        shard_cls = ProcessShard if self.backend == "process" else ThreadShard
        return shard_cls(
            shard_id,
            peer=f"{self.host}:{self.peer_port}",
            host=self.host,
            workers=self._workers,
            cache_dir=cache_dir,
            batch_max_requests=self._batch_max_requests,
            batch_window_ms=self._batch_window_ms,
            max_queue=self._max_queue,
            startup_timeout=self._startup_timeout,
        )

    def _spawn_shard(self, index: int) -> None:
        shard_id = f"s{index}"
        shard = self._make_shard(shard_id)
        shard.start()
        assert self.router is not None and shard.port is not None
        self._call(self.router.attach_shard(shard_id, self.host, shard.port))
        self.shards.append(shard)

    # -- policy-driven remediation ------------------------------------------------

    def _policy_loop(self) -> None:
        """The remediation thread: sample health, step policy, execute.

        The engine only *decides* (deterministically, from the sample
        stream); this loop is the executor that turns ``quarantine`` and
        ``restart`` decisions into link closures and process restarts.
        """

        while not self._policy_stop.wait(self._policy_interval):
            if self.router is None:
                continue
            try:
                sample = self._call(self.router.health_sample_async(), timeout=10.0)
            except Exception:
                continue
            for decision in self.policy.step(sample):
                sys.stderr.write(
                    "[policy] " + json.dumps(decision.payload(), sort_keys=True) + "\n"
                )
                sys.stderr.flush()
                try:
                    self._execute_decision(decision)
                except Exception:  # pragma: no cover - best-effort remediation
                    pass

    def _execute_decision(self, decision: Decision) -> None:
        """Carry out one policy decision against the router and shards."""

        if decision.action == "quarantine":
            self._call(
                self.router.quarantine_shard(decision.target, decision.reason),
                timeout=10.0,
            )
        elif decision.action == "restart":
            self._restart_shard(decision.target)

    def _restart_shard(self, shard_id: str) -> None:
        """Drain+restart one wedged shard and reattach it to the ring.

        The wedged process is resumed first (a SIGSTOPped child cannot
        act on SIGTERM), drained with a short deadline (escalating to
        SIGKILL), then replaced by a fresh shard under the same id; the
        reattach clears the router's lost-shard record, so the ring grows
        back to full strength.
        """

        try:
            old = self.shard(shard_id)
        except KeyError:
            return
        resume = getattr(old, "resume", None)
        if resume is not None:
            try:
                resume()
            except Exception:  # pragma: no cover - already dead
                pass
        try:
            old.stop(5.0)
        except Exception:  # pragma: no cover - best-effort reap
            pass
        replacement = self._make_shard(shard_id)
        replacement.start()
        assert replacement.port is not None
        self._call(
            self.router.attach_shard(shard_id, self.host, replacement.port),
            timeout=30.0,
        )
        self.shards[self.shards.index(old)] = replacement

    def decisions(self) -> List[Decision]:
        """Every decision the remediation policy engine has made so far."""

        return list(self.policy.log)

    def stop(self, timeout: float = 60.0) -> None:
        """Drain the router (which drains the shards), then reap everything."""

        self._policy_stop.set()
        if self._policy_thread is not None:
            self._policy_thread.join(timeout)
            self._policy_thread = None
        loop, router = self._loop, self.router
        if loop is not None and router is not None and not loop.is_closed():
            coroutine = router.drain()
            try:
                future = asyncio.run_coroutine_threadsafe(coroutine, loop)
            except RuntimeError:
                coroutine.close()
            else:
                try:
                    future.result(timeout)
                except Exception:  # pragma: no cover - slow/failed drain
                    pass
        for shard in self.shards:
            try:
                shard.stop()
            except Exception:  # pragma: no cover - best-effort reap
                pass
        if self._thread is not None:
            self._thread.join(timeout)

    # -- operations ---------------------------------------------------------------

    def shard(self, shard_id: str):
        """The shard handle with the given id (raises KeyError if unknown)."""

        for shard in self.shards:
            if shard.shard_id == shard_id:
                return shard
        raise KeyError(shard_id)

    def kill_shard(self, shard_id: str) -> None:
        """SIGKILL one shard (process backend): the "death" fault."""

        self.shard(shard_id).kill()

    def suspend_shard(self, shard_id: str) -> None:
        """SIGSTOP one shard (process backend): the "wedge" fault."""

        self.shard(shard_id).suspend()

    def resume_shard(self, shard_id: str) -> None:
        """SIGCONT a suspended shard (process backend)."""

        self.shard(shard_id).resume()

    def stats(self) -> Dict[str, Any]:
        """The fleet-wide stats snapshot, fetched thread-safely."""

        if self.router is None:
            raise RuntimeError("fleet is not running")
        return self._call(self.router.stats_snapshot_async())
