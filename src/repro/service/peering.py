"""The cache-peering protocol: a versioned ``cache-get``/``cache-put`` tier.

This is the fleet's shared cache plane (:mod:`repro.service.fleet`): every
backend shard that finishes a compile **puts** the deterministic answer
into one shared tier, and every shard (and the router itself) can **get**
it back — one shard's compile becomes every shard's cache hit.

The protocol is a peer-to-peer extension of the JSON-lines wire format of
:mod:`repro.service.protocol`, versioned independently
(:data:`PEERING_VERSION`): a connection opens with a ``peer-hello``
handshake, then carries ``cache-get`` / ``cache-put`` frames answered by
``cache-hit`` / ``cache-miss`` / ``cache-ok``.  Entries are keyed by the
full :func:`~repro.ir.fingerprint.procedure_cache_key` — a content
address, so a put can never poison a different request's answer — and the
stored value is the *deterministic* part of a compile response (the
``result`` payload plus the cold ``pass_seconds``), exactly what
:class:`~repro.service.protocol.CompileAnswer` needs to answer a request
without compiling.

Peering is an optimization, never a correctness dependency: every client
here treats a dead, slow or protocol-mismatched peer as a cache **miss**
(with a cooldown before reconnecting), and the serving path continues by
compiling locally.  Determinism makes that safe — a tier entry and a local
compile of the same key are byte-identical by construction.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
)

#: Bump on any incompatible change to the peering frames; the ``peer-hello``
#: handshake rejects mismatched peers instead of misreading their frames.
PEERING_VERSION = 1

#: Frame types a peering connection may carry after the handshake.
PEERING_FRAME_TYPES = ("cache-get", "cache-put", "cache-hit", "cache-miss", "cache-ok")

#: Default bound on tier entries held in memory (LRU beyond it).  Entries
#: are small JSON payloads (a few KB), so the default bounds the tier to
#: tens of MB.
DEFAULT_TIER_ENTRIES = 65536

#: Seconds a peer client stays disabled after a transport failure before
#: it tries to reconnect; while disabled every lookup is a miss.
PEER_RETRY_SECONDS = 5.0

#: Bound on one peer round trip; slower than this and the shard compiles
#: locally instead of waiting (a slow tier must not add tail latency).
PEER_TIMEOUT_SECONDS = 5.0


def parse_peer_address(spec: str) -> Tuple[str, int]:
    """Parse a ``host:port`` peer address (as passed to ``serve --peer``)."""

    host, separator, port_text = str(spec).rpartition(":")
    if not separator or not host:
        raise ValueError(f"peer address must be 'host:port', got {spec!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"peer address port must be an integer, got {spec!r}")
    if not 0 < port < 65536:
        raise ValueError(f"peer address port out of range: {spec!r}")
    return host, port


def peer_hello_message() -> Dict[str, Any]:
    """Build the ``peer-hello`` handshake frame (both directions)."""

    return {"type": "peer-hello", "peering": PEERING_VERSION}


def parse_peer_hello(message: Mapping[str, Any]) -> int:
    """Validate a ``peer-hello``; returns the peer's peering version."""

    if message.get("type") != "peer-hello":
        raise ProtocolError(
            "first peering frame must be a 'peer-hello' handshake", code="protocol"
        )
    unknown = sorted(set(message) - {"type", "peering", "peer"})
    if unknown:
        raise ProtocolError(
            f"peer-hello has unknown field(s): {', '.join(unknown)}", code="protocol"
        )
    version = message.get("peering")
    if not isinstance(version, int) or isinstance(version, bool):
        raise ProtocolError("peer-hello 'peering' must be an integer", code="protocol")
    return version


def cache_get_message(request_id: str, key: str) -> Dict[str, Any]:
    """Build a ``cache-get`` frame for ``key``."""

    return {"type": "cache-get", "id": request_id, "key": key}


def cache_put_message(
    request_id: str, key: str, entry: Mapping[str, Any]
) -> Dict[str, Any]:
    """Build a ``cache-put`` frame storing ``entry`` under ``key``."""

    return {"type": "cache-put", "id": request_id, "key": key, "entry": dict(entry)}


def validate_entry(entry: Any) -> Dict[str, Any]:
    """Strictly validate one tier entry (the deterministic answer payload).

    An entry is ``{"result": <object>, "pass_seconds": <object>}`` — the
    two pieces a :class:`~repro.service.protocol.CompileAnswer` replays on
    a hit.  Anything else is a :class:`ProtocolError`.
    """

    if not isinstance(entry, Mapping):
        raise ProtocolError("peering entry must be an object")
    unknown = sorted(set(entry) - {"result", "pass_seconds"})
    if unknown:
        raise ProtocolError(f"peering entry has unknown field(s): {', '.join(unknown)}")
    result = entry.get("result")
    if not isinstance(result, Mapping):
        raise ProtocolError("peering entry 'result' must be an object")
    pass_seconds = entry.get("pass_seconds", {})
    if not isinstance(pass_seconds, Mapping):
        raise ProtocolError("peering entry 'pass_seconds' must be an object")
    return {"result": dict(result), "pass_seconds": dict(pass_seconds)}


def parse_peering_frame(message: Mapping[str, Any]) -> Tuple[str, str, str, Any]:
    """Validate one post-handshake peering frame.

    Returns ``(type, id, key, entry)`` where ``entry`` is only non-None
    for ``cache-put``/``cache-hit`` frames.
    """

    kind = message.get("type")
    if kind not in PEERING_FRAME_TYPES:
        raise ProtocolError(f"unknown peering frame type {kind!r}")
    allowed = {"type", "id", "key"}
    if kind in ("cache-put", "cache-hit"):
        allowed.add("entry")
    if kind == "cache-ok":
        allowed.add("stored")
    unknown = sorted(set(message) - allowed)
    if unknown:
        raise ProtocolError(f"{kind} frame has unknown field(s): {', '.join(unknown)}")
    request_id = message.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError(f"{kind} frame 'id' must be a non-empty string")
    key = message.get("key", "")
    if kind != "cache-ok" and (not isinstance(key, str) or not key):
        raise ProtocolError(f"{kind} frame 'key' must be a non-empty string")
    entry = None
    if kind in ("cache-put", "cache-hit"):
        entry = validate_entry(message.get("entry"))
    return kind, request_id, str(key), entry


# ---------------------------------------------------------------------------
# The shared tier.
# ---------------------------------------------------------------------------


@dataclass
class TierStats:
    """Counters of one :class:`SharedCacheTier` (per process, not persisted)."""

    gets: int = 0
    hits: int = 0
    misses: int = 0
    puts: int = 0
    stored: int = 0
    duplicate_puts: int = 0
    evictions: int = 0
    protocol_errors: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of gets answered from the tier (0.0 with no gets)."""

        return self.hits / self.gets if self.gets else 0.0


class SharedCacheTier:
    """The in-memory shared cache tier the router hosts for its shards.

    A bounded LRU mapping of cache key → entry.  Single-threaded by
    design: the router only touches it from its event loop (the peering
    server below and the router's own admission-time lookups run on the
    same loop), so no locking is needed.  Entries are treated as
    immutable; duplicate puts of a key are idempotent by determinism
    (same key ⇒ same bytes) and only counted.
    """

    def __init__(self, max_entries: int = DEFAULT_TIER_ENTRIES):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries!r}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.stats = TierStats()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The entry stored under ``key``, or None (counted either way)."""

        self.stats.gets += 1
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: str, entry: Mapping[str, Any]) -> bool:
        """Store ``entry`` under ``key``; returns False for a duplicate."""

        self.stats.puts += 1
        if key in self._entries:
            self.stats.duplicate_puts += 1
            self._entries.move_to_end(key)
            return False
        self._entries[key] = dict(entry)
        self.stats.stored += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return True

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable view of the tier (for fleet stats)."""

        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "gets": self.stats.gets,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "hit_rate": round(self.stats.hit_rate, 4),
            "puts": self.stats.puts,
            "stored": self.stats.stored,
            "duplicate_puts": self.stats.duplicate_puts,
            "evictions": self.stats.evictions,
            "protocol_errors": self.stats.protocol_errors,
        }


async def serve_peering_connection(
    tier: SharedCacheTier,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one peering connection against ``tier`` until EOF.

    The handler the router mounts on its peering port: ``peer-hello``
    handshake (version-checked), then ``cache-get``/``cache-put`` frames.
    Protocol violations are answered with an ``error`` frame and, for
    handshake violations, the connection is dropped — exactly the posture
    of the main protocol.
    """

    greeted = False
    try:
        while True:
            try:
                line = await reader.readline()
            except (ConnectionResetError, ValueError, asyncio.IncompleteReadError):
                break
            if not line:
                break
            if not line.strip():
                continue
            try:
                message = decode_message(line)
                if not greeted:
                    version = parse_peer_hello(message)
                    if version != PEERING_VERSION:
                        raise ProtocolError(
                            f"peering version mismatch: peer speaks {version}, "
                            f"tier speaks {PEERING_VERSION}",
                            code="protocol",
                        )
                    greeted = True
                    writer.write(encode_message(peer_hello_message()))
                    await writer.drain()
                    continue
                kind, request_id, key, entry = parse_peering_frame(message)
            except ProtocolError as exc:
                tier.stats.protocol_errors += 1
                try:
                    writer.write(
                        encode_message(
                            {"type": "error", "code": exc.code, "message": str(exc)}
                        )
                    )
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    break
                if exc.code == "protocol":
                    break
                continue
            if kind == "cache-get":
                found = tier.get(key)
                if found is None:
                    response: Dict[str, Any] = {
                        "type": "cache-miss",
                        "id": request_id,
                        "key": key,
                    }
                else:
                    response = {
                        "type": "cache-hit",
                        "id": request_id,
                        "key": key,
                        "entry": found,
                    }
            elif kind == "cache-put":
                stored = tier.put(key, entry)
                response = {"type": "cache-ok", "id": request_id, "stored": stored}
            else:
                # A client-side frame type sent to the tier.
                tier.stats.protocol_errors += 1
                response = {
                    "type": "error",
                    "code": "bad_request",
                    "message": f"tier does not accept {kind!r} frames",
                }
            try:
                writer.write(encode_message(response))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                break
    finally:
        try:
            writer.close()
        except Exception:  # pragma: no cover - best-effort close
            pass


# ---------------------------------------------------------------------------
# The shard-side client.
# ---------------------------------------------------------------------------


class PeerCacheClient:
    """A shard's connection to the shared tier (lazy, failure-tolerant).

    Lives on the shard server's event loop.  The connection is opened on
    first use and re-opened after :data:`PEER_RETRY_SECONDS` following any
    transport failure; while the peer is unreachable every :meth:`get` is
    a miss and every :meth:`put` a no-op.  Requests are id-demultiplexed,
    so concurrent gets and puts share one connection without blocking each
    other.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = PEER_TIMEOUT_SECONDS,
        retry_seconds: float = PEER_RETRY_SECONDS,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry_seconds = retry_seconds
        self.gets = 0
        self.hits = 0
        self.puts = 0
        self.errors = 0
        self._counter = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._disabled_until = 0.0
        self._connect_lock = asyncio.Lock()

    def _next_id(self) -> str:
        self._counter += 1
        return f"p{self._counter}"

    async def _ensure_connected(self) -> bool:
        """Open the connection (handshake included) unless in cooldown."""

        if self._writer is not None:
            return True
        if time.monotonic() < self._disabled_until:
            return False
        async with self._connect_lock:
            if self._writer is not None:
                return True
            if time.monotonic() < self._disabled_until:
                return False
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(
                        self.host, self.port, limit=MAX_FRAME_BYTES + 1024
                    ),
                    timeout=self.timeout,
                )
                writer.write(encode_message(peer_hello_message()))
                await asyncio.wait_for(writer.drain(), timeout=self.timeout)
                line = await asyncio.wait_for(reader.readline(), timeout=self.timeout)
                reply = decode_message(line)
                if parse_peer_hello(reply) != PEERING_VERSION:
                    raise ProtocolError("peering version mismatch", code="protocol")
            except Exception:
                self.errors += 1
                self._disabled_until = time.monotonic() + self.retry_seconds
                return False
            self._reader = reader
            self._writer = writer
            self._reader_task = asyncio.ensure_future(self._read_loop())
            return True

    async def _read_loop(self) -> None:
        assert self._reader is not None
        while True:
            try:
                line = await self._reader.readline()
            except (ConnectionResetError, ValueError, asyncio.CancelledError):
                break
            if not line:
                break
            try:
                message = decode_message(line)
            except ProtocolError:
                self.errors += 1
                continue
            future = self._pending.pop(message.get("id"), None)
            if future is not None and not future.done():
                future.set_result(message)
        self._teardown(ConnectionError("peer connection closed"))

    def _teardown(self, exc: BaseException) -> None:
        """Drop the connection, fail in-flight frames, start the cooldown."""

        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:  # pragma: no cover - best-effort close
                pass
        self._reader = None
        self._writer = None
        self._disabled_until = time.monotonic() + self.retry_seconds
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def _roundtrip(self, message: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """One frame out, the matching frame back; None on any failure."""

        if not await self._ensure_connected():
            return None
        assert self._writer is not None
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[message["id"]] = future
        try:
            self._writer.write(encode_message(message))
            await asyncio.wait_for(self._writer.drain(), timeout=self.timeout)
            return await asyncio.wait_for(future, timeout=self.timeout)
        except Exception:
            self.errors += 1
            self._pending.pop(message["id"], None)
            self._teardown(ConnectionError("peer round trip failed"))
            return None

    async def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Fetch the tier entry for ``key``; None on a miss *or* any failure."""

        self.gets += 1
        response = await self._roundtrip(cache_get_message(self._next_id(), key))
        if response is None or response.get("type") != "cache-hit":
            return None
        try:
            entry = validate_entry(response.get("entry"))
        except ProtocolError:
            self.errors += 1
            return None
        self.hits += 1
        return entry

    async def put(self, key: str, entry: Mapping[str, Any]) -> None:
        """Publish ``entry`` under ``key`` (best-effort, never raises)."""

        self.puts += 1
        await self._roundtrip(cache_put_message(self._next_id(), key, entry))

    async def close(self) -> None:
        """Close the connection (idempotent)."""

        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # pragma: no cover
                pass
            self._reader_task = None
        self._teardown(ConnectionError("peer client closed"))
        # Closing is deliberate: do not serve a cooldown for it.
        self._disabled_until = 0.0

    def snapshot(self) -> Dict[str, Any]:
        """Counters for the shard's stats snapshot."""

        return {
            "host": self.host,
            "port": self.port,
            "connected": self._writer is not None,
            "gets": self.gets,
            "hits": self.hits,
            "puts": self.puts,
            "errors": self.errors,
        }
