"""The compile service wire protocol: versioned JSON-lines messages.

The server (:mod:`repro.service.server`) and clients
(:mod:`repro.service.client`) speak newline-delimited JSON over a stream
socket.  Every connection opens with a **handshake**: the client's first
message must be a ``hello`` carrying :data:`PROTOCOL_VERSION`; the server
answers with its own ``hello`` (or a ``protocol`` error, closing the
connection, on a version mismatch).  After the handshake the client sends
request messages and the server answers each one — responses to *compile*
requests may arrive in a different order than the requests were sent
(batching reorders work), so every request carries a client-chosen ``id``
that the matching response echoes.

Message types
-------------

``hello``
    handshake (both directions);
``compile``
    compile one procedure — either inline textual IR or a reference into
    the scenario registry (``scenario:<family>:<seed>[:<index>]``) or the
    workload catalog (``catalog:<name>[:<seed>[:<index>]]``) — on a
    named target with a named cost model; answered by ``result`` or
    ``error``;
``stats``
    fetch the server's metrics snapshot (:mod:`repro.service.metrics`);
``metrics``
    fetch the Prometheus-style plaintext rendering of the same snapshot
    (``metrics-text/v1``; :func:`repro.service.health.render_metrics_text`),
    answered as ``{"type": "metrics", "schema": ..., "text": ...}``;
``shutdown``
    ask the server to drain gracefully (stop admitting, finish queued
    work, close);
``result`` / ``error``
    server answers.  ``error`` codes: ``bad_request`` (malformed or
    unresolvable request), ``overloaded`` (admission queue full — retry
    later), ``shutting_down`` (server is draining), ``protocol``
    (handshake violation), ``internal`` (unexpected server failure).

Determinism contract
--------------------

The ``result`` field of a compile response is **bit-identical** to what a
direct :func:`repro.pipeline.compiler.compile_many` call produces for the
same (program, target, techniques, profile): it is built by
:func:`result_payload` from the same :class:`CompiledProcedure`, and JSON
round-trips Python floats exactly (shortest-repr encoding), so equality
survives the wire.  Timing and service metadata (queue latency, cache and
coalesce status) live *outside* ``result`` — they legitimately differ
between a compiled, a cached and a coalesced answer to the same request.

Everything here is standard library only and validation is strict: unknown
message types, unknown fields, wrong value types and out-of-range values
are all :class:`ProtocolError`\\ s, never silently ignored.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.ir.fingerprint import (
    compile_options_token,
    fingerprint_function,
    fingerprint_profile,
    procedure_cache_key,
)
from repro.ir.function import Function
from repro.ir.parser import IRParseError, parse_module
from repro.ir.passes import ensure_single_exit
from repro.ir.verifier import IRVerificationError, verify_function
from repro.pipeline.compiler import TECHNIQUES, CompiledProcedure
from repro.profiling.profile_data import EdgeProfile, ProfileError
from repro.profiling.synthetic import (
    profile_from_branch_probabilities,
    uniform_profile,
)
from repro.spill.cost_models import make_cost_model
from repro.target.machine import MachineDescription
from repro.target.registry import DEFAULT_TARGET, available_targets, resolve_target
from repro.workloads.catalog import get_catalog
from repro.workloads.scenarios import get_scenario, scenario_names

#: Bump on any incompatible wire-format change; the handshake rejects
#: mismatched peers instead of misreading their messages.
PROTOCOL_VERSION = 1

#: Schema tag carried inside every compile ``result`` payload.
RESULT_SCHEMA = "service-result/v1"

#: Cost models a request may name (the registered, cache-keyable ones).
COST_MODELS = ("jump_edge", "execution_count")

#: Cache policies a compile request may ask for.
CACHE_POLICIES = ("use", "bypass")

#: Lint policies a compile request may carry on the wire.  ``off`` is the
#: default and is never serialized, so pre-lint request signatures (and
#: hence coalescing and duplicate-consistency checks) are byte-unchanged.
LINT_WIRE_POLICIES = ("off", "strict")

#: Schema tag carried inside every ``lint`` result payload (shared with
#: the CLI's ``--json`` output; see :mod:`repro.lint.engine`).
LINT_RESULT_SCHEMA = "lint-report/v1"

#: Invocation count assumed for inline-IR requests without a profile.
DEFAULT_INVOCATIONS = 1000.0

#: Error codes the server may answer with.
ERROR_CODES = (
    "bad_request",
    "overloaded",
    "shutting_down",
    "protocol",
    "internal",
    "lint_rejected",
)


class ProtocolError(ValueError):
    """A malformed or invalid protocol message.

    ``code`` is the error code the server reports it under (usually
    ``bad_request``; ``protocol`` for handshake violations).
    """

    def __init__(self, message: str, code: str = "bad_request"):
        super().__init__(message)
        self.code = code


# ---------------------------------------------------------------------------
# Framing.
# ---------------------------------------------------------------------------


#: Upper bound on one JSON-lines frame (guards the server against a client
#: streaming an unbounded line into memory).
MAX_FRAME_BYTES = 4 * 1024 * 1024


def encode_message(message: Mapping[str, Any]) -> bytes:
    """Serialize one message to a JSON line (UTF-8, trailing newline).

    Keys are sorted so identical messages are byte-identical on the wire —
    the property the duplicate-response consistency checks rely on.
    """

    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one JSON line into a message dict (strictly an object)."""

    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


# ---------------------------------------------------------------------------
# Field validation helpers.
# ---------------------------------------------------------------------------


def _require_str(message: Mapping[str, Any], key: str, default: Optional[str] = None) -> str:
    value = message.get(key, default)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"field {key!r} must be a non-empty string")
    return value


def _check_fields(message: Mapping[str, Any], allowed: Sequence[str], kind: str) -> None:
    unknown = sorted(set(message) - set(allowed) - {"type"})
    if unknown:
        raise ProtocolError(f"{kind} request has unknown field(s): {', '.join(unknown)}")


# ---------------------------------------------------------------------------
# Requests.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompileRequest:
    """One validated compile request (wire form, not yet resolved to IR).

    ``program`` is exactly one of ``{"ir": <text>}`` or
    ``{"scenario": "family:seed[:index]"}``.  ``profile`` (inline-IR
    programs only) follows the corpus sidecar shape:
    ``{"invocations": <float>, "probabilities": {"src->dst": <p>, ...}}``.
    """

    id: str
    program: Mapping[str, Any]
    target: str = DEFAULT_TARGET
    cost_model: str = "jump_edge"
    techniques: Tuple[str, ...] = TECHNIQUES
    profile: Optional[Mapping[str, Any]] = None
    cache: str = "use"
    #: ``"off"`` (default) or ``"strict"``; strict requests are answered
    #: with a ``lint_rejected`` error carrying the structured report when
    #: the resolved IR has error-severity diagnostics.
    lint: str = "off"

    def to_message(self) -> Dict[str, Any]:
        """The wire form of this request.

        ``lint`` is serialized only when non-default so that requests not
        using the option are byte-identical to protocol-v1 requests.
        """

        message: Dict[str, Any] = {
            "type": "compile",
            "id": self.id,
            "program": dict(self.program),
            "target": self.target,
            "cost_model": self.cost_model,
            "techniques": list(self.techniques),
            "cache": self.cache,
        }
        if self.profile is not None:
            message["profile"] = dict(self.profile)
        if self.lint != "off":
            message["lint"] = self.lint
        return message

    def signature(self) -> str:
        """A canonical byte-stable identity of the request *work* (id excluded).

        Two requests with equal signatures must receive byte-identical
        ``result`` payloads — the consistency invariant the load harness
        checks across duplicates, coalesced answers and cache replays.
        """

        payload = self.to_message()
        del payload["id"]
        return json.dumps(payload, sort_keys=True)


def parse_compile_request(message: Mapping[str, Any]) -> CompileRequest:
    """Strictly validate a ``compile`` message into a :class:`CompileRequest`."""

    _check_fields(
        message,
        ("id", "program", "target", "cost_model", "techniques", "profile", "cache", "lint"),
        "compile",
    )
    request_id = _require_str(message, "id")
    program = message.get("program")
    if not isinstance(program, Mapping):
        raise ProtocolError("field 'program' must be an object")
    keys = sorted(program)
    if keys not in (["ir"], ["scenario"], ["catalog"]):
        raise ProtocolError(
            "field 'program' must have exactly one of the keys "
            "'ir', 'scenario' or 'catalog'"
        )
    if not isinstance(program[keys[0]], str) or not program[keys[0]]:
        raise ProtocolError(f"program {keys[0]!r} must be a non-empty string")

    target = _require_str(message, "target", DEFAULT_TARGET)
    if target not in available_targets():
        raise ProtocolError(
            f"unknown target {target!r}; expected one of {', '.join(available_targets())}"
        )
    cost_model = _require_str(message, "cost_model", "jump_edge")
    if cost_model not in COST_MODELS:
        raise ProtocolError(
            f"unknown cost model {cost_model!r}; expected one of {', '.join(COST_MODELS)}"
        )
    techniques = message.get("techniques", list(TECHNIQUES))
    if (
        not isinstance(techniques, (list, tuple))
        or not techniques
        or not all(isinstance(t, str) for t in techniques)
    ):
        raise ProtocolError("field 'techniques' must be a non-empty list of strings")
    unknown = [t for t in techniques if t not in TECHNIQUES]
    if unknown:
        raise ProtocolError(
            f"unknown technique(s) {', '.join(unknown)}; expected a subset of "
            + ", ".join(TECHNIQUES)
        )
    if len(set(techniques)) != len(techniques):
        raise ProtocolError("field 'techniques' must not repeat entries")

    cache = _require_str(message, "cache", "use")
    if cache not in CACHE_POLICIES:
        raise ProtocolError(
            f"unknown cache policy {cache!r}; expected one of {', '.join(CACHE_POLICIES)}"
        )

    lint = _require_str(message, "lint", "off")
    if lint not in LINT_WIRE_POLICIES:
        raise ProtocolError(
            f"unknown lint policy {lint!r}; expected one of {', '.join(LINT_WIRE_POLICIES)}"
        )

    profile = message.get("profile")
    if profile is not None:
        if "ir" not in program:
            raise ProtocolError("field 'profile' is only valid for inline-IR programs")
        if not isinstance(profile, Mapping):
            raise ProtocolError("field 'profile' must be an object")
        extra = sorted(set(profile) - {"invocations", "probabilities"})
        if extra:
            raise ProtocolError(f"profile has unknown field(s): {', '.join(extra)}")
        invocations = profile.get("invocations", DEFAULT_INVOCATIONS)
        if not isinstance(invocations, (int, float)) or isinstance(invocations, bool):
            raise ProtocolError("profile 'invocations' must be a number")
        if invocations <= 0:
            raise ProtocolError("profile 'invocations' must be positive")
        probabilities = profile.get("probabilities", {})
        if not isinstance(probabilities, Mapping):
            raise ProtocolError("profile 'probabilities' must be an object")
        for key, value in probabilities.items():
            if not isinstance(key, str) or "->" not in key:
                raise ProtocolError(
                    f"profile probability key {key!r} must look like 'src->dst'"
                )
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or not 0.0 <= float(value) <= 1.0
            ):
                raise ProtocolError(
                    f"profile probability for {key!r} must be a number in [0, 1]"
                )

    return CompileRequest(
        id=request_id,
        program=dict(program),
        target=target,
        cost_model=cost_model,
        techniques=tuple(techniques),
        profile=dict(profile) if profile is not None else None,
        cache=cache,
        lint=lint,
    )


def parse_hello(message: Mapping[str, Any]) -> int:
    """Validate a ``hello`` message; returns the peer's protocol version."""

    _check_fields(message, ("protocol", "server", "client"), "hello")
    version = message.get("protocol")
    if not isinstance(version, int) or isinstance(version, bool):
        raise ProtocolError("hello 'protocol' must be an integer", code="protocol")
    return version


def hello_message(server_info: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    """Build a ``hello`` message (client side when ``server_info`` is None)."""

    message: Dict[str, Any] = {"type": "hello", "protocol": PROTOCOL_VERSION}
    if server_info is not None:
        message["server"] = dict(server_info)
    return message


def error_message(
    code: str,
    message: str,
    request_id: Optional[str] = None,
    diagnostics: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Build an ``error`` response.

    ``diagnostics`` attaches a structured payload to the error —
    ``lint_rejected`` errors carry the full lint report this way, the
    exact object the CLI's ``--json`` mode prints for the same IR.
    """

    assert code in ERROR_CODES, code
    payload: Dict[str, Any] = {"type": "error", "code": code, "message": message}
    if request_id is not None:
        payload["id"] = request_id
    if diagnostics is not None:
        payload["diagnostics"] = dict(diagnostics)
    return payload


# ---------------------------------------------------------------------------
# Request resolution: wire form -> compilable work.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResolvedCompile:
    """A compile request resolved to concrete pipeline inputs.

    Shared by the server, the test oracle and the load generator's
    ``--check`` mode, so all three agree byte-for-byte on what a request
    means.  ``options_key`` groups requests that can share one
    :func:`~repro.pipeline.compiler.compile_many` batch; ``cache_key`` is
    the content address (and in-flight coalescing key) of the work;
    ``coalesce_key`` additionally namespaces the cache policy so a
    ``bypass`` request never rides a ``use`` entry (results would be
    identical, but the service metadata must stay truthful).
    """

    request: CompileRequest
    function: Function
    profile: EdgeProfile
    machine: MachineDescription
    cache_key: str
    function_fingerprint: str
    profile_fingerprint: str

    @property
    def options_key(self) -> Tuple[str, str, Tuple[str, ...], str]:
        """Batch-grouping key: requests sharing it compile in one batch."""

        return (
            self.request.target,
            self.request.cost_model,
            tuple(self.request.techniques),
            self.request.cache,
        )

    @property
    def coalesce_key(self) -> str:
        """In-flight coalescing key (cache key namespaced by cache policy)."""

        return f"{self.request.cache}:{self.cache_key}"


def _reference_error(kind: str, reference: str, detail: str) -> ProtocolError:
    """The one error shape every program-reference failure uses.

    Mirrors the inline-IR failures (``IR does not parse: <detail>``) so a
    malformed reference echoes the same context — the full reference plus a
    specific reason — on the CLI and service paths alike, byte-for-byte.
    """

    return ProtocolError(f"{kind} reference {reference!r} does not resolve: {detail}")


def _parse_program_reference(
    kind: str, reference: str, grammar: str, names: Sequence[str],
    seed_required: bool,
) -> Tuple[str, int, int]:
    """Split ``<kind>:<name>[:<seed>[:<index>]]`` with unified errors."""

    parts = reference.split(":")
    if parts and parts[0] == kind:
        parts = parts[1:]
    allowed = (2, 3) if seed_required else (1, 2, 3)
    if len(parts) not in allowed:
        raise _reference_error(kind, reference, f"expected {grammar!r}")
    name = parts[0]
    if name not in names:
        raise _reference_error(
            kind,
            reference,
            f"unknown {kind} name {name!r}; expected one of " + ", ".join(names),
        )
    try:
        seed = int(parts[1]) if len(parts) >= 2 else 0
        index = int(parts[2]) if len(parts) == 3 else 0
    except ValueError:
        raise _reference_error(kind, reference, "non-integer seed/index") from None
    if index < 0:
        raise _reference_error(kind, reference, f"index must be >= 0, got {index}")
    return name, seed, index


def _parse_scenario_reference(reference: str) -> Tuple[str, int, int]:
    """Split ``scenario:<family>:<seed>[:<index>]`` (prefix optional)."""

    return _parse_program_reference(
        "scenario",
        reference,
        "scenario:<family>:<seed>[:<index>]",
        scenario_names(),
        seed_required=True,
    )


def _parse_catalog_reference(reference: str) -> Tuple[str, int, int]:
    """Split ``catalog:<name>[:<seed>[:<index>]]`` (prefix optional).

    ``<name>`` is a combination code or a legacy alias; unlike scenario
    references the seed defaults to 0, so ``catalog:gcd1_MD_RED`` alone is a
    complete reference.
    """

    catalog = get_catalog()
    return _parse_program_reference(
        "catalog",
        reference,
        "catalog:<name>[:<seed>[:<index>]]",
        tuple(catalog.names()) + tuple(sorted(catalog.aliases)),
        seed_required=False,
    )


def _resolve_program(
    program: Mapping[str, Any],
    profile_spec: Optional[Mapping[str, Any]],
    machine: MachineDescription,
) -> Tuple[Function, EdgeProfile]:
    """Resolve a request's ``program`` (+ optional profile) to pipeline inputs.

    Shared by compile and lint resolution so both request types agree
    byte-for-byte on what a program reference means.
    """

    if "scenario" in program:
        family_name, seed, index = _parse_scenario_reference(program["scenario"])
        generated = get_scenario(family_name).builder(seed, index, machine)
        return generated.function, generated.profile
    if "catalog" in program:
        reference = program["catalog"]
        name, seed, index = _parse_catalog_reference(reference)
        entry = get_catalog().resolve(name)
        generated = entry.build(seed, index, machine)
        return generated.function, generated.profile
    try:
        module = parse_module(program["ir"])
    except IRParseError as exc:
        raise ProtocolError(f"IR does not parse: {exc}") from None
    if len(module.functions) != 1:
        raise ProtocolError(
            f"program must contain exactly one function, got {len(module.functions)}"
        )
    function = module.functions[0]
    ensure_single_exit(function)
    try:
        verify_function(function, require_single_exit=True)
    except IRVerificationError as exc:
        raise ProtocolError(f"IR does not verify: {exc}") from None
    try:
        if profile_spec is not None:
            probabilities = {
                tuple(key.split("->", 1)): float(value)
                for key, value in profile_spec.get("probabilities", {}).items()
            }
            profile = profile_from_branch_probabilities(
                function,
                invocations=float(
                    profile_spec.get("invocations", DEFAULT_INVOCATIONS)
                ),
                probabilities=probabilities,
            )
        else:
            profile = uniform_profile(function, invocations=DEFAULT_INVOCATIONS)
    except ProfileError as exc:
        raise ProtocolError(f"profile is inconsistent: {exc}") from None
    return function, profile


def resolve_compile_request(request: CompileRequest) -> ResolvedCompile:
    """Turn a validated request into concrete, fingerprinted pipeline inputs.

    Raises :class:`ProtocolError` (``bad_request``) for IR that does not
    parse or verify, profiles whose flow equations are inconsistent, and
    malformed scenario references.  The resolution is deterministic: the
    same request always resolves to a function/profile pair with the same
    fingerprints, on every host — that is what makes the cache key a
    correct coalescing key.
    """

    machine = resolve_target(request.target)
    function, profile = _resolve_program(request.program, request.profile, machine)
    cost_model = make_cost_model(request.cost_model, machine)
    token = compile_options_token(
        machine, cost_model, request.techniques, True, True
    )
    # Named cost models always have an identity, so the token never misses.
    assert token is not None
    key = procedure_cache_key(function, profile, token, kind="compile")
    return ResolvedCompile(
        request=request,
        function=function,
        profile=profile,
        machine=machine,
        cache_key=key,
        function_fingerprint=fingerprint_function(function),
        profile_fingerprint=fingerprint_profile(profile),
    )


# ---------------------------------------------------------------------------
# Lint requests: same resolution, pure analysis instead of a compile.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LintRequest:
    """One validated ``lint`` request (wire form).

    Shares the ``program``/``target``/``profile`` vocabulary of compile
    requests; ``select``/``ignore`` mirror the CLI flags and restrict the
    rule set.  Lint reports are pure functions of (IR, profile, target,
    enabled rules), so the request is cacheable and fleet-routable exactly
    like a compile.
    """

    id: str
    program: Mapping[str, Any]
    target: str = DEFAULT_TARGET
    profile: Optional[Mapping[str, Any]] = None
    select: Optional[Tuple[str, ...]] = None
    ignore: Optional[Tuple[str, ...]] = None
    cache: str = "use"

    def to_message(self) -> Dict[str, Any]:
        """The wire form of this request."""

        message: Dict[str, Any] = {
            "type": "lint",
            "id": self.id,
            "program": dict(self.program),
            "target": self.target,
            "cache": self.cache,
        }
        if self.profile is not None:
            message["profile"] = dict(self.profile)
        if self.select is not None:
            message["select"] = list(self.select)
        if self.ignore is not None:
            message["ignore"] = list(self.ignore)
        return message

    def signature(self) -> str:
        """Canonical byte-stable identity of the request work (id excluded)."""

        payload = self.to_message()
        del payload["id"]
        return json.dumps(payload, sort_keys=True)


def _parse_rule_codes(message: Mapping[str, Any], key: str) -> Optional[Tuple[str, ...]]:
    value = message.get(key)
    if value is None:
        return None
    if (
        not isinstance(value, (list, tuple))
        or not value
        or not all(isinstance(code, str) for code in value)
    ):
        raise ProtocolError(f"field {key!r} must be a non-empty list of rule codes")
    return tuple(value)


def parse_lint_request(message: Mapping[str, Any]) -> LintRequest:
    """Strictly validate a ``lint`` message into a :class:`LintRequest`."""

    _check_fields(
        message, ("id", "program", "target", "profile", "select", "ignore", "cache"), "lint"
    )
    request_id = _require_str(message, "id")
    program = message.get("program")
    if not isinstance(program, Mapping):
        raise ProtocolError("field 'program' must be an object")
    keys = sorted(program)
    if keys not in (["ir"], ["scenario"], ["catalog"]):
        raise ProtocolError(
            "field 'program' must have exactly one of the keys "
            "'ir', 'scenario' or 'catalog'"
        )
    if not isinstance(program[keys[0]], str) or not program[keys[0]]:
        raise ProtocolError(f"program {keys[0]!r} must be a non-empty string")
    target = _require_str(message, "target", DEFAULT_TARGET)
    if target not in available_targets():
        raise ProtocolError(
            f"unknown target {target!r}; expected one of {', '.join(available_targets())}"
        )
    cache = _require_str(message, "cache", "use")
    if cache not in CACHE_POLICIES:
        raise ProtocolError(
            f"unknown cache policy {cache!r}; expected one of {', '.join(CACHE_POLICIES)}"
        )
    profile = message.get("profile")
    if profile is not None and not isinstance(profile, Mapping):
        raise ProtocolError("field 'profile' must be an object")
    select = _parse_rule_codes(message, "select")
    ignore = _parse_rule_codes(message, "ignore")
    return LintRequest(
        id=request_id,
        program=dict(program),
        target=target,
        profile=dict(profile) if profile is not None else None,
        select=select,
        ignore=ignore,
        cache=cache,
    )


@dataclass(frozen=True)
class ResolvedLint:
    """A lint request resolved to concrete analysis inputs plus its cache key."""

    request: LintRequest
    function: Function
    profile: EdgeProfile
    machine: MachineDescription
    cache_key: str

    @property
    def coalesce_key(self) -> str:
        """In-flight coalescing key (cache key namespaced by cache policy)."""

        return f"{self.request.cache}:{self.cache_key}"


def resolve_lint_request(request: LintRequest) -> ResolvedLint:
    """Resolve a lint request through the same program resolution as compiles.

    Unknown rule codes in ``select``/``ignore`` are ``bad_request``\\ s,
    reported here (resolution time) rather than from inside the worker.
    """

    from repro.lint import LintConfigError, lint_cache_key, resolve_rule_codes

    machine = resolve_target(request.target)
    function, profile = _resolve_program(request.program, request.profile, machine)
    try:
        resolve_rule_codes(request.select, request.ignore)
    except LintConfigError as exc:
        raise ProtocolError(str(exc)) from None
    key = lint_cache_key(
        function, profile, machine, select=request.select, ignore=request.ignore
    )
    return ResolvedLint(
        request=request,
        function=function,
        profile=profile,
        machine=machine,
        cache_key=key,
    )


def run_lint_request(resolved: ResolvedLint) -> Dict[str, Any]:
    """Execute a resolved lint request; returns the deterministic payload.

    The payload is exactly :meth:`repro.lint.LintReport.payload` — the
    same object the CLI's ``--json`` mode emits for the same inputs, which
    is what the byte-identity service tests compare against.
    """

    from repro.lint import lint_function

    report = lint_function(
        resolved.function,
        profile=resolved.profile,
        machine=resolved.machine,
        select=resolved.request.select,
        ignore=resolved.request.ignore,
    )
    return report.payload()


def compile_lint_rejection(resolved: ResolvedCompile) -> Optional[Dict[str, Any]]:
    """Apply a strict compile request's lint gate.

    Returns ``None`` when the procedure passes (or the request did not ask
    for linting); otherwise the structured rejection payload for a
    ``lint_rejected`` error — byte-identical to what
    :class:`repro.lint.LintError` carries for the same IR in the pipeline.
    """

    if resolved.request.lint != "strict":
        return None
    from repro.lint import lint_function, LintError

    report = lint_function(
        resolved.function, profile=resolved.profile, machine=resolved.machine
    )
    if not report.has_errors():
        return None
    return LintError([report]).payload()


# ---------------------------------------------------------------------------
# Responses.
# ---------------------------------------------------------------------------


def result_payload(resolved: ResolvedCompile, compiled: CompiledProcedure) -> Dict[str, Any]:
    """The deterministic ``result`` payload of one compile.

    Built from the same :class:`CompiledProcedure` a direct
    :func:`~repro.pipeline.compiler.compile_many` produces, and containing
    only deterministic quantities — overheads, fingerprints, structure
    counts — never timing.  This function *is* the bit-identity contract:
    the property tests compare the server's payload against one computed
    locally through this same function.
    """

    request = resolved.request
    techniques_overhead: Dict[str, Any] = {}
    for technique in request.techniques:
        overhead = compiled.outcomes[technique].overhead
        techniques_overhead[technique] = {
            "save_count": overhead.save_count,
            "restore_count": overhead.restore_count,
            "jump_count": overhead.jump_count,
            "num_jump_blocks": overhead.num_jump_blocks,
            "callee_saved_total": overhead.total,
            "total_overhead": compiled.total_overhead(technique),
        }
    return {
        "schema": RESULT_SCHEMA,
        "name": compiled.name,
        "target": request.target,
        "cost_model": request.cost_model,
        "techniques": list(request.techniques),
        "fingerprints": {
            "function": resolved.function_fingerprint,
            "profile": resolved.profile_fingerprint,
            "cache_key": resolved.cache_key,
        },
        "num_blocks": len(compiled.allocation.function),
        "num_instructions": compiled.allocation.function.instruction_count(),
        "allocator_overhead": compiled.allocator_overhead,
        "techniques_overhead": techniques_overhead,
    }


@dataclass(frozen=True)
class CompileAnswer:
    """One server-side answer to a compile request, ready to serialize.

    ``result`` is the deterministic payload; ``pass_seconds`` the compile's
    pass timings (cold timings replayed on a cache hit); the remaining
    fields are per-request service metadata.
    """

    result: Dict[str, Any]
    pass_seconds: Dict[str, float] = field(default_factory=dict)
    cache_status: str = "miss"
    coalesced: bool = False
    batch_size: int = 0
    queue_ms: float = 0.0
    compile_ms: float = 0.0

    def to_message(self, request_id: str) -> Dict[str, Any]:
        """The wire form of the response to request ``request_id``."""

        return {
            "type": "result",
            "id": request_id,
            "result": self.result,
            "timing": {
                "pass_seconds": dict(self.pass_seconds),
                "queue_ms": round(self.queue_ms, 3),
                "compile_ms": round(self.compile_ms, 3),
            },
            "service": {
                "cache": self.cache_status,
                "coalesced": self.coalesced,
                "batch_size": self.batch_size,
            },
        }


def lint_result_message(
    request_id: str,
    payload: Mapping[str, Any],
    cache_status: str = "miss",
    coalesced: bool = False,
) -> Dict[str, Any]:
    """The wire form of a lint response.

    Mirrors compile responses: the deterministic report under ``result``,
    service metadata (cache/coalesce status) outside it.
    """

    return {
        "type": "result",
        "id": request_id,
        "result": dict(payload),
        "service": {"cache": cache_status, "coalesced": coalesced},
    }


def response_result_bytes(response: Mapping[str, Any]) -> bytes:
    """Canonical bytes of a response's deterministic ``result`` payload.

    What "byte-identical" means precisely, everywhere it is asserted: two
    responses agree iff these bytes are equal.
    """

    return json.dumps(response["result"], sort_keys=True).encode("utf-8")
