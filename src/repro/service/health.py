"""Rolling-window service health: fixed buckets, SLOs, ``metrics-text/v1``.

The cumulative counters in :mod:`repro.service.metrics` answer "what has
happened since the server started"; operations needs "what is happening
*right now*".  This module adds the time-windowed layer between the two:

* :class:`RollingWindow` — a ring of fixed time buckets (1s wide by
  default) holding counter deltas, gauge maxima and **fixed-bucket**
  latency histograms.  Aggregating the last N buckets yields windowed
  p50/p95/p99 latency, error rates and queue-depth peaks without ever
  storing raw samples (memory is O(buckets), not O(events)).
* :class:`HealthMonitor` — the feeding discipline: latencies are recorded
  per event, counters are delta-fed from the cumulative
  :class:`~repro.service.metrics.ServiceMetrics`/``RouterMetrics`` values,
  and :meth:`HealthMonitor.sample` renders one canonical, JSON-stable
  ``health-sample/v1`` payload per tick.  Every method takes an optional
  explicit ``now`` and the clock itself is injectable, so tests drive
  whole SLO-burn scenarios without sleeping once.
* :class:`SLO` + :func:`evaluate_slos` — declarative objectives (p99
  latency, error rate, availability) evaluated as multi-window burn
  rates: an alarm fires only when *both* the fast and the slow window
  burn their error budget faster than the objective's threshold, the
  standard defence against paging on a single spike.
* :func:`render_metrics_text` — the Prometheus-style plaintext rendering
  of a stats snapshot (versioned ``metrics-text/v1``).  It is a pure
  function of the snapshot dict and **byte-deterministic**: the same
  snapshot always renders to the same bytes, which the ops CI job and
  the test suite pin.

Latency quantiles on the windowed path use *fixed* bucket bounds
(:data:`LATENCY_BUCKET_BOUNDS_MS`) rather than the bounded reservoir of
:class:`~repro.service.metrics.LatencyHistogram`: the reservoir's
decimation silently skews tail percentiles under sustained load (see the
``LatencyHistogram`` docstring), while a fixed-bucket estimate is exact
up to bucket resolution forever.  Both behaviours are pinned by
``tests/service/test_reservoir_bias.py``.
"""

from __future__ import annotations

import json
import math
import re
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

#: Schema tag of one :meth:`HealthMonitor.sample` payload.
HEALTH_SCHEMA = "health-sample/v1"

#: Schema tag of the plaintext metrics rendering.
METRICS_TEXT_SCHEMA = "metrics-text/v1"

#: Schema tag of a recorded metric trace (JSON lines; see
#: :func:`write_metric_trace` / :func:`load_metric_trace`).
METRIC_TRACE_SCHEMA = "metrics-trace/v1"

#: Upper bounds (milliseconds, inclusive) of the fixed latency buckets.
#: Geometric 1-2-5 spacing: resolution is always within a factor of ~2.5
#: of the value, and a quantile estimate is exact up to its bucket bound.
LATENCY_BUCKET_BOUNDS_MS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
    500.0, 1000.0, 2000.0, 5000.0, 10000.0,
)

#: The bound reported for samples beyond the last bucket (the overflow
#: bucket's conventional cap — twice the largest finite bound).
LATENCY_OVERFLOW_BOUND_MS = LATENCY_BUCKET_BOUNDS_MS[-1] * 2.0

#: Default named windows: (label, seconds).  ``fast`` reacts within
#: seconds (shedding, paging), ``slow`` confirms that a burn is sustained.
DEFAULT_WINDOWS = (("fast", 10.0), ("slow", 60.0))

#: Default width of one rolling-window bucket, in seconds.
DEFAULT_BUCKET_SECONDS = 1.0

#: The quantiles every windowed latency payload reports.
WINDOW_PERCENTILES = (50.0, 95.0, 99.0)


def latency_bucket_index(value_ms: float) -> int:
    """The fixed-bucket index holding one latency sample (last = overflow)."""

    for index, bound in enumerate(LATENCY_BUCKET_BOUNDS_MS):
        if value_ms <= bound:
            return index
    return len(LATENCY_BUCKET_BOUNDS_MS)


def latency_bucket_bound(index: int) -> float:
    """The upper bound (ms) reported for bucket ``index``."""

    if index >= len(LATENCY_BUCKET_BOUNDS_MS):
        return LATENCY_OVERFLOW_BOUND_MS
    return LATENCY_BUCKET_BOUNDS_MS[index]


def bucketed_quantile(counts: Sequence[int], percent: float) -> float:
    """Nearest-rank quantile over fixed-bucket counts (bucket upper bound).

    Returns 0.0 for an empty histogram.  The estimate equals the bucket
    bound of the true nearest-rank sample — the invariant the property
    tests (``tests/service/test_health_properties.py``) verify against a
    brute-force recomputation from raw events.
    """

    total = sum(counts)
    if total == 0:
        return 0.0
    rank = max(1, math.ceil(percent * total / 100.0))
    cumulative = 0
    for index, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank:
            return latency_bucket_bound(index)
    return LATENCY_OVERFLOW_BOUND_MS  # pragma: no cover - unreachable


class _Bucket:
    """One fixed time slice: counter deltas, latency counts, gauge maxima."""

    __slots__ = ("counts", "latency", "gauges")

    def __init__(self) -> None:
        self.counts: Dict[str, float] = {}
        self.latency: List[int] = [0] * (len(LATENCY_BUCKET_BOUNDS_MS) + 1)
        self.gauges: Dict[str, float] = {}


@dataclass
class WindowAggregate:
    """The merged view of the buckets covering one time window."""

    #: The window length in seconds (as configured, not as covered).
    seconds: float
    #: Summed counter deltas over the window.
    counts: Dict[str, float]
    #: Summed fixed-bucket latency counts over the window.
    latency: List[int]
    #: Per-gauge maxima over the window.
    gauges: Dict[str, float]

    @property
    def latency_count(self) -> int:
        """Latency samples recorded inside the window."""

        return sum(self.latency)

    def quantile(self, percent: float) -> float:
        """Windowed nearest-rank latency quantile (bucket upper bound, ms)."""

        return bucketed_quantile(self.latency, percent)

    def rate(self, name: str) -> float:
        """Counter ``name`` per second over the window."""

        return self.counts.get(name, 0.0) / self.seconds if self.seconds else 0.0


class RollingWindow:
    """A ring of fixed time buckets with windowed aggregation.

    Bucket ``b`` covers ``[b * bucket_seconds, (b + 1) * bucket_seconds)``;
    aggregating a window of ``W`` seconds at time ``now`` merges the last
    ``round(W / bucket_seconds)`` buckets up to and including the current
    one — the window boundary is quantized to bucket edges, which is the
    documented (and property-tested) estimator contract.  Buckets older
    than ``capacity_seconds`` are pruned on write, bounding memory.
    """

    def __init__(
        self,
        bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
        capacity_seconds: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if bucket_seconds <= 0:
            raise ValueError(f"bucket_seconds must be > 0, got {bucket_seconds!r}")
        if capacity_seconds < bucket_seconds:
            raise ValueError("capacity_seconds must be >= bucket_seconds")
        self.bucket_seconds = float(bucket_seconds)
        self.capacity_buckets = max(1, round(capacity_seconds / bucket_seconds))
        self.clock = clock
        self._buckets: Dict[int, _Bucket] = {}

    def _now(self, now: Optional[float]) -> float:
        return self.clock() if now is None else now

    def _bucket(self, now: float) -> _Bucket:
        index = math.floor(now / self.bucket_seconds)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = _Bucket()
            floor = index - self.capacity_buckets
            for stale in [i for i in self._buckets if i <= floor]:
                del self._buckets[stale]
        return bucket

    def increment(self, name: str, amount: float = 1.0, now: Optional[float] = None) -> None:
        """Add ``amount`` to counter ``name`` in the current bucket."""

        bucket = self._bucket(self._now(now))
        bucket.counts[name] = bucket.counts.get(name, 0.0) + amount

    def observe_latency(self, value_ms: float, now: Optional[float] = None) -> None:
        """Record one latency sample into the current bucket's histogram."""

        self._bucket(self._now(now)).latency[latency_bucket_index(value_ms)] += 1

    def observe_gauge(self, name: str, value: float, now: Optional[float] = None) -> None:
        """Track the per-bucket maximum of gauge ``name``."""

        bucket = self._bucket(self._now(now))
        bucket.gauges[name] = max(bucket.gauges.get(name, value), value)

    def aggregate(self, window_seconds: float, now: Optional[float] = None) -> WindowAggregate:
        """Merge the buckets covering the trailing ``window_seconds``."""

        now = self._now(now)
        span = max(1, round(window_seconds / self.bucket_seconds))
        current = math.floor(now / self.bucket_seconds)
        counts: Dict[str, float] = {}
        latency = [0] * (len(LATENCY_BUCKET_BOUNDS_MS) + 1)
        gauges: Dict[str, float] = {}
        for index in range(current - span + 1, current + 1):
            bucket = self._buckets.get(index)
            if bucket is None:
                continue
            for name, value in bucket.counts.items():
                counts[name] = counts.get(name, 0.0) + value
            for position, count in enumerate(bucket.latency):
                latency[position] += count
            for name, value in bucket.gauges.items():
                gauges[name] = max(gauges.get(name, value), value)
        return WindowAggregate(
            seconds=float(window_seconds), counts=counts, latency=latency, gauges=gauges
        )


class HealthMonitor:
    """Windowed health state for one server or router.

    ``counters`` declares the counter catalogue (incrementing an unknown
    name raises, catching typos at the call site); ``gauges`` declares
    the gauge catalogue the same way.  Counters are usually *delta-fed*
    from the cumulative metrics object via :meth:`feed_counters`;
    latencies are recorded per event via :meth:`observe_latency`.  The
    clock is injectable and every method takes an explicit ``now``
    override, so deterministic tests never sleep.
    """

    def __init__(
        self,
        counters: Sequence[str],
        gauges: Sequence[str] = (),
        windows: Sequence[Tuple[str, float]] = DEFAULT_WINDOWS,
        bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
        queue_limit: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not windows:
            raise ValueError("at least one window is required")
        self.counter_names = tuple(counters)
        self.gauge_names = tuple(gauges)
        self.windows = tuple((str(label), float(seconds)) for label, seconds in windows)
        self.queue_limit = queue_limit
        self.clock = clock
        capacity = max(seconds for _label, seconds in self.windows)
        self.window = RollingWindow(
            bucket_seconds=bucket_seconds, capacity_seconds=capacity, clock=clock
        )
        self._origin = clock()
        self._last_fed: Dict[str, float] = {}

    def now(self) -> float:
        """The monitor's current clock reading."""

        return self.clock()

    def elapsed(self, now: Optional[float] = None) -> float:
        """Seconds since the monitor was created (the sample ``t`` axis)."""

        return (self.clock() if now is None else now) - self._origin

    def increment(self, name: str, amount: float = 1.0, now: Optional[float] = None) -> None:
        """Add ``amount`` to declared counter ``name``."""

        if name not in self.counter_names:
            raise ValueError(f"unknown health counter {name!r}")
        self.window.increment(name, amount, now)

    def feed_counters(self, values: Mapping[str, float], now: Optional[float] = None) -> None:
        """Delta-feed cumulative counter values (the metrics-object bridge).

        Each declared counter's increase since the previous feed lands in
        the current bucket; a value that went backwards (a reset) counts
        from zero again.  Undeclared names in ``values`` are ignored so a
        metrics object may carry more counters than the windowed view.
        """

        for name in self.counter_names:
            if name not in values:
                continue
            value = float(values[name])
            delta = value - self._last_fed.get(name, 0.0)
            if delta < 0:
                delta = value
            self._last_fed[name] = value
            if delta > 0:
                self.window.increment(name, delta, now)

    def observe_latency(self, value_ms: float, now: Optional[float] = None) -> None:
        """Record one request latency (milliseconds) at event time."""

        self.window.observe_latency(value_ms, now)

    def observe_gauge(self, name: str, value: float, now: Optional[float] = None) -> None:
        """Record one reading of declared gauge ``name`` (windowed maximum)."""

        if name not in self.gauge_names:
            raise ValueError(f"unknown health gauge {name!r}")
        self.window.observe_gauge(name, value, now)

    def _window_payload(self, aggregate: WindowAggregate) -> Dict[str, Any]:
        counts = {
            name: int(aggregate.counts.get(name, 0.0)) for name in self.counter_names
        }
        latency = {
            "count": aggregate.latency_count,
            "buckets": list(aggregate.latency),
        }
        for percent in WINDOW_PERCENTILES:
            latency[f"p{percent:g}"] = aggregate.quantile(percent)
        received = counts.get("received", 0)
        completed = counts.get("completed", 0)
        errors = counts.get("errors", 0)
        rates = {
            "qps": round(completed / aggregate.seconds, 6),
            "error_rate": round(errors / received, 6) if received else 0.0,
            "availability": round(completed / received, 6) if received else 1.0,
        }
        return {
            "seconds": aggregate.seconds,
            "counts": counts,
            "latency": latency,
            "gauges": {
                name: aggregate.gauges.get(name, 0.0) for name in self.gauge_names
            },
            "rates": rates,
        }

    def sample(self, now: Optional[float] = None) -> Dict[str, Any]:
        """One canonical ``health-sample/v1`` payload for the current tick.

        A pure rendering of the rolling window's state: JSON-serializable,
        key-stable, with ``t`` relative to the monitor's start (rounded to
        milliseconds) — the unit a metric trace records and the policy
        engine consumes.
        """

        now = self.clock() if now is None else now
        return {
            "schema": HEALTH_SCHEMA,
            "t": round(self.elapsed(now), 3),
            "queue_limit": self.queue_limit,
            "windows": {
                label: self._window_payload(self.window.aggregate(seconds, now))
                for label, seconds in self.windows
            },
        }


# ---------------------------------------------------------------------------
# SLOs and multi-window burn rates.
# ---------------------------------------------------------------------------

#: The objective kinds :class:`SLO` understands.
SLO_KINDS = ("latency", "error_rate", "availability")


@dataclass(frozen=True)
class SLO:
    """One declarative service-level objective.

    ``kind="latency"``
        "no more than ``1 - target`` of requests slower than ``threshold``
        ms" (``threshold`` must be one of the fixed bucket bounds so the
        bad-event count is exact);
    ``kind="error_rate"``
        "error responses stay under fraction ``threshold`` of received";
    ``kind="availability"``
        "completed/received stays at or above fraction ``threshold``".

    ``burn_threshold`` is the multi-window burn-rate alarm bound: the
    alarm fires when the error budget burns at least this many times
    faster than the objective allows in *both* evaluated windows.
    """

    name: str
    kind: str
    threshold: float
    target: float = 0.99
    burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; expected {SLO_KINDS}")
        if self.kind == "latency" and self.threshold not in LATENCY_BUCKET_BOUNDS_MS:
            raise ValueError(
                f"latency SLO threshold {self.threshold!r} must be one of the "
                f"fixed bucket bounds {LATENCY_BUCKET_BOUNDS_MS}"
            )
        if self.kind == "latency" and not 0.0 < self.target < 1.0:
            raise ValueError(f"latency SLO target must be in (0, 1), got {self.target!r}")
        if self.kind == "error_rate" and not 0.0 < self.threshold < 1.0:
            raise ValueError(
                f"error_rate SLO threshold must be in (0, 1), got {self.threshold!r}"
            )
        if self.kind == "availability" and not 0.0 < self.threshold < 1.0:
            raise ValueError(
                f"availability SLO threshold must be in (0, 1), got {self.threshold!r}"
            )
        if self.burn_threshold <= 0:
            raise ValueError(
                f"burn_threshold must be > 0, got {self.burn_threshold!r}"
            )


def slo_burn(slo: SLO, window_payload: Mapping[str, Any]) -> float:
    """The burn rate of one SLO over one window payload.

    Burn rate = (observed bad fraction) / (budgeted bad fraction); 1.0
    means the budget is being spent exactly as fast as the objective
    allows, 0.0 means no traffic or no badness.
    """

    counts = window_payload.get("counts", {})
    if slo.kind == "latency":
        latency = window_payload.get("latency", {})
        buckets = latency.get("buckets") or []
        total = sum(buckets)
        if total == 0:
            return 0.0
        good = sum(
            count
            for index, count in enumerate(buckets)
            if latency_bucket_bound(index) <= slo.threshold
        )
        bad_fraction = (total - good) / total
        return round(bad_fraction / (1.0 - slo.target), 6)
    received = counts.get("received", 0)
    if not received:
        return 0.0
    if slo.kind == "error_rate":
        rate = counts.get("errors", 0) / received
        return round(rate / slo.threshold, 6)
    # availability
    availability = counts.get("completed", 0) / received
    return round((1.0 - availability) / (1.0 - slo.threshold), 6)


def evaluate_slos(
    slos: Sequence[SLO],
    sample: Mapping[str, Any],
    fast: str = "fast",
    slow: str = "slow",
) -> Dict[str, Dict[str, Any]]:
    """Multi-window burn-rate evaluation of every SLO against one sample.

    Returns ``{slo name: {"fast_burn", "slow_burn", "alarm"}}``; the alarm
    is true only when both windows burn at or beyond the SLO's threshold.
    A window missing from the sample contributes burn 0.0 (no alarm).
    """

    windows = sample.get("windows", {})
    report: Dict[str, Dict[str, Any]] = {}
    for slo in slos:
        fast_burn = slo_burn(slo, windows.get(fast, {}))
        slow_burn = slo_burn(slo, windows.get(slow, {}))
        report[slo.name] = {
            "fast_burn": fast_burn,
            "slow_burn": slow_burn,
            "alarm": fast_burn >= slo.burn_threshold
            and slow_burn >= slo.burn_threshold,
        }
    return report


def default_slos() -> Tuple[SLO, ...]:
    """The stock objectives servers and replays evaluate by default."""

    return (
        SLO(name="latency-p99", kind="latency", threshold=500.0, target=0.99),
        SLO(name="error-rate", kind="error_rate", threshold=0.01),
        SLO(name="availability", kind="availability", threshold=0.995),
    )


# ---------------------------------------------------------------------------
# The metrics-text/v1 plaintext rendering.
# ---------------------------------------------------------------------------


def _fmt(value: Any) -> str:
    """Deterministic scalar rendering: ints plain, floats via ``repr``."""

    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    raise TypeError(f"cannot render {value!r} as a metric value")


def _metric(series: str, value: Any, **labels: str) -> str:
    """One exposition line, labels sorted for byte-determinism."""

    if labels:
        rendered = ",".join(
            f'{key}="{labels[key]}"' for key in sorted(labels)
        )
        return f"{series}{{{rendered}}} {_fmt(value)}"
    return f"{series} {_fmt(value)}"


def _render_histogram(lines: List[str], name: str, summary: Mapping[str, Any]) -> None:
    for stat in sorted(summary):
        lines.append(_metric(name, summary[stat], stat=str(stat)))


def _render_health(lines: List[str], prefix: str, health: Mapping[str, Any]) -> None:
    windows = health.get("windows", {})
    for label in sorted(windows):
        window = windows[label]
        for counter in sorted(window.get("counts", {})):
            lines.append(
                _metric(
                    f"{prefix}_window_total",
                    window["counts"][counter],
                    window=label,
                    event=counter,
                )
            )
        latency = window.get("latency", {})
        for stat in sorted(latency):
            if stat == "buckets":
                continue
            lines.append(
                _metric(
                    f"{prefix}_window_latency_ms", latency[stat],
                    window=label, stat=stat,
                )
            )
        for gauge in sorted(window.get("gauges", {})):
            lines.append(
                _metric(
                    f"{prefix}_window_gauge",
                    window["gauges"][gauge],
                    window=label,
                    name=gauge,
                )
            )
        for rate in sorted(window.get("rates", {})):
            lines.append(
                _metric(
                    f"{prefix}_window_rate",
                    window["rates"][rate],
                    window=label,
                    name=rate,
                )
            )


def _render_service(lines: List[str], snapshot: Mapping[str, Any], prefix: str = "repro") -> None:
    lines.append(f"# TYPE {prefix}_requests_total counter")
    for event in sorted(snapshot.get("requests", {})):
        lines.append(
            _metric(f"{prefix}_requests_total", snapshot["requests"][event], event=event)
        )
    lines.append(_metric(f"{prefix}_uptime_seconds", snapshot.get("uptime_seconds", 0.0)))
    lines.append(_metric(f"{prefix}_draining", bool(snapshot.get("draining", False))))
    for rate in sorted(snapshot.get("rates", {})):
        lines.append(_metric(f"{prefix}_rate", snapshot["rates"][rate], name=rate))
    batches = snapshot.get("batches", {})
    for stat in sorted(batches):
        lines.append(_metric(f"{prefix}_batches", batches[stat], stat=stat))
    queue = snapshot.get("queue", {})
    for stat in sorted(queue):
        lines.append(_metric(f"{prefix}_queue", queue[stat], stat=stat))
    for histogram in ("latency_ms", "queue_ms", "compile_ms"):
        if histogram in snapshot:
            _render_histogram(lines, f"{prefix}_{histogram}", snapshot[histogram])
    if "cache" in snapshot:
        for stat in sorted(snapshot["cache"]):
            lines.append(_metric(f"{prefix}_cache", snapshot["cache"][stat], stat=stat))
    policy = snapshot.get("policy")
    if isinstance(policy, Mapping):
        lines.append(_metric(f"{prefix}_policy_shedding", bool(policy.get("shedding"))))
        lines.append(
            _metric(f"{prefix}_policy_decisions_total", int(policy.get("decisions", 0)))
        )
    if isinstance(snapshot.get("health"), Mapping):
        _render_health(lines, prefix, snapshot["health"])


def _render_fleet(lines: List[str], snapshot: Mapping[str, Any]) -> None:
    router = snapshot.get("router", {})
    lines.append("# TYPE repro_router_total counter")
    for counter in sorted(router):
        if counter == "latency_ms":
            _render_histogram(lines, "repro_router_latency_ms", router[counter])
        elif counter in ("uptime_seconds", "qps"):
            lines.append(_metric(f"repro_router_{counter}", router[counter]))
        else:
            lines.append(_metric("repro_router_total", router[counter], event=counter))
    lines.append(_metric("repro_draining", bool(snapshot.get("draining", False))))
    ring = snapshot.get("ring", {})
    lines.append(_metric("repro_ring_members", len(ring.get("members", []))))
    tier = snapshot.get("tier", {})
    for stat in sorted(tier):
        value = tier[stat]
        if isinstance(value, (int, float)):
            lines.append(_metric("repro_tier", value, stat=stat))
    lines.append(_metric("repro_lost_shards", len(snapshot.get("lost_shards", {}))))
    if isinstance(snapshot.get("health"), Mapping):
        _render_health(lines, "repro_router", snapshot["health"])
    for shard in snapshot.get("shards", []):
        shard_id = str(shard.get("id"))
        lines.append(_metric("repro_shard_healthy", bool(shard.get("healthy")), shard=shard_id))
        lines.append(_metric("repro_shard_pending", int(shard.get("pending", 0)), shard=shard_id))
        lines.append(
            _metric("repro_shard_forwarded_total", int(shard.get("forwarded", 0)), shard=shard_id)
        )
        lines.append(
            _metric("repro_shard_answered_total", int(shard.get("answered", 0)), shard=shard_id)
        )
        stats = shard.get("stats")
        if isinstance(stats, Mapping):
            for event in sorted(stats.get("requests", {})):
                lines.append(
                    _metric(
                        "repro_shard_requests_total",
                        stats["requests"][event],
                        shard=shard_id,
                        event=event,
                    )
                )


def render_metrics_text(snapshot: Mapping[str, Any]) -> str:
    """Render one stats snapshot as ``metrics-text/v1`` plaintext.

    Accepts both a single server's ``service-stats/v1`` snapshot and a
    fleet's ``fleet-stats/v1`` snapshot.  Pure and byte-deterministic:
    given the same snapshot dict this always returns the same string
    (sorted labels, ``repr`` floats, fixed section order) — the property
    the ops CI job asserts on a live scrape.
    """

    schema = snapshot.get("schema")
    lines = [f"# {METRICS_TEXT_SCHEMA}"]
    if schema == "service-stats/v1":
        _render_service(lines, snapshot)
    elif schema == "fleet-stats/v1":
        _render_fleet(lines, snapshot)
    else:
        raise ValueError(f"cannot render snapshot with schema {schema!r}")
    return "\n".join(lines) + "\n"


#: One exposition line: ``name`` or ``name{label="value",...}`` + a number.
_METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>-?[0-9.eE+-]+|inf|nan)$"
)


def parse_metrics_text(text: str) -> Dict[str, float]:
    """Parse a ``metrics-text/v1`` payload into ``{series: value}``.

    The inverse used by tests and the ops CI job to assert a scrape is
    well-formed.  Raises ``ValueError`` on any malformed line or a
    missing schema header.
    """

    lines = text.splitlines()
    if not lines or lines[0] != f"# {METRICS_TEXT_SCHEMA}":
        raise ValueError(f"missing '# {METRICS_TEXT_SCHEMA}' header")
    series: Dict[str, float] = {}
    for line in lines[1:]:
        if not line or line.startswith("#"):
            continue
        match = _METRIC_LINE.match(line)
        if match is None:
            raise ValueError(f"malformed metric line: {line!r}")
        key = match.group("name")
        if match.group("labels"):
            key = f"{key}{{{match.group('labels')}}}"
        series[key] = float(match.group("value"))
    return series


# ---------------------------------------------------------------------------
# Metric traces: recorded stats-snapshot sequences (JSON lines).
# ---------------------------------------------------------------------------


def write_metric_trace(path: str, samples: Sequence[Mapping[str, Any]]) -> int:
    """Write a recorded stats-snapshot sequence as a metric trace file.

    Line one is the ``metrics-trace/v1`` header; every further line holds
    one ``{"stats": <snapshot>}`` record in arrival order.  Returns the
    number of samples written.  The loader is :func:`load_metric_trace`.
    """

    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {"schema": METRIC_TRACE_SCHEMA, "samples": len(samples)},
                sort_keys=True,
            )
            + "\n"
        )
        for sample in samples:
            handle.write(json.dumps({"stats": sample}, sort_keys=True) + "\n")
    return len(samples)


def load_metric_trace(path: str) -> List[Dict[str, Any]]:
    """Load the health samples out of a recorded metric trace.

    Returns the ``health-sample/v1`` payloads embedded in the recorded
    stats snapshots, in file order, with consecutive duplicates (two
    polls that observed the same monitor tick) collapsed — the exact
    sequence :func:`repro.service.policy.replay_decisions` consumes.
    """

    samples: List[Dict[str, Any]] = []
    last_t: Optional[float] = None
    with open(path, "r", encoding="utf-8") as handle:
        for position, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if position == 0 and record.get("schema") == METRIC_TRACE_SCHEMA:
                continue
            stats = record.get("stats")
            if not isinstance(stats, dict):
                continue
            health = stats.get("health")
            if not isinstance(health, dict) or health.get("schema") != HEALTH_SCHEMA:
                continue
            if health.get("t") == last_t:
                continue
            last_t = health.get("t")
            if isinstance(stats.get("shards"), list):
                # A fleet snapshot: fold the router's per-shard link state
                # into the sample so shard-level policy rules can replay.
                health = dict(health)
                health.setdefault(
                    "shards",
                    [
                        {
                            "id": shard.get("id"),
                            "healthy": bool(shard.get("healthy")),
                            "pending": int(shard.get("pending", 0)),
                            "stalled_seconds": float(
                                shard.get("stalled_seconds", 0.0)
                            ),
                        }
                        for shard in stats["shards"]
                    ],
                )
            samples.append(health)
    return samples
