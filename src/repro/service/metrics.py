"""Service metrics: counters, latency histograms and snapshot reporting.

The server (:mod:`repro.service.server`) feeds one :class:`ServiceMetrics`
instance; the ``stats`` request type serializes it with
:meth:`ServiceMetrics.snapshot`.  Everything is standard library and
single-threaded by design — the server only touches metrics from its event
loop, so no locking is needed there; the snapshot itself is a plain dict a
reader can serialize safely at any point.

The snapshot's ``cache`` sub-object deliberately matches the shape
``repro-spill cache stats --json`` prints for an on-disk store, so
dashboards can consume either source with one parser.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Histogram sample cap: beyond this many recorded values the reservoir
#: keeps every k-th sample instead, bounding memory on long-running servers
#: while keeping percentiles representative.
MAX_SAMPLES = 65536

#: The percentiles every snapshot reports.
REPORTED_PERCENTILES = (50.0, 95.0, 99.0)


class LatencyHistogram:
    """A bounded reservoir of latency samples with percentile queries.

    Samples are kept verbatim until :data:`MAX_SAMPLES`; past that the
    histogram decimates (keeps every second sample and doubles its stride),
    so memory stays bounded while min/max/count/sum remain exact.

    .. note:: **Known tail bias after decimation.**  Decimation keeps every
       k-th sample *in arrival order*, so once the reservoir has decimated,
       percentile queries answer from a strided subsample of the stream.
       For time-correlated latency (bursts, warmup, load waves) the stride
       systematically thins whichever regime arrives while ``_skip`` is
       counting down, skewing tail percentiles — p99 can land an entire
       burst away from the true value under sustained load.  Cumulative
       lifetime stats tolerate this; *windowed* health reporting must not,
       which is why the rolling-window path in
       :mod:`repro.service.health` uses fixed-bucket histograms whose
       quantiles are exact up to bucket resolution regardless of volume.
       Both behaviours are pinned by
       ``tests/service/test_reservoir_bias.py``.
    """

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._samples: List[float] = []
        self._stride = 1
        self._skip = 0

    def record(self, value: float) -> None:
        """Record one sample (milliseconds by convention)."""

        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)
        if self._skip > 0:
            self._skip -= 1
            return
        self._samples.append(value)
        self._skip = self._stride - 1
        if len(self._samples) >= MAX_SAMPLES:
            self._samples = self._samples[::2]
            self._stride *= 2

    def percentile(self, percent: float) -> float:
        """The ``percent``-th percentile (nearest-rank) of the reservoir."""

        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(percent / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    @property
    def mean(self) -> float:
        """Arithmetic mean of every recorded sample (exact, not reservoir)."""

        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """count/mean/min/max plus the reported percentiles, as a dict."""

        data: Dict[str, float] = {
            "count": self.count,
            "mean": round(self.mean, 4),
            "min": round(self.minimum or 0.0, 4),
            "max": round(self.maximum or 0.0, 4),
        }
        for percent in REPORTED_PERCENTILES:
            data[f"p{percent:g}"] = round(self.percentile(percent), 4)
        return data


@dataclass
class ServiceMetrics:
    """Every counter and histogram the compile server maintains."""

    #: Compile requests that arrived (admitted or not).
    received: int = 0
    #: Compile requests answered with a ``result``.
    completed: int = 0
    #: Compile requests answered with an ``error`` (all codes).
    errors: int = 0
    #: Messages that failed protocol validation (subset of ``errors``).
    protocol_errors: int = 0
    #: Compile requests rejected by admission control.
    rejected_overloaded: int = 0
    #: Requests rejected by policy-driven load shedding (subset of
    #: ``rejected_overloaded`` on the wire: shed rejections reuse the
    #: ``overloaded`` error code so clients retry transparently).
    rejected_shed: int = 0
    #: Compile requests rejected because the server was draining.
    rejected_shutting_down: int = 0
    #: Requests that attached to an identical in-flight compile.
    coalesced: int = 0
    #: Requests answered from the cache at admission (no queue, no batch).
    cache_hits: int = 0
    #: Requests answered from the fleet's shared cache tier (peer hits).
    peer_hits: int = 0
    #: Fresh compile results published to the shared tier (best-effort).
    peer_puts: int = 0
    #: Peer round trips that failed (transport/timeout; served as misses).
    peer_errors: int = 0
    #: Requests that went through a compile batch.
    compiled: int = 0
    #: Batches dispatched.
    batches: int = 0
    #: Sum of batch sizes (unique entries, coalesced waiters excluded).
    batched_entries: int = 0
    #: Largest batch dispatched so far.
    max_batch_size: int = 0
    #: Peak admission-queue depth observed.
    peak_queue_depth: int = 0

    latency_ms: LatencyHistogram = field(default_factory=LatencyHistogram)
    queue_ms: LatencyHistogram = field(default_factory=LatencyHistogram)
    compile_ms: LatencyHistogram = field(default_factory=LatencyHistogram)

    started_at: float = field(default_factory=time.monotonic)

    def record_batch(self, size: int) -> None:
        """Account one dispatched batch of ``size`` unique entries."""

        self.batches += 1
        self.batched_entries += size
        self.max_batch_size = max(self.max_batch_size, size)

    def observe_queue_depth(self, depth: int) -> None:
        """Track the peak admission-queue depth."""

        self.peak_queue_depth = max(self.peak_queue_depth, depth)

    @property
    def uptime_seconds(self) -> float:
        """Seconds since this metrics object was created (server start)."""

        return time.monotonic() - self.started_at

    @property
    def coalesce_rate(self) -> float:
        """Fraction of *completed* requests answered by coalescing."""

        return self.coalesced / self.completed if self.completed else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of completed requests answered from the cache front."""

        return self.cache_hits / self.completed if self.completed else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Average unique entries per dispatched batch."""

        return self.batched_entries / self.batches if self.batches else 0.0

    def counter_values(self) -> Dict[str, int]:
        """The cumulative counters as a plain name → value dict.

        The bridge into the windowed health layer: a
        :class:`repro.service.health.HealthMonitor` delta-feeds these via
        ``feed_counters`` each tick, turning lifetime totals into
        per-window rates without double counting.
        """

        return {
            "received": self.received,
            "completed": self.completed,
            "errors": self.errors,
            "protocol_errors": self.protocol_errors,
            "rejected_overloaded": self.rejected_overloaded,
            "rejected_shed": self.rejected_shed,
            "rejected_shutting_down": self.rejected_shutting_down,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "peer_hits": self.peer_hits,
            "peer_puts": self.peer_puts,
            "peer_errors": self.peer_errors,
            "compiled": self.compiled,
        }

    def snapshot(
        self, queue_depth: int = 0, cache_stats: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """One JSON-serializable view of every metric.

        ``queue_depth`` is the *current* admission-queue depth (a gauge the
        server samples at snapshot time); ``cache_stats`` is the shared
        store's stats dict (see :func:`cache_stats_payload`), absent when
        the server runs cacheless.
        """

        uptime = self.uptime_seconds
        snapshot: Dict[str, Any] = {
            "schema": "service-stats/v1",
            "uptime_seconds": round(uptime, 3),
            "requests": {
                "received": self.received,
                "completed": self.completed,
                "errors": self.errors,
                "protocol_errors": self.protocol_errors,
                "rejected_overloaded": self.rejected_overloaded,
                "rejected_shed": self.rejected_shed,
                "rejected_shutting_down": self.rejected_shutting_down,
                "coalesced": self.coalesced,
                "cache_hits": self.cache_hits,
                "peer_hits": self.peer_hits,
                "peer_puts": self.peer_puts,
                "peer_errors": self.peer_errors,
                "compiled": self.compiled,
            },
            "rates": {
                "qps": round(self.completed / uptime, 3) if uptime > 0 else 0.0,
                "coalesce_rate": round(self.coalesce_rate, 4),
                "cache_hit_rate": round(self.cache_hit_rate, 4),
            },
            "batches": {
                "dispatched": self.batches,
                "mean_size": round(self.mean_batch_size, 3),
                "max_size": self.max_batch_size,
            },
            "queue": {
                "depth": queue_depth,
                "peak_depth": self.peak_queue_depth,
            },
            "latency_ms": self.latency_ms.summary(),
            "queue_ms": self.queue_ms.summary(),
            "compile_ms": self.compile_ms.summary(),
        }
        if cache_stats is not None:
            snapshot["cache"] = cache_stats
        return snapshot


def cache_stats_payload(cache) -> Dict[str, Any]:
    """The canonical JSON shape of one :class:`~repro.cache.store.CompileCache`.

    Shared by the service ``stats`` snapshot and by
    ``repro-spill cache stats --json`` so both report the identical schema.
    """

    return {
        "hits": cache.stats.hits,
        "misses": cache.stats.misses,
        "hit_rate": round(cache.stats.hit_rate, 4),
        "stores": cache.stats.stores,
        "evictions": cache.stats.evictions,
        "corrupt": cache.stats.corrupt,
        "entries": cache.entry_count(),
        "disk_bytes": cache.disk_bytes(),
    }
