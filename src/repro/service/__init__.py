"""Compile-as-a-service: the resident serving layer over the batch pipeline.

Every other entry point in this repository (the CLI subcommands,
:func:`~repro.evaluation.runner.run_suite`,
:func:`~repro.pipeline.compiler.compile_many`) is a batch process: it pays
full startup cost per invocation and its warm caches die with it.  This
package turns the pipeline into infrastructure — one resident asyncio
process that amortizes the process pool, the content-addressed compile
cache and the interned scenario registry across a stream of concurrent
requests:

* :mod:`repro.service.protocol` — the versioned JSON-lines wire protocol
  with strict validation and the bit-identity ``result`` payload contract;
* :mod:`repro.service.server` — admission control, micro-batching,
  in-flight request coalescing, the shared cache front and graceful drain;
* :mod:`repro.service.client` — sync and async clients with timeouts and
  retry-on-``overloaded``;
* :mod:`repro.service.metrics` — counters, latency histograms and the
  ``stats`` snapshot;
* :mod:`repro.service.loadgen` — the seed-deterministic open/closed-loop
  load harness drawing request mixes from the scenario registry;
* :mod:`repro.service.embedded` — a real server on a background thread
  for tests, benchmarks and ``loadgen --self-serve``;
* :mod:`repro.service.ring` — deterministic consistent hashing over the
  fleet's shards;
* :mod:`repro.service.peering` — the versioned ``cache-get``/``cache-put``
  peering protocol and the shared cache tier;
* :mod:`repro.service.fleet` — the multi-shard fleet: consistent-hash
  router, shard health/drain/rebalance, and the :class:`Fleet` supervisor.

See ``docs/service.md`` for the wire protocol and deployment notes.
"""

from repro.service.client import AsyncServiceClient, OverloadedError, ServiceClient, ServiceError
from repro.service.embedded import EmbeddedServer
from repro.service.fleet import Fleet, FleetRouter
from repro.service.loadgen import LoadReport, build_request_plan, render_load_report, run_load
from repro.service.metrics import ServiceMetrics, cache_stats_payload
from repro.service.peering import PEERING_VERSION, SharedCacheTier
from repro.service.protocol import (
    PROTOCOL_VERSION,
    CompileRequest,
    ProtocolError,
    resolve_compile_request,
    result_payload,
)
from repro.service.ring import HashRing
from repro.service.server import CompileServer, run_server

__all__ = [
    "AsyncServiceClient",
    "CompileRequest",
    "CompileServer",
    "EmbeddedServer",
    "Fleet",
    "FleetRouter",
    "HashRing",
    "LoadReport",
    "OverloadedError",
    "PEERING_VERSION",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "SharedCacheTier",
    "build_request_plan",
    "cache_stats_payload",
    "render_load_report",
    "resolve_compile_request",
    "result_payload",
    "run_load",
    "run_server",
]
