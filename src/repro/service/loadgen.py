"""Seed-deterministic load generation for the compile service.

The load generator turns the PR-4 scenario registry into request traffic:
a **plan** (the exact sequence of compile messages, a pure function of the
seed and the mix options) plus a **driver** that replays the plan against a
server in open- or closed-loop mode and verifies invariants on every
response.

Request mixes
-------------

``uniform``
    every request is a distinct program: scenario families round-robin,
    the index advancing each cycle — the cold-cache, no-duplicate
    workload;
``hot``
    requests drawn zipf-skewed from a small pool of programs (the
    "everyone compiles the same hot function" shape) — exercises both the
    cache front (across batches) and in-flight coalescing (within one);
``mixed``
    a seeded interleaving of the two, duplicates included — the CI smoke
    traffic;
``catalog``
    requests round-robin over the workload catalog with the pyfunc
    (frontend-translated) entries first, so translated real functions and
    synthetic scenarios share one traffic stream — the duplicate burst
    lands on a translated function, exercising coalescing on pyfunc cache
    keys.

The ``hot`` and ``mixed`` plans open with a short **duplicate burst**
(:data:`WARMUP_BURST` copies of the hottest program at positions 0..2):
with at least two concurrent clients and a cold server these are in flight
together before anything is cached, so every cold run deterministically
exercises the coalescing path — not just when the zipf draw happens to
cluster.

Driver modes
------------

``closed``
    ``clients`` concurrent connections, each submitting its next request
    as soon as the previous one is answered (throughput-bounded by the
    server);
``open``
    requests fired at a fixed arrival ``rate`` regardless of completions
    (connections are pipelined; admission control is what protects the
    server when the rate exceeds capacity).

Invariants checked on every run
-------------------------------

* zero protocol errors (every response parses and matches a request id);
* duplicate-request consistency: equal request signatures receive
  byte-identical ``result`` payloads, coalesced/cached or not;
* with ``check_oracle=True``, every ``result`` is byte-identical to a
  local :func:`~repro.pipeline.compiler.compile_procedure` of the same
  request — the end-to-end serving-correctness invariant.

Every RNG is string-seeded (``random.Random(f"loadgen/...")``), matching
the scenario registry's determinism contract: the same options always
produce the same plan, on every host.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import random

from repro.service.metrics import LatencyHistogram
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
    hello_message,
    parse_compile_request,
    resolve_compile_request,
    response_result_bytes,
    result_payload,
)
from repro.service.client import _check_hello  # shared handshake validation
from repro.workloads.catalog import get_catalog
from repro.workloads.scenarios import scenario_names

#: Mix names understood by :func:`build_request_plan`.
MIXES = ("uniform", "hot", "mixed", "catalog")

#: Driver modes understood by :func:`run_load`.
MODES = ("closed", "open")

#: Distinct programs in the zipf pool of the ``hot``/``mixed`` mixes.
DEFAULT_POOL_SIZE = 6

#: Zipf skew exponent: rank ``r`` is drawn with weight ``1/(r+1)**s``.
DEFAULT_ZIPF_EXPONENT = 1.2

#: Leading duplicates of the hottest program in ``hot``/``mixed`` plans —
#: guarantees concurrent identical in-flight requests on a cold server.
WARMUP_BURST = 3


def _scenario_reference(family: str, seed: int, index: int) -> Dict[str, Any]:
    return {"scenario": f"scenario:{family}:{seed}:{index}"}


def build_request_plan(
    mix: str = "mixed",
    requests: int = 50,
    seed: int = 0,
    targets: Sequence[str] = ("parisc",),
    cost_model: str = "jump_edge",
    pool_size: int = DEFAULT_POOL_SIZE,
    zipf_exponent: float = DEFAULT_ZIPF_EXPONENT,
    bypass_fraction: float = 0.0,
) -> List[Dict[str, Any]]:
    """Build the deterministic request plan: a list of compile messages.

    The plan is a pure function of the arguments (string-seeded RNGs, no
    global state): the same call always yields the same messages with the
    same ids (``q0``, ``q1``, ...), so a run can be replayed — and a found
    interleaving pinned as a regression fixture — by seed alone.
    """

    if mix not in MIXES:
        raise ValueError(f"unknown mix {mix!r}; expected one of {MIXES}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests!r}")
    if not targets:
        raise ValueError("targets must not be empty")
    families = scenario_names()
    rng = random.Random(f"loadgen/{mix}/{seed}/{requests}")

    # The zipf pool: ``pool_size`` distinct programs, families round-robin.
    pool = [
        (families[rank % len(families)], seed, rank // len(families))
        for rank in range(pool_size)
    ]
    weights = [1.0 / (rank + 1) ** zipf_exponent for rank in range(pool_size)]

    def fresh(position: int) -> Tuple[str, int, int]:
        """The ``position``-th distinct uniform program (never in the pool)."""

        family = families[position % len(families)]
        # Offset past the pool's index range so uniform draws stay distinct
        # from hot-pool programs even within the same family.
        return family, seed, pool_size + position // len(families)

    catalog_entries: Tuple[str, ...] = ()
    if mix == "catalog":
        catalog = get_catalog()
        catalog_entries = catalog.names("pyfunc") + catalog.names("scenario")

    plan: List[Dict[str, Any]] = []
    uniform_cursor = 0
    catalog_cursor = 0
    for position in range(requests):
        if mix == "catalog":
            if position < min(WARMUP_BURST, requests - 1):
                name, cycle = catalog_entries[0], 0
            else:
                name = catalog_entries[catalog_cursor % len(catalog_entries)]
                cycle = catalog_cursor // len(catalog_entries)
                catalog_cursor += 1
            cache = "bypass" if rng.random() < bypass_fraction else "use"
            plan.append({
                "type": "compile",
                "id": f"q{position}",
                "program": {"catalog": f"catalog:{name}:{seed}:{cycle}"},
                "target": targets[position % len(targets)],
                "cost_model": cost_model,
                "cache": cache,
            })
            continue
        if mix != "uniform" and position < min(WARMUP_BURST, requests - 1):
            # The deterministic duplicate burst (see module docstring).
            family, fam_seed, index = pool[0]
        elif mix == "uniform":
            family, fam_seed, index = fresh(uniform_cursor)
            uniform_cursor += 1
        elif mix == "hot":
            family, fam_seed, index = rng.choices(pool, weights=weights, k=1)[0]
        else:  # mixed
            if rng.random() < 0.5:
                family, fam_seed, index = rng.choices(pool, weights=weights, k=1)[0]
            else:
                family, fam_seed, index = fresh(uniform_cursor)
                uniform_cursor += 1
        cache = "bypass" if rng.random() < bypass_fraction else "use"
        message = {
            "type": "compile",
            "id": f"q{position}",
            "program": _scenario_reference(family, fam_seed, index),
            "target": targets[position % len(targets)],
            "cost_model": cost_model,
            "cache": cache,
        }
        plan.append(message)
    return plan


def plan_signature(message: Mapping[str, Any]) -> str:
    """The canonical work-identity of one plan message (id excluded).

    Validates the message on the way — a malformed plan entry fails here,
    not against the server.
    """

    return parse_compile_request(message).signature()


def oracle_results(plan: Sequence[Mapping[str, Any]]) -> Dict[str, bytes]:
    """Locally compiled ground truth: signature -> canonical result bytes.

    One :func:`~repro.pipeline.compiler.compile_procedure` per *unique*
    request signature — what every served response must match
    byte-for-byte.
    """

    from repro.pipeline.compiler import compile_procedure

    truth: Dict[str, bytes] = {}
    for message in plan:
        request = parse_compile_request(message)
        signature = request.signature()
        if signature in truth:
            continue
        resolved = resolve_compile_request(request)
        compiled = compile_procedure(
            (resolved.function, resolved.profile),
            machine=request.target,
            cost_model=request.cost_model,
            techniques=list(request.techniques),
            verify=True,
        )
        truth[signature] = json.dumps(
            result_payload(resolved, compiled), sort_keys=True
        ).encode("utf-8")
    return truth


# ---------------------------------------------------------------------------
# The pipelined connection (open-loop driver building block).
# ---------------------------------------------------------------------------


class _PipelinedClient:
    """One connection with id-demultiplexed concurrent requests.

    Unlike :class:`~repro.service.client.AsyncServiceClient` this allows
    many requests in flight at once on a single connection: a reader task
    routes every response to its request's future by id.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._pending: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._protocol_errors = 0
        self._reader_task: Optional[asyncio.Task] = None

    @classmethod
    async def connect(cls, host: str, port: int, timeout: float) -> "_PipelinedClient":
        """Open, handshake and start the response demultiplexer."""

        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port, limit=MAX_FRAME_BYTES + 1024),
            timeout=timeout,
        )
        client = cls(reader, writer)
        writer.write(encode_message(hello_message()))
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=timeout)
        _check_hello(decode_message(line))
        client._reader_task = asyncio.ensure_future(client._read_loop())
        return client

    async def _read_loop(self) -> None:
        while True:
            try:
                line = await self._reader.readline()
            except (ConnectionResetError, asyncio.CancelledError):
                break
            except ValueError:
                # Over-limit frame: the stream cannot be re-synchronized.
                self._protocol_errors += 1
                break
            if not line:
                break
            try:
                message = decode_message(line)
            except ProtocolError:
                self._protocol_errors += 1
                continue
            request_id = message.get("id")
            future = self._pending.pop(request_id, None)
            if future is None or future.done():
                self._protocol_errors += 1
                continue
            future.set_result(message)
        # Fail anything still outstanding so callers do not hang.
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    ConnectionError("connection closed with requests in flight")
                )
        self._pending.clear()

    @property
    def protocol_errors(self) -> int:
        """Responses that failed to parse or matched no pending request."""

        return self._protocol_errors

    async def request(
        self, message: Mapping[str, Any], timeout: float
    ) -> Dict[str, Any]:
        """Send one message and await the response with the matching id."""

        request_id = message["id"]
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[request_id] = future
        self._writer.write(encode_message(message))
        await self._writer.drain()
        return await asyncio.wait_for(future, timeout=timeout)

    async def close(self) -> None:
        """Stop the demultiplexer and close the connection."""

        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # pragma: no cover
                pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (OSError, ConnectionResetError):  # pragma: no cover
            pass


# ---------------------------------------------------------------------------
# The driver.
# ---------------------------------------------------------------------------


@dataclass
class LoadReport:
    """Everything one load run measured and verified."""

    mode: str
    requests_planned: int
    completed: int = 0
    retries: int = 0
    #: Terminal error responses by code (after the retry loop gave up).
    errors: Dict[str, int] = field(default_factory=dict)
    protocol_errors: int = 0
    transport_errors: int = 0
    #: Responses whose ``result`` bytes disagreed with a duplicate or with
    #: the local oracle — each entry names the offending request.
    invariant_violations: List[str] = field(default_factory=list)
    coalesced_responses: int = 0
    cache_hit_responses: int = 0
    #: Responses answered from a fleet's shared cache tier by the router.
    tier_hit_responses: int = 0
    #: Responses answered from the shared tier by a shard (peer hit).
    peer_hit_responses: int = 0
    wall_seconds: float = 0.0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    #: Stats snapshots sampled during the run when metric recording was on
    #: (``record_metrics``); written out as a ``metrics-trace/v1`` file.
    metric_samples: int = 0
    #: The server's metrics snapshot fetched after the run.  When the
    #: server was already draining (or gone) by fetch time this holds a
    #: partial marker — ``{"schema": "service-stats/partial", "partial":
    #: True, "draining": True}`` — rather than None or a stall.
    server_stats: Optional[Dict[str, Any]] = None

    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall-clock second."""

        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def error_count(self) -> int:
        """Total terminal error responses."""

        return sum(self.errors.values())

    @property
    def ok(self) -> bool:
        """Did the run finish with zero errors and zero violated invariants?"""

        return (
            self.completed == self.requests_planned
            and not self.error_count
            and not self.protocol_errors
            and not self.transport_errors
            and not self.invariant_violations
        )

    def to_json(self) -> Dict[str, Any]:
        """A JSON-serializable summary (the benchmark harness's raw material)."""

        return {
            "mode": self.mode,
            "requests_planned": self.requests_planned,
            "completed": self.completed,
            "retries": self.retries,
            "errors": dict(self.errors),
            "protocol_errors": self.protocol_errors,
            "transport_errors": self.transport_errors,
            "invariant_violations": len(self.invariant_violations),
            "coalesced_responses": self.coalesced_responses,
            "cache_hit_responses": self.cache_hit_responses,
            "tier_hit_responses": self.tier_hit_responses,
            "peer_hit_responses": self.peer_hit_responses,
            "wall_seconds": round(self.wall_seconds, 4),
            "throughput_rps": round(self.throughput_rps, 3),
            "latency_ms": self.latency.summary(),
            "metric_samples": self.metric_samples,
        }


class _Checker:
    """Response verification shared by both driver modes."""

    def __init__(
        self,
        report: LoadReport,
        signatures: Dict[str, str],
        oracle: Optional[Dict[str, bytes]],
    ):
        self.report = report
        self.signatures = signatures
        self.oracle = oracle
        self._seen: Dict[str, bytes] = {}

    def verify(self, request_id: str, response: Mapping[str, Any]) -> None:
        """Check one result response against duplicates and the oracle."""

        if response.get("type") != "result" or "result" not in response:
            self.report.protocol_errors += 1
            return
        self.report.completed += 1
        service = response.get("service", {})
        if service.get("coalesced"):
            self.report.coalesced_responses += 1
        if service.get("cache") == "hit":
            self.report.cache_hit_responses += 1
        elif service.get("cache") == "tier":
            self.report.tier_hit_responses += 1
        elif service.get("cache") == "peer":
            self.report.peer_hit_responses += 1
        signature = self.signatures[request_id]
        body = response_result_bytes(response)
        previous = self._seen.setdefault(signature, body)
        if previous != body:
            self.report.invariant_violations.append(
                f"{request_id}: result differs from an identical earlier request"
            )
        if self.oracle is not None and self.oracle[signature] != body:
            self.report.invariant_violations.append(
                f"{request_id}: result differs from the local compile_procedure oracle"
            )


async def _drive(
    host: str,
    port: int,
    plan: Sequence[Mapping[str, Any]],
    mode: str,
    clients: int,
    rate: float,
    timeout: float,
    retries: int,
    backoff: float,
    checker: _Checker,
    report: LoadReport,
    metric_trace: Optional[List[Dict[str, Any]]] = None,
    metrics_interval: float = 0.25,
) -> None:
    """Replay the plan against the server in the requested mode."""

    connections = [
        await _PipelinedClient.connect(host, port, timeout) for _ in range(clients)
    ]
    loop = asyncio.get_running_loop()

    sampler_task: Optional[asyncio.Task] = None
    sampler: Optional[_PipelinedClient] = None
    if metric_trace is not None:
        # The sampler rides its own connection so stats polling never
        # contends with load traffic for a pipelined writer.
        sampler = await _PipelinedClient.connect(host, port, timeout)

        async def sample_loop(connection: _PipelinedClient) -> None:
            sequence = 0
            while True:
                try:
                    response = await connection.request(
                        {"type": "stats", "id": f"mrec{sequence}"}, timeout
                    )
                except (ConnectionError, asyncio.TimeoutError):
                    return
                sequence += 1
                if response.get("type") == "stats" and isinstance(
                    response.get("stats"), dict
                ):
                    metric_trace.append(response["stats"])
                await asyncio.sleep(metrics_interval)

        sampler_task = asyncio.ensure_future(sample_loop(sampler))

    async def submit(connection: _PipelinedClient, message: Mapping[str, Any]) -> None:
        started = loop.time()
        try:
            response = await connection.request(message, timeout)
            attempt = 0
            while (
                response.get("type") == "error"
                and response.get("code") == "overloaded"
                and attempt < retries
            ):
                report.retries += 1
                await asyncio.sleep(backoff * (2**attempt))
                attempt += 1
                response = await connection.request(message, timeout)
        except (ConnectionError, asyncio.TimeoutError):
            report.transport_errors += 1
            return
        report.latency.record((loop.time() - started) * 1000.0)
        if response.get("type") == "error":
            code = str(response.get("code", "internal"))
            report.errors[code] = report.errors.get(code, 0) + 1
            return
        checker.verify(message["id"], response)

    try:
        if mode == "closed":
            cursor = 0

            async def worker(connection: _PipelinedClient) -> None:
                nonlocal cursor
                while cursor < len(plan):
                    message = plan[cursor]
                    cursor += 1
                    await submit(connection, message)

            await asyncio.gather(*(worker(connection) for connection in connections))
        else:  # open loop
            start = loop.time()

            async def fire(position: int, message: Mapping[str, Any]) -> None:
                delay = start + position / rate - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                await submit(connections[position % len(connections)], message)

            await asyncio.gather(
                *(fire(position, message) for position, message in enumerate(plan))
            )
    finally:
        if sampler_task is not None:
            sampler_task.cancel()
            try:
                await sampler_task
            except (asyncio.CancelledError, Exception):  # pragma: no cover
                pass
        if sampler is not None:
            await sampler.close()
        for connection in connections:
            report.protocol_errors += connection.protocol_errors
        # Fetch the server's own view before closing (stats ride the load
        # connections, so no extra connection skews the counters).
        report.server_stats = await _fetch_final_stats(connections, timeout)
        for connection in connections:
            await connection.close()


#: The end-of-run stats payload when the server was already draining (or
#: gone) by fetch time — an explicit partial marker, never a stall or a
#: spurious run failure: telemetry racing a shutdown is expected.
PARTIAL_STATS = {
    "schema": "service-stats/partial",
    "partial": True,
    "draining": True,
}


async def _fetch_final_stats(
    connections: Sequence["_PipelinedClient"], timeout: float
) -> Dict[str, Any]:
    """The server's end-of-run stats, racing a possible drain gracefully.

    A server that received a ``shutdown`` mid-run (a killed fleet shard,
    an operator SIGTERM) may close our connections before — or while —
    the stats request is answered.  Each connection is tried in turn with
    a short per-attempt bound; when none can answer, the report gets the
    explicit :data:`PARTIAL_STATS` marker with ``draining: True`` instead
    of a timeout error, so the run's verdict never depends on telemetry
    that legitimately raced a shutdown.
    """

    per_attempt = min(timeout, 10.0) / max(1, len(connections))
    per_attempt = max(per_attempt, 1.0)
    for connection in connections:
        try:
            response = await connection.request(
                {"type": "stats", "id": "loadgen-stats"}, per_attempt
            )
        except Exception:
            continue
        if response.get("type") == "stats" and isinstance(
            response.get("stats"), dict
        ):
            return response["stats"]
    return dict(PARTIAL_STATS)


def fleet_invariant_violations(
    stats: Optional[Mapping[str, Any]], plan: Sequence[Mapping[str, Any]]
) -> List[str]:
    """Check the fleet-wide single-compile invariant against a snapshot.

    Given a fresh fleet's ``fleet-stats/v1`` snapshot after a run, the
    total number of compiles across every shard must not exceed the number
    of unique request signatures in the plan: the ring's key affinity plus
    per-shard coalescing plus the shared tier guarantee that no coalesced
    key is ever compiled twice fleet-wide.  Returns violation strings
    (empty = held).

    The check only applies when it is sound: a fleet snapshot with all
    shard stats present and no deaths/wedges (a killed shard legitimately
    forces recompiles of its in-flight keys, and its counters are lost).
    """

    if not isinstance(stats, Mapping) or stats.get("schema") != "fleet-stats/v1":
        return []
    router = stats.get("router", {})
    if router.get("shard_deaths") or router.get("wedged"):
        return []
    shards = stats.get("shards", [])
    per_shard = []
    for shard in shards:
        shard_stats = shard.get("stats")
        if not isinstance(shard_stats, Mapping):
            return []  # partial snapshot: cannot account every compile
        per_shard.append(
            (shard.get("id"), shard_stats.get("requests", {}).get("compiled", 0))
        )
    unique = len({plan_signature(message) for message in plan})
    compiled = sum(count for _shard_id, count in per_shard)
    if compiled > unique:
        detail = ", ".join(f"{shard_id}={count}" for shard_id, count in per_shard)
        return [
            f"fleet-wide double-compile: {compiled} compiles for {unique} "
            f"unique request keys ({detail})"
        ]
    return []


def run_load(
    host: str,
    port: int,
    plan: Sequence[Mapping[str, Any]],
    mode: str = "closed",
    clients: int = 4,
    rate: float = 100.0,
    timeout: float = 120.0,
    retries: int = 6,
    backoff: float = 0.05,
    check_oracle: bool = False,
    check_fleet: bool = False,
    record_metrics: Optional[str] = None,
    metrics_interval: float = 0.25,
) -> LoadReport:
    """Replay a request plan against a running server and verify it.

    ``mode="closed"`` keeps ``clients`` connections saturated; ``"open"``
    fires requests at ``rate`` per second across pipelined connections.
    With ``check_oracle=True`` every response is additionally compared
    byte-for-byte against a local compile of the same request (computed
    once per unique request before the load starts, so oracle time never
    pollutes the measured window).  With ``check_fleet=True`` (a freshly
    started fleet only — shard counters must belong to this run) the
    end-of-run fleet snapshot is checked for fleet-wide double-compiles
    (:func:`fleet_invariant_violations`).  With ``record_metrics=PATH``
    a sampler connection polls ``stats`` every ``metrics_interval``
    seconds during the run and writes the snapshots to ``PATH`` as a
    ``metrics-trace/v1`` JSONL file — the raw material for replaying the
    run through the policy engine (``repro-spill policy replay``).
    """

    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients!r}")
    if mode == "open" and rate <= 0:
        raise ValueError(f"open-loop rate must be > 0, got {rate!r}")
    if metrics_interval <= 0:
        raise ValueError(f"metrics_interval must be > 0, got {metrics_interval!r}")

    signatures = {message["id"]: plan_signature(message) for message in plan}
    oracle = oracle_results(plan) if check_oracle else None
    report = LoadReport(mode=mode, requests_planned=len(plan))
    checker = _Checker(report, signatures, oracle)
    metric_trace: Optional[List[Dict[str, Any]]] = (
        [] if record_metrics is not None else None
    )

    started = time.perf_counter()
    asyncio.run(
        _drive(
            host,
            port,
            plan,
            mode,
            clients,
            rate,
            timeout,
            retries,
            backoff,
            checker,
            report,
            metric_trace=metric_trace,
            metrics_interval=metrics_interval,
        )
    )
    report.wall_seconds = time.perf_counter() - started
    if check_fleet:
        report.invariant_violations.extend(
            fleet_invariant_violations(report.server_stats, plan)
        )
    if record_metrics is not None and metric_trace is not None:
        from repro.service.health import write_metric_trace

        report.metric_samples = write_metric_trace(record_metrics, metric_trace)
    return report


def render_load_report(report: LoadReport) -> str:
    """Human-readable summary of one load run."""

    lines = [
        f"loadgen: {report.completed}/{report.requests_planned} completed "
        f"({report.mode} loop), {report.wall_seconds:.3f}s wall, "
        f"{report.throughput_rps:.1f} req/s",
        f"  latency ms      : p50={report.latency.percentile(50):.2f} "
        f"p95={report.latency.percentile(95):.2f} "
        f"p99={report.latency.percentile(99):.2f} "
        f"max={report.latency.maximum or 0.0:.2f}",
        f"  coalesced       : {report.coalesced_responses}",
        f"  cache hits      : {report.cache_hit_responses}"
        + (
            f" (tier {report.tier_hit_responses}, peer {report.peer_hit_responses})"
            if report.tier_hit_responses or report.peer_hit_responses
            else ""
        ),
        f"  retries         : {report.retries}",
        f"  errors          : "
        + (
            ", ".join(f"{code}={count}" for code, count in sorted(report.errors.items()))
            or "none"
        ),
        f"  protocol errors : {report.protocol_errors}",
        f"  transport errors: {report.transport_errors}",
        f"  invariants      : "
        + (
            f"{len(report.invariant_violations)} VIOLATED"
            if report.invariant_violations
            else "all held"
        ),
    ]
    for violation in report.invariant_violations[:10]:
        lines.append(f"    ! {violation}")
    stats = report.server_stats
    if stats is not None and stats.get("schema") == "fleet-stats/v1":
        router = stats.get("router", {})
        lines.append(
            "  fleet           : "
            f"completed={router.get('completed')} "
            f"tier_hits={router.get('tier_hits')} "
            f"rerouted={router.get('rerouted')} "
            f"shard_deaths={router.get('shard_deaths')} "
            f"wedged={router.get('wedged')} "
            f"shards={len(stats.get('shards', []))}"
        )
    elif stats is not None and stats.get("partial"):
        lines.append("  server          : stats partial (server was draining)")
    elif stats is not None:
        requests = stats.get("requests", {})
        lines.append(
            "  server          : "
            f"completed={requests.get('completed')} "
            f"coalesced={requests.get('coalesced')} "
            f"cache_hits={requests.get('cache_hits')} "
            f"compiled={requests.get('compiled')} "
            f"overloaded={requests.get('rejected_overloaded')}"
        )
    return "\n".join(lines)
