"""Run a :class:`~repro.service.server.CompileServer` inside this process.

The service tests, the benchmark harness and ``repro-spill loadgen
--self-serve`` all need a real, reachable server without managing a child
process: :class:`EmbeddedServer` runs one on a dedicated thread with its own
event loop, binds an ephemeral port, and tears the whole thing down —
through the same graceful-drain path a SIGTERM takes — when the context
exits.

The embedded server is the real thing (same admission control, batching,
coalescing and cache sharing), only the process boundary is missing; the CI
service job covers the cross-process path by launching ``repro-spill
serve`` as an actual child process.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, Optional

from repro.cache.store import CacheSpec
from repro.service.server import (
    DEFAULT_BATCH_MAX_REQUESTS,
    DEFAULT_BATCH_WINDOW_MS,
    DEFAULT_MAX_QUEUE,
    CompileServer,
)


class EmbeddedServer:
    """A compile server on a background thread, as a context manager.

    ``with EmbeddedServer(...) as server:`` yields an object exposing
    ``host``, ``port`` (the ephemeral bind), the live ``server`` instance
    and :meth:`stats` — everything a client in the calling thread needs.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        cache: CacheSpec = None,
        max_queue: int = DEFAULT_MAX_QUEUE,
        batch_max_requests: int = DEFAULT_BATCH_MAX_REQUESTS,
        batch_window_ms: float = DEFAULT_BATCH_WINDOW_MS,
        host: str = "127.0.0.1",
        startup_timeout: float = 30.0,
        peer: Optional[str] = None,
    ):
        self.host = host
        self.port: Optional[int] = None
        self.server: Optional[CompileServer] = None
        self._kwargs = dict(
            host=host,
            port=0,
            workers=workers,
            cache=cache,
            max_queue=max_queue,
            batch_max_requests=batch_max_requests,
            batch_window_ms=batch_window_ms,
            peer=peer,
        )
        self._startup_timeout = startup_timeout
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "EmbeddedServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self._startup_timeout):
            raise RuntimeError("embedded compile server did not start in time")
        if self._failure is not None:
            raise RuntimeError(
                f"embedded compile server failed to start: {self._failure}"
            ) from self._failure
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - surfaced via _failure
            self._failure = exc
            self._ready.set()

    async def _amain(self) -> None:
        try:
            server = CompileServer(**self._kwargs)
            await server.start()
        except BaseException as exc:
            self._failure = exc
            self._ready.set()
            return
        self.server = server
        self.port = server.port
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await server.serve_forever()

    def stop(self, timeout: float = 60.0) -> None:
        """Drain the server gracefully and join the background thread."""

        loop = self._loop
        if loop is not None and self.server is not None and not loop.is_closed():
            coroutine = self.server.drain()
            try:
                future = asyncio.run_coroutine_threadsafe(coroutine, loop)
            except RuntimeError:
                # The loop exited between the check and the call (e.g. a
                # client-driven shutdown already completed the drain): the
                # coroutine never started, so close the orphan.  Never
                # close a *scheduled* coroutine — it belongs to the loop.
                coroutine.close()
            else:
                try:
                    future.result(timeout)
                except Exception:  # pragma: no cover - slow/failed drain
                    pass
        if self._thread is not None:
            self._thread.join(timeout)

    def stats(self) -> Dict[str, Any]:
        """The server's metrics snapshot, fetched thread-safely."""

        if self._loop is None or self.server is None:
            raise RuntimeError("embedded server is not running")
        future = asyncio.run_coroutine_threadsafe(
            _snapshot(self.server), self._loop
        )
        return future.result(30.0)


async def _snapshot(server: CompileServer) -> Dict[str, Any]:
    """Take the snapshot on the server's own loop (metrics are loop-owned).

    The cache disk sweep still runs in a worker thread
    (:meth:`~repro.service.server.CompileServer.stats_snapshot_async`), so
    a large store never stalls the embedded server's event loop.
    """

    return await server.stats_snapshot_async()
